"""Transformation metrics: the mechanical-edit count behind "ease of use".

The paper reports human effort in person-days (2 + 8 + <1 for Version
C; <1 + 5 + <1 for Version A).  We cannot re-measure people, but we can
measure what the pipeline *automates*: how many distinct mechanical
artifacts the simulated-parallel form and its parallel transform
comprise.  Experiment E7 reports these counts next to the paper's
person-day figures, as the effort proxy documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.refinement.program import SimulatedParallelProgram

__all__ = ["TransformationMetrics"]


@dataclass(frozen=True)
class TransformationMetrics:
    """Mechanical size of a simulated-parallel program and its transform."""

    nprocs: int
    stages: int
    local_blocks: int
    exchanges: int
    assignments: int
    cross_partition_assignments: int
    message_pairs: int
    channels: int

    @classmethod
    def from_program(cls, program: SimulatedParallelProgram) -> "TransformationMetrics":
        exchanges = program.exchanges()
        assignments = sum(len(e.assignments) for e in exchanges)
        cross = sum(len(e.cross_partition()) for e in exchanges)
        per_exchange_pairs = [e.message_pairs() for e in exchanges]
        all_pairs = set().union(*per_exchange_pairs) if per_exchange_pairs else set()
        return cls(
            nprocs=program.nprocs,
            stages=len(program.stages),
            local_blocks=len(program.local_blocks()),
            exchanges=len(exchanges),
            assignments=assignments,
            cross_partition_assignments=cross,
            message_pairs=sum(len(p) for p in per_exchange_pairs),
            channels=len(all_pairs),
        )

    def describe(self) -> str:
        return (
            f"N={self.nprocs}: {self.stages} stages "
            f"({self.local_blocks} local, {self.exchanges} exchanges), "
            f"{self.assignments} exchange assignments "
            f"({self.cross_partition_assignments} cross-partition), "
            f"{self.message_pairs} combined messages per sweep, "
            f"{self.channels} channels"
        )
