"""Refinement checking by testing (the paper's chosen discipline for
sequential-to-sequential steps).

The methodology proves the final (simulated-parallel → parallel)
transformation and *tests* the sequential-to-sequential ones.  The
tests are bitwise: the paper's correctness criterion for the near-field
computation is that versions produce *identical* results, and its
far-field finding is precisely that "close" is not "identical" when
summation order changes.  So the comparison reports here carry both a
bitwise verdict and, when that fails, the magnitude of the disagreement
— which is the observable of experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.refinement.store import AddressSpace
from repro.util import bitwise_equal_arrays, max_abs_diff, max_rel_diff

__all__ = [
    "VariableComparison",
    "ComparisonReport",
    "compare_arrays",
    "compare_stores",
    "compare_store_lists",
]


@dataclass(frozen=True)
class VariableComparison:
    """Bitwise and numeric comparison of one variable."""

    name: str
    bitwise_equal: bool
    max_abs: float
    max_rel: float
    note: str = ""

    def describe(self) -> str:
        verdict = "identical" if self.bitwise_equal else "DIFFERS"
        extra = (
            "" if self.bitwise_equal else f" (max abs {self.max_abs:.3e}, max rel {self.max_rel:.3e})"
        )
        note = f" [{self.note}]" if self.note else ""
        return f"{self.name}: {verdict}{extra}{note}"


@dataclass
class ComparisonReport:
    """Comparison of two variable stores (or two sets of outputs)."""

    variables: list[VariableComparison] = field(default_factory=list)
    missing_left: list[str] = field(default_factory=list)
    missing_right: list[str] = field(default_factory=list)

    @property
    def bitwise_equal(self) -> bool:
        return (
            not self.missing_left
            and not self.missing_right
            and all(v.bitwise_equal for v in self.variables)
        )

    @property
    def max_abs(self) -> float:
        return max((v.max_abs for v in self.variables), default=0.0)

    @property
    def max_rel(self) -> float:
        return max((v.max_rel for v in self.variables), default=0.0)

    def differing(self) -> list[VariableComparison]:
        return [v for v in self.variables if not v.bitwise_equal]

    def describe(self) -> str:
        lines = []
        verdict = "IDENTICAL" if self.bitwise_equal else "NOT identical"
        lines.append(
            f"{verdict}: {len(self.variables)} variable(s) compared, "
            f"{len(self.differing())} differ"
        )
        for v in self.variables:
            lines.append("  " + v.describe())
        for name in self.missing_left:
            lines.append(f"  {name}: missing on left")
        for name in self.missing_right:
            lines.append(f"  {name}: missing on right")
        return "\n".join(lines)


def compare_arrays(name: str, a: Any, b: Any) -> VariableComparison:
    """Compare two values (arrays or scalars) bitwise and numerically."""
    arr_a = np.asarray(a)
    arr_b = np.asarray(b)
    if arr_a.shape != arr_b.shape:
        return VariableComparison(
            name,
            bitwise_equal=False,
            max_abs=float("inf"),
            max_rel=float("inf"),
            note=f"shape {arr_a.shape} vs {arr_b.shape}",
        )
    bitwise = bitwise_equal_arrays(arr_a, arr_b)
    if bitwise:
        return VariableComparison(name, True, 0.0, 0.0)
    if arr_a.dtype.kind in "fc" or arr_b.dtype.kind in "fc":
        return VariableComparison(
            name, False, max_abs_diff(arr_a, arr_b), max_rel_diff(arr_a, arr_b)
        )
    return VariableComparison(
        name, False, float("inf"), float("inf"), note="non-float mismatch"
    )


def compare_stores(
    left: Mapping[str, Any] | AddressSpace,
    right: Mapping[str, Any] | AddressSpace,
    only: Sequence[str] | None = None,
) -> ComparisonReport:
    """Variable-by-variable comparison of two stores.

    ``only`` restricts the comparison to the named variables (e.g. the
    program's declared outputs, ignoring scratch state).
    """
    lmap = left.raw() if isinstance(left, AddressSpace) else dict(left)
    rmap = right.raw() if isinstance(right, AddressSpace) else dict(right)
    names = list(only) if only is not None else sorted(set(lmap) | set(rmap))
    report = ComparisonReport()
    for name in names:
        if name not in lmap:
            report.missing_left.append(name)
        elif name not in rmap:
            report.missing_right.append(name)
        else:
            report.variables.append(compare_arrays(name, lmap[name], rmap[name]))
    return report


def compare_store_lists(
    left: Sequence[Mapping[str, Any] | AddressSpace],
    right: Sequence[Mapping[str, Any] | AddressSpace],
    only: Sequence[str] | None = None,
) -> ComparisonReport:
    """Compare per-process store lists rank by rank (variable names are
    prefixed ``P<rank>.``)."""
    report = ComparisonReport()
    if len(left) != len(right):
        report.missing_left.append(
            f"<{len(left)} stores>" if len(left) < len(right) else ""
        )
        report.missing_right.append(
            f"<{len(right)} stores>" if len(right) < len(left) else ""
        )
        return report
    for rank, (l, r) in enumerate(zip(left, right)):
        sub = compare_stores(l, r, only=only)
        for v in sub.variables:
            report.variables.append(
                VariableComparison(
                    f"P{rank}.{v.name}",
                    v.bitwise_equal,
                    v.max_abs,
                    v.max_rel,
                    v.note,
                )
            )
        report.missing_left.extend(f"P{rank}.{n}" for n in sub.missing_left)
        report.missing_right.extend(f"P{rank}.{n}" for n in sub.missing_right)
    return report
