"""The stepwise-refinement framework (paper section 2).

The central artifact is the **sequential simulated-parallel program**
(section 2.2): data partitioned into N simulated address spaces, and a
computation that alternates

* **local-computation blocks** — per-process functions, each touching
  only its own partition, and
* **data-exchange operations** — sets of pure assignments between
  partitions obeying three restrictions: (i) an assignment target is
  referenced by no other assignment; (ii) each side of an assignment
  references a single partition; (iii) every process is assigned at
  least one value.

Such a program runs *sequentially* (so it can be developed and debugged
with sequential tools — the methodology's point), yet it is mechanically
convertible into a message-passing parallel program: each exchange
assignment becomes a send and a receive, with all sends performed before
any receive so no process ever reads an empty channel
(:mod:`~repro.refinement.transform`), and Theorem 1 guarantees the
parallel program computes the same final state.

:mod:`~repro.refinement.checker` provides the testing half of the
methodology — bitwise comparison of program versions — and
:mod:`~repro.refinement.metrics` counts the mechanical edits as an
effort proxy (experiment E7).
"""

from repro.refinement.store import AddressSpace, make_stores
from repro.refinement.dataexchange import Assignment, DataExchange, VarRef
from repro.refinement.program import LocalBlock, SimulatedParallelProgram
from repro.refinement.split import ExchangeBegin, ExchangeEnd, split_exchange
from repro.refinement.transform import to_parallel_system
from repro.refinement.checker import (
    ComparisonReport,
    compare_arrays,
    compare_store_lists,
    compare_stores,
)
from repro.refinement.metrics import TransformationMetrics
from repro.refinement.pipeline import RefinementPipeline, RefinementVerdict

__all__ = [
    "AddressSpace",
    "make_stores",
    "VarRef",
    "Assignment",
    "DataExchange",
    "LocalBlock",
    "SimulatedParallelProgram",
    "ExchangeBegin",
    "ExchangeEnd",
    "split_exchange",
    "to_parallel_system",
    "ComparisonReport",
    "compare_stores",
    "compare_arrays",
    "compare_store_lists",
    "TransformationMetrics",
    "RefinementPipeline",
    "RefinementVerdict",
]
