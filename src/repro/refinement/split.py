"""Split data-exchange stages: the overlap refinement (paper §3.3 + §5).

A :class:`~repro.refinement.dataexchange.DataExchange` executes as one
atomic stage: read every right-hand side from the pre-state, then
perform every write.  The classic mesh-archetype optimization —
overlapping ghost exchange with interior compute — needs the two halves
*separated* so local computation can run between them:

* :class:`ExchangeBegin` — read the pre-state and (in the parallel
  version) launch every send;
* :class:`ExchangeEnd` — perform every write (in the parallel version:
  block on the receives, at the point of first use).

Why this is still a refinement: the channels have infinite slack, so
moving a send *earlier* and a receive *later* removes waiting edges
from the process network and adds none.  Every execution of the split
program is an execution the unsplit program could have taken under some
fair interleaving, and Theorem 1 says all of those reach the same final
state — determinacy carries over unchanged.  The only new obligation
is the caller's: the local blocks placed between begin and end must not
touch the data the exchange reads or writes (for ghost exchange: the
interior never reads the shell's ghost cells), which the mesh archetype
discharges by construction via region splitting.

Both halves share one ``DataExchange`` (the ``op``), so validation,
metrics, and channel wiring see exactly one operation per split pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import RefinementError
from repro.refinement.dataexchange import Assignment, DataExchange
from repro.refinement.store import AddressSpace

__all__ = ["ExchangeBegin", "ExchangeEnd", "split_exchange"]


@dataclass
class ExchangeBegin:
    """First half of a split exchange: pre-state reads (and sends)."""

    op: DataExchange
    name: str = ""
    #: values staged by the most recent simulated ``apply``; consumed by
    #: the matching :class:`ExchangeEnd`.  Sequential execution runs
    #: begin strictly before end, so one slot suffices.
    _staged: list[tuple[Assignment, Any]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"send:{self.op.name}"

    def apply(self, stores: Sequence[AddressSpace]) -> None:
        """Simulated semantics: stage every read against the pre-state."""
        staged: list[tuple[Assignment, Any]] = []
        for a in self.op.assignments:
            value = stores[a.src.proc].read_region(a.src.var, a.src.region)
            if a.transform is not None:
                value = a.transform(value)
            staged.append((a, value))
        self._staged = staged


@dataclass
class ExchangeEnd:
    """Second half of a split exchange: the writes (and receives)."""

    begin: ExchangeBegin
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"recv:{self.op.name}"

    @property
    def op(self) -> DataExchange:
        return self.begin.op

    def apply(self, stores: Sequence[AddressSpace]) -> None:
        """Simulated semantics: perform the writes staged at begin."""
        staged = self.begin._staged
        if staged is None:
            raise RefinementError(
                f"exchange end {self.name!r} ran before its begin stage; "
                "the split pair is out of order"
            )
        self.begin._staged = None
        for a, value in staged:
            stores[a.dst.proc].write_region(a.dst.var, a.dst.region, value)


def split_exchange(
    op: DataExchange, name: str = ""
) -> tuple[ExchangeBegin, ExchangeEnd]:
    """Make a begin/end stage pair sharing ``op``.

    The caller appends the begin, then any local blocks that avoid the
    exchanged regions, then the end.
    """
    label = name or op.name
    begin = ExchangeBegin(op, name=f"send:{label}")
    return begin, ExchangeEnd(begin, name=f"recv:{label}")
