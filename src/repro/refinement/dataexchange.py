"""Data-exchange operations and their three restrictions (paper §2.2).

A data-exchange operation is a *set of assignment statements* between
simulated address spaces, restricted so that it corresponds exactly to
a round of message passing:

(i)   if an atomic data object is the target of an assignment, it is
      not referenced in any other assignment of the operation;
(ii)  no side of an assignment references objects of more than one
      partition (the two sides may use *different* partitions);
(iii) every simulated process is assigned at least one value.

Restriction (ii) is guaranteed by construction here: a
:class:`VarRef` names one process's variable (optionally a rectangular
sub-region of an array).  Restriction (i) is checked by
:meth:`DataExchange.validate` — exactly, once array shapes are known
(region overlap on concrete extents), conservatively otherwise.
Restriction (iii) is checked over a declared participant set; a few
archetype operations (e.g. gather-to-host) are deliberately one-sided
and declare only the receiving side as participants.

Execution (:meth:`DataExchange.apply`) is two-phase — read every
right-hand side from the pre-state, then perform every write — which is
both the natural semantics of a *set* of assignments and the exact
sequential analogue of "all sends happen before any receive".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import DataExchangeViolation
from repro.refinement.store import AddressSpace
from repro.xp import is_array_like

__all__ = ["VarRef", "Assignment", "DataExchange"]

Region = tuple  # tuple of slices / ints


@dataclass(frozen=True)
class VarRef:
    """A reference to (a region of) one variable of one partition.

    ``region`` is ``None`` for the whole variable, or a tuple of
    ``slice``/``int`` objects indexing an array variable.  Slices must
    be non-negative with unit step (rectangular regions), which is all
    the archetype operations ever need and keeps overlap checking exact.
    """

    proc: int
    var: str
    region: Region | None = None

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise DataExchangeViolation(
                "ii", f"reference to negative partition {self.proc}"
            )
        if self.region is not None:
            for s in self.region:
                if isinstance(s, int):
                    continue
                if not isinstance(s, slice):
                    raise DataExchangeViolation(
                        "ii", f"region component {s!r} is not a slice or int"
                    )
                if s.step not in (None, 1):
                    raise DataExchangeViolation(
                        "ii", "only unit-step slices are supported in regions"
                    )
                for bound in (s.start, s.stop):
                    if bound is not None and bound < 0:
                        raise DataExchangeViolation(
                            "ii", "negative slice bounds are not supported"
                        )

    def describe(self) -> str:
        if self.region is None:
            return f"P{self.proc}.{self.var}"
        parts = []
        for s in self.region:
            if isinstance(s, int):
                parts.append(str(s))
            else:
                parts.append(
                    f"{'' if s.start is None else s.start}:"
                    f"{'' if s.stop is None else s.stop}"
                )
        return f"P{self.proc}.{self.var}[{','.join(parts)}]"


@dataclass(frozen=True)
class Assignment:
    """``dst := transform(src)`` between two partition references.

    ``transform`` (optional) is a pure elementwise function applied to
    the value read from ``src`` before it is written to ``dst``; it must
    be deterministic, since it will execute on the *sending* side of the
    parallel version.
    """

    dst: VarRef
    src: VarRef
    transform: Callable[[Any], Any] | None = None

    def describe(self) -> str:
        arrow = " := " if self.transform is None else " := f "
        return self.dst.describe() + arrow + self.src.describe()


# ---------------------------------------------------------------------------
# Region arithmetic
# ---------------------------------------------------------------------------


def _bounds(component, extent: int) -> tuple[int, int]:
    """Concrete [start, stop) of one region component given the extent."""
    if isinstance(component, int):
        return component, component + 1
    start = 0 if component.start is None else component.start
    stop = extent if component.stop is None else min(component.stop, extent)
    return start, stop


def regions_overlap(
    a: Region | None, b: Region | None, shape: Sequence[int] | None
) -> bool:
    """Do two regions of the same variable intersect?

    With a known ``shape`` the answer is exact for rectangular regions.
    Without one (shape ``None``) the check is conservative: ``None``
    regions overlap everything, and two explicit regions are compared
    component-wise treating open bounds as unbounded.
    """
    if a is None or b is None:
        return True
    ndim = max(len(a), len(b))
    for axis in range(ndim):
        ca = a[axis] if axis < len(a) else slice(None)
        cb = b[axis] if axis < len(b) else slice(None)
        extent = (
            shape[axis] if shape is not None and axis < len(shape) else 1 << 62
        )
        a0, a1 = _bounds(ca, extent)
        b0, b1 = _bounds(cb, extent)
        if a1 <= b0 or b1 <= a0:
            return False  # disjoint along this axis: regions disjoint
    return True


def _refs_overlap(
    x: VarRef, y: VarRef, shapes: dict[tuple[int, str], tuple[int, ...]] | None
) -> bool:
    if x.proc != y.proc or x.var != y.var:
        return False
    shape = shapes.get((x.proc, x.var)) if shapes else None
    return regions_overlap(x.region, y.region, shape)


# ---------------------------------------------------------------------------
# The operation itself
# ---------------------------------------------------------------------------


@dataclass
class DataExchange:
    """A checked set of assignments forming one data-exchange operation."""

    assignments: list[Assignment] = field(default_factory=list)
    name: str = "exchange"
    #: processes this operation claims to cover for restriction (iii);
    #: ``None`` means "all processes of the program" (checked by the
    #: program, which knows N).
    participants: frozenset[int] | None = None

    # -- construction -----------------------------------------------------------

    def assign(
        self,
        dst: VarRef,
        src: VarRef,
        transform: Callable[[Any], Any] | None = None,
    ) -> "DataExchange":
        """Append an assignment (chainable)."""
        self.assignments.append(Assignment(dst, src, transform))
        return self

    # -- validation --------------------------------------------------------------

    def validate(
        self,
        nprocs: int | None = None,
        stores: Sequence[AddressSpace] | None = None,
        require_all_receive: bool = True,
    ) -> None:
        """Check restrictions (i)-(iii); raise
        :class:`~repro.errors.DataExchangeViolation` on failure.

        With ``stores`` given, region overlap is exact (array shapes are
        known); otherwise open-ended regions are treated conservatively.
        ``require_all_receive=False`` skips restriction (iii) for
        deliberately one-sided operations.
        """
        shapes: dict[tuple[int, str], tuple[int, ...]] | None = None
        if stores is not None:
            shapes = {}
            for ref in self._all_refs():
                value = stores[ref.proc][ref.var]
                if is_array_like(value):
                    shapes[(ref.proc, ref.var)] = tuple(value.shape)

        # (ii) partition range.
        if nprocs is not None:
            for ref in self._all_refs():
                if ref.proc >= nprocs:
                    raise DataExchangeViolation(
                        "ii",
                        f"{self.name}: reference {ref.describe()} names "
                        f"partition {ref.proc} but there are only {nprocs}",
                    )

        # (i) no target is referenced by any other assignment.
        for i, a in enumerate(self.assignments):
            for j, b in enumerate(self.assignments):
                if i == j:
                    continue
                if _refs_overlap(a.dst, b.dst, shapes):
                    raise DataExchangeViolation(
                        "i",
                        f"{self.name}: targets {a.dst.describe()} and "
                        f"{b.dst.describe()} overlap",
                    )
                if _refs_overlap(a.dst, b.src, shapes):
                    raise DataExchangeViolation(
                        "i",
                        f"{self.name}: target {a.dst.describe()} is read "
                        f"by {b.describe()}",
                    )

        # (iii) every (participating) process receives at least one value.
        if require_all_receive and nprocs is not None:
            receivers = {a.dst.proc for a in self.assignments}
            expected = (
                set(self.participants)
                if self.participants is not None
                else set(range(nprocs))
            )
            missing = expected - receivers
            if missing:
                raise DataExchangeViolation(
                    "iii",
                    f"{self.name}: processes {sorted(missing)} are assigned "
                    "no value",
                )

    def _all_refs(self) -> Iterable[VarRef]:
        for a in self.assignments:
            yield a.dst
            yield a.src

    # -- execution ---------------------------------------------------------------

    def apply(self, stores: Sequence[AddressSpace]) -> None:
        """Execute the operation sequentially: read every right-hand side
        from the pre-state, then perform every write."""
        staged: list[tuple[Assignment, Any]] = []
        for a in self.assignments:
            value = stores[a.src.proc].read_region(a.src.var, a.src.region)
            if a.transform is not None:
                value = a.transform(value)
            staged.append((a, value))
        for a, value in staged:
            stores[a.dst.proc].write_region(a.dst.var, a.dst.region, value)

    # -- message-passing view (used by the transform) ---------------------------------

    def cross_partition(self) -> list[Assignment]:
        """Assignments whose source and destination partitions differ —
        the ones that become messages."""
        return [a for a in self.assignments if a.src.proc != a.dst.proc]

    def local_assignments(self, rank: int) -> list[Assignment]:
        """Assignments entirely within partition ``rank``."""
        return [
            a
            for a in self.assignments
            if a.src.proc == rank and a.dst.proc == rank
        ]

    def sends_from(self, rank: int) -> list[tuple[int, Assignment]]:
        """``(dest, assignment)`` pairs this rank must send, grouped
        caller-side by destination (stable order: assignment order)."""
        return [
            (a.dst.proc, a)
            for a in self.assignments
            if a.src.proc == rank and a.dst.proc != rank
        ]

    def recvs_to(self, rank: int) -> list[tuple[int, Assignment]]:
        """``(source, assignment)`` pairs this rank must receive."""
        return [
            (a.src.proc, a)
            for a in self.assignments
            if a.dst.proc == rank and a.src.proc != rank
        ]

    def message_pairs(self) -> set[tuple[int, int]]:
        """All (sender, receiver) pairs with at least one assignment —
        after combining, one message flows per pair."""
        return {(a.src.proc, a.dst.proc) for a in self.cross_partition()}

    def describe(self) -> str:
        lines = [f"data-exchange {self.name!r}:"]
        lines.extend("  " + a.describe() for a in self.assignments)
        return "\n".join(lines)
