"""The mechanical simulated-parallel → parallel transformation (paper §3.3).

Theorem 1 licenses converting a sequential simulated-parallel program
into a message-passing program *mechanically*: simulated processes
become real processes, simulated address spaces become real ones, and
each data-exchange assignment becomes a send and a receive.  This
module performs that conversion on a
:class:`~repro.refinement.program.SimulatedParallelProgram`, producing a
:class:`~repro.runtime.system.System` runnable by either engine.

Faithfulness points, each traceable to the paper:

* **sends before receives** — within an exchange, a process performs
  every send before any receive, the ordering that makes the receives
  provably safe (every awaited value is already in its channel);
* **message combining** — all assignments with a common sender and a
  common receiver travel as *one* message ("a group of message-passing
  operations with a common sender and a common receiver can be combined
  for efficiency");
* **pre-state reads** — each process stages every value it will send
  (and every intra-process assignment's value) before performing any
  write, matching the parallel-assignment semantics of the sequential
  exchange;
* **minimal wiring** — one channel per (sender, receiver) pair that
  actually communicates in some exchange, not a full mesh.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RefinementError
from repro.refinement.dataexchange import DataExchange
from repro.refinement.program import LocalBlock, SimulatedParallelProgram
from repro.refinement.split import ExchangeBegin, ExchangeEnd
from repro.refinement.store import AddressSpace
from repro.runtime.process import ProcessSpec
from repro.runtime.system import System

__all__ = ["to_parallel_system", "exchange_channel_name"]


def exchange_channel_name(src: int, dst: int) -> str:
    """Name of the channel carrying exchange traffic ``src -> dst``."""
    return f"dx_{src}_{dst}"


def _begin_exchange(
    ctx, space: AddressSpace, stage_index: int, op: DataExchange
) -> list[tuple[Any, Any]]:
    """Phases 1-2 of one rank's share of an exchange: stage every read
    against the pre-state and launch every send.  Returns the staged
    intra-rank assignments for :func:`_finish_exchange`."""
    rank = ctx.rank

    # Phase 1 — stage all reads against the pre-state.
    outgoing: dict[int, list[Any]] = {}
    for dest, a in op.sends_from(rank):
        value = space.read_region(a.src.var, a.src.region)
        if a.transform is not None:
            value = a.transform(value)
        outgoing.setdefault(dest, []).append(value)
    local_staged: list[tuple[Any, Any]] = []
    for a in op.local_assignments(rank):
        value = space.read_region(a.src.var, a.src.region)
        if a.transform is not None:
            value = a.transform(value)
        local_staged.append((a, value))

    # Phase 2 — all sends (combined: one message per receiver).
    for dest in sorted(outgoing):
        ctx.send(
            exchange_channel_name(rank, dest),
            {"stage": stage_index, "values": outgoing[dest]},
        )
    return local_staged


def _finish_exchange(
    ctx,
    space: AddressSpace,
    stage_index: int,
    op: DataExchange,
    local_staged: list[tuple[Any, Any]],
) -> None:
    """Phases 3-4: the local writes, then all receives.

    ``stage_index`` is the index of the stage that *sent* — for an
    unsplit exchange its own index, for a split pair the begin stage's —
    so the stage token in the payload still proves both sides agree on
    which exchange this is.
    """
    rank = ctx.rank

    # Phase 3 — local writes.
    for a, value in local_staged:
        space.write_region(a.dst.var, a.dst.region, value)

    # Phase 4 — all receives (one combined message per sender), then
    # unpack in assignment order, which both sides derive identically
    # from the exchange definition.
    recvs = op.recvs_to(rank)
    by_source: dict[int, list[Any]] = {}
    for source, a in recvs:
        by_source.setdefault(source, []).append(a)
    for source in sorted(by_source):
        payload = ctx.recv(exchange_channel_name(source, rank))
        if payload["stage"] != stage_index:
            raise RefinementError(
                f"rank {rank} expected exchange stage {stage_index} from "
                f"{source}, got {payload['stage']}; the transformed "
                "program's stage sequences have diverged"
            )
        values = payload["values"]
        targets = by_source[source]
        if len(values) != len(targets):
            raise RefinementError(
                f"rank {rank} expected {len(targets)} values from "
                f"{source} at stage {stage_index}, got {len(values)}"
            )
        for a, value in zip(targets, values):
            space.write_region(a.dst.var, a.dst.region, value)


def _perform_exchange(
    ctx, space: AddressSpace, stage_index: int, op: DataExchange
) -> None:
    """One rank's share of one (unsplit) data-exchange operation."""
    local_staged = _begin_exchange(ctx, space, stage_index, op)
    _finish_exchange(ctx, space, stage_index, op, local_staged)


def _make_body(program: SimulatedParallelProgram, rank: int):
    """The parallel process body for one rank: the program's stages,
    restricted to this rank's share of each.

    When the run is observed, every stage this rank takes part in is
    recorded as a span named after the stage (``exchange:hx``,
    ``E-phase[3]``, ``gather:ffA``, ...), category ``stage`` for local
    blocks and ``exchange`` for data exchanges — the per-phase timeline
    of the transformed program.  Un-observed runs take a loop with no
    instrumentation at all.

    Split exchange pairs map onto the two halves of the unsplit body:
    the begin stage runs phases 1-2 (pre-state reads + sends), the end
    stage phases 3-4 (local writes + receives).  The stage token carried
    by every message is the *begin* stage's index on both sides, so the
    divergence check is as strict as for unsplit exchanges.
    """
    # End-stage index -> its begin stage's index, resolved once.  The
    # mapping is position-based, not identity-based: process bodies are
    # pickled into worker processes, where every stage object is a fresh
    # copy with a fresh id, but stage *positions* survive the trip —
    # and the begin's index doubles as the message token both sides of
    # the split exchange agree on.
    pos_of = {id(stage): i for i, stage in enumerate(program.stages)}
    end_to_begin: dict[int, int] = {
        i: pos_of[id(stage.begin)]
        for i, stage in enumerate(program.stages)
        if isinstance(stage, ExchangeEnd)
    }

    def body(ctx) -> None:
        space = AddressSpace.wrap(ctx.store, owner=rank)
        obs = ctx.observer
        pending: dict[int, list[tuple[Any, Any]]] = {}
        if obs is None:
            for stage_index, stage in enumerate(program.stages):
                if isinstance(stage, LocalBlock):
                    fn = stage.fn_for(rank)
                    if fn is not None:
                        fn(space)
                elif isinstance(stage, ExchangeBegin):
                    pending[stage_index] = _begin_exchange(
                        ctx, space, stage_index, stage.op
                    )
                elif isinstance(stage, ExchangeEnd):
                    token = end_to_begin[stage_index]
                    _finish_exchange(
                        ctx, space, token, stage.op, pending.pop(token)
                    )
                else:
                    _perform_exchange(ctx, space, stage_index, stage)
            return
        for stage_index, stage in enumerate(program.stages):
            if isinstance(stage, LocalBlock):
                fn = stage.fn_for(rank)
                if fn is not None:
                    with obs.span(rank, stage.name, cat="stage"):
                        fn(space)
            elif isinstance(stage, ExchangeBegin):
                with obs.span(rank, stage.name, cat="exchange"):
                    pending[stage_index] = _begin_exchange(
                        ctx, space, stage_index, stage.op
                    )
            elif isinstance(stage, ExchangeEnd):
                token = end_to_begin[stage_index]
                with obs.span(rank, stage.name, cat="exchange"):
                    _finish_exchange(
                        ctx, space, token, stage.op, pending.pop(token)
                    )
            else:
                with obs.span(rank, stage.name, cat="exchange"):
                    _perform_exchange(ctx, space, stage_index, stage)

    return body


def to_parallel_system(
    program: SimulatedParallelProgram,
    initial: dict[str, Any] | None = None,
    initial_stores: list[dict[str, Any]] | None = None,
    validate: bool = True,
) -> System:
    """Transform a simulated-parallel program into a process system.

    ``initial`` duplicates one mapping into every process's store (the
    step-1 starting point); ``initial_stores`` provides per-rank stores
    instead (for programs whose refinement already distributed the
    data).  Exactly one of the two may be given; both ``None`` gives
    empty stores.

    With ``validate=True`` (default) every exchange is checked against
    restrictions (i)-(iii) before any process is built: the transform
    refuses to emit message-passing code from an ill-formed exchange.
    """
    if initial is not None and initial_stores is not None:
        raise RefinementError("pass initial or initial_stores, not both")
    if validate:
        program.validate()

    if initial_stores is not None:
        if len(initial_stores) != program.nprocs:
            raise RefinementError(
                f"initial_stores has {len(initial_stores)} entries, "
                f"program has {program.nprocs} processes"
            )
        stores = initial_stores
    else:
        stores = [dict(initial or {}) for _ in range(program.nprocs)]

    processes = [
        ProcessSpec(rank, _make_body(program, rank), store=stores[rank])
        for rank in range(program.nprocs)
    ]
    system = System(processes)

    pairs: set[tuple[int, int]] = set()
    for op in program.exchanges():
        pairs |= op.message_pairs()
    for src, dst in sorted(pairs):
        system.add_channel(exchange_channel_name(src, dst), src, dst)
    return system
