"""Sequential simulated-parallel programs (paper §2.2, Definition 1).

A :class:`SimulatedParallelProgram` is the key intermediate artifact of
the methodology: a *sequential* program whose data is partitioned into
N simulated address spaces and whose computation is an alternating
sequence of :class:`LocalBlock` and
:class:`~repro.refinement.dataexchange.DataExchange` stages.

Running it (:meth:`SimulatedParallelProgram.run`) is ordinary sequential
execution — which is the methodology's payoff: the hard part of
parallelization is developed and debugged with sequential tools.  The
mechanical jump to a real process system is
:func:`repro.refinement.transform.to_parallel_system`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

from repro.errors import RefinementError
from repro.refinement.dataexchange import DataExchange
from repro.refinement.split import ExchangeBegin, ExchangeEnd
from repro.refinement.store import AddressSpace, make_stores

__all__ = ["LocalBlock", "SimulatedParallelProgram"]

#: A local-computation function: receives its own address space only.
LocalFn = Callable[[AddressSpace], None]


@dataclass
class LocalBlock:
    """A local-computation block: one function per simulated process.

    The i-th function accesses only the i-th address space — enforced
    structurally (it is *given* only that space; like process bodies, it
    must not smuggle state through closures).  ``fns`` may be:

    * a list of N functions (one per process);
    * a dict ``{rank: fn}`` — unlisted ranks do nothing this block
      (corresponding to processes that sit out a phase, e.g. grid
      processes during host I/O);
    * a single function plus ``spmd=True`` — the same function for every
      rank (it receives ``(store, rank)``), the common SPMD case.
    """

    fns: Union[list[LocalFn], dict[int, LocalFn], Callable[[AddressSpace, int], None]]
    name: str = "local"
    spmd: bool = False

    def fn_for(self, rank: int) -> Callable[[AddressSpace], None] | None:
        if self.spmd:
            fn = self.fns

            def bound(store: AddressSpace, _fn=fn, _rank=rank) -> None:
                _fn(store, _rank)

            return bound
        if isinstance(self.fns, dict):
            return self.fns.get(rank)
        if isinstance(self.fns, list):
            if rank < len(self.fns):
                return self.fns[rank]
            return None
        raise RefinementError(
            f"local block {self.name!r}: fns must be list, dict, or "
            "spmd callable"
        )

    def apply(self, stores: Sequence[AddressSpace]) -> None:
        """Run every per-process function, in rank order.

        Rank order is arbitrary but fixed: the functions touch disjoint
        address spaces, so any order gives the same result — that is
        what makes the block parallelisable.
        """
        for rank in range(len(stores)):
            fn = self.fn_for(rank)
            if fn is not None:
                fn(stores[rank])


Stage = Union[LocalBlock, DataExchange, ExchangeBegin, ExchangeEnd]


def _fuse_local_blocks(first: LocalBlock, second: LocalBlock) -> LocalBlock:
    """One local block performing ``first`` then ``second`` per rank.

    Sequencing two local computations of the *same* process is itself a
    local computation; fusing never changes semantics because blocks
    touch only their own partition.
    """

    def fuse(rank: int):
        fa = first.fn_for(rank)
        fb = second.fn_for(rank)

        def fused(store, _fa=fa, _fb=fb):
            if _fa is not None:
                _fa(store)
            if _fb is not None:
                _fb(store)

        return fused

    # Build an explicit dict over every rank either block mentions; the
    # fused fns close over the originals, so SPMD and dict forms fuse
    # uniformly.  Rank coverage must be conservative: SPMD blocks cover
    # all ranks, so fall back to a dict keyed lazily at apply time via
    # fn_for — represented here by wrapping in a dict-form block built
    # per rank on demand is not possible, so enumerate from dict forms
    # and mark SPMD coverage with a sentinel.
    ranks: set[int] = set()
    for block in (first, second):
        if block.spmd or isinstance(block.fns, list):
            # covers rank indices up to the program size; represented
            # by a closure-based SPMD form instead.
            def spmd_fused(store, rank: int, _f=first, _s=second):
                fa = _f.fn_for(rank)
                fb = _s.fn_for(rank)
                if fa is not None:
                    fa(store)
                if fb is not None:
                    fb(store)

            return LocalBlock(
                spmd_fused, name=f"{first.name}+{second.name}", spmd=True
            )
        ranks.update(block.fns.keys())
    return LocalBlock(
        {r: fuse(r) for r in sorted(ranks)},
        name=f"{first.name}+{second.name}",
    )


@dataclass
class SimulatedParallelProgram:
    """An alternating sequence of local blocks and data exchanges."""

    nprocs: int
    stages: list[Stage] = field(default_factory=list)
    name: str = "program"

    # -- builder API -------------------------------------------------------------

    def local(
        self,
        fns: Union[list[LocalFn], dict[int, LocalFn]],
        name: str = "",
    ) -> "SimulatedParallelProgram":
        """Append a local-computation block (chainable)."""
        self.stages.append(LocalBlock(fns, name or f"local{len(self.stages)}"))
        return self

    def spmd(
        self, fn: Callable[[AddressSpace, int], None], name: str = ""
    ) -> "SimulatedParallelProgram":
        """Append an SPMD local block: ``fn(store, rank)`` for all ranks."""
        self.stages.append(
            LocalBlock(fn, name or f"local{len(self.stages)}", spmd=True)
        )
        return self

    def exchange(self, op: DataExchange) -> "SimulatedParallelProgram":
        """Append a data-exchange operation (chainable)."""
        self.stages.append(op)
        return self

    def begin_exchange(self, op: DataExchange, name: str = "") -> ExchangeBegin:
        """Append the *begin* half of a split exchange; returns the
        begin stage, whose end half must later go through
        :meth:`end_exchange`.  This is the overlap refinement: local
        blocks appended between the two halves run while the exchange's
        messages are in flight."""
        from repro.refinement.split import split_exchange

        begin, _ = split_exchange(op, name=name)
        self.stages.append(begin)
        return begin

    def end_exchange(self, begin: ExchangeBegin) -> "SimulatedParallelProgram":
        """Append the *end* half of a split exchange (chainable)."""
        self.stages.append(ExchangeEnd(begin))
        return self

    # -- structure ---------------------------------------------------------------

    def local_blocks(self) -> list[LocalBlock]:
        return [s for s in self.stages if isinstance(s, LocalBlock)]

    def exchanges(self) -> list[DataExchange]:
        """Every data-exchange operation, in stage order.

        A split begin/end pair shares one operation; it is reported once
        (at its begin stage), so metrics and channel wiring never double
        count.
        """
        out: list[DataExchange] = []
        for s in self.stages:
            if isinstance(s, DataExchange):
                out.append(s)
            elif isinstance(s, ExchangeBegin):
                out.append(s.op)
        return out

    def is_strictly_alternating(self) -> bool:
        """True iff stages strictly alternate local / exchange.

        The definition in the paper presents the computation as an
        alternating sequence; consecutive blocks of the same kind are
        harmless (they can always be merged), so this is a property
        check, not a validity requirement.
        """
        for a, b in zip(self.stages, self.stages[1:]):
            if isinstance(a, LocalBlock) == isinstance(b, LocalBlock):
                return False
        return True

    def normalized(self) -> "SimulatedParallelProgram":
        """An equivalent program with adjacent local blocks merged.

        The §2.2 definition presents the computation as a *strictly
        alternating* sequence; builders often emit consecutive local
        blocks (e.g. absorb-then-compute), which are semantically one
        block.  Exchanges are never merged (each has its own restriction
        scope), so the normalized program is strictly alternating
        exactly when the original had no two adjacent exchange stages.
        """
        merged: list[Stage] = []
        for stage in self.stages:
            if (
                isinstance(stage, LocalBlock)
                and merged
                and isinstance(merged[-1], LocalBlock)
            ):
                merged[-1] = _fuse_local_blocks(merged[-1], stage)
            else:
                merged.append(stage)
        return SimulatedParallelProgram(
            self.nprocs, merged, name=f"{self.name}:normalized"
        )

    def validate(self, stores: Sequence[AddressSpace] | None = None) -> None:
        """Validate every data-exchange stage against the restrictions.

        Split stages are additionally checked structurally: each begin
        must be followed (later, not necessarily adjacently) by exactly
        one end referring to it, and each end's begin must come earlier
        — the sequential order that makes the split a refinement.
        """
        open_begins: list[ExchangeBegin] = []
        seen_begins: set[int] = set()
        for stage in self.stages:
            if isinstance(stage, DataExchange):
                stage.validate(nprocs=self.nprocs, stores=stores)
            elif isinstance(stage, ExchangeBegin):
                stage.op.validate(nprocs=self.nprocs, stores=stores)
                open_begins.append(stage)
                seen_begins.add(id(stage))
            elif isinstance(stage, ExchangeEnd):
                if id(stage.begin) not in seen_begins:
                    raise RefinementError(
                        f"program {self.name!r}: exchange end "
                        f"{stage.name!r} precedes its begin stage (or the "
                        "begin is missing)"
                    )
                matches = [b for b in open_begins if b is stage.begin]
                if not matches:
                    raise RefinementError(
                        f"program {self.name!r}: exchange begin "
                        f"{stage.begin.name!r} has more than one end stage"
                    )
                open_begins = [b for b in open_begins if b is not stage.begin]
        if open_begins:
            names = [b.name for b in open_begins]
            raise RefinementError(
                f"program {self.name!r}: exchange begins {names} have no "
                "matching end stage"
            )

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        stores: Sequence[AddressSpace] | None = None,
        initial: dict[str, Any] | None = None,
        validate: bool = False,
    ) -> list[AddressSpace]:
        """Execute sequentially; returns the (mutated) address spaces.

        Provide either ready-made ``stores`` (length ``nprocs``) or an
        ``initial`` mapping duplicated into fresh spaces.  With
        ``validate=True`` every exchange is re-checked against live
        shapes just before it runs.
        """
        if stores is None:
            stores = make_stores(self.nprocs, initial)
        if len(stores) != self.nprocs:
            raise RefinementError(
                f"program {self.name!r} needs {self.nprocs} stores, got "
                f"{len(stores)}"
            )
        for stage in self.stages:
            if isinstance(stage, DataExchange):
                if validate:
                    stage.validate(nprocs=self.nprocs, stores=stores)
                stage.apply(stores)
            elif isinstance(stage, ExchangeBegin):
                if validate:
                    stage.op.validate(nprocs=self.nprocs, stores=stores)
                stage.apply(stores)
            else:
                stage.apply(stores)
        return list(stores)

    def describe(self) -> str:
        lines = [f"simulated-parallel program {self.name!r} (N={self.nprocs}):"]
        for i, stage in enumerate(self.stages):
            if isinstance(stage, DataExchange):
                n = len(stage.assignments)
                lines.append(
                    f"  {i:3d} exchange {stage.name!r} ({n} assignments, "
                    f"{len(stage.message_pairs())} message pairs)"
                )
            elif isinstance(stage, ExchangeBegin):
                op = stage.op
                lines.append(
                    f"  {i:3d} ex-begin {stage.name!r} "
                    f"({len(op.assignments)} assignments, "
                    f"{len(op.message_pairs())} message pairs)"
                )
            elif isinstance(stage, ExchangeEnd):
                lines.append(f"  {i:3d} ex-end   {stage.name!r}")
            else:
                lines.append(f"  {i:3d} local    {stage.name!r}")
        return "\n".join(lines)
