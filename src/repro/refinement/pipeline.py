"""The whole methodology as one checked pipeline.

Sections 2-4 of the paper describe a sequence of artifacts — sequential
specification, sequential simulated-parallel version, message-passing
version — and a discipline for relating them: test the first step,
prove (once, via Theorem 1) the second.  :class:`RefinementPipeline`
packages that as a single object so applications and tests can say
"run the whole methodology and give me the verdict":

* the **specification** is any callable producing reference outputs;
* the **simulated program** is a
  :class:`~repro.refinement.program.SimulatedParallelProgram` plus its
  initial stores;
* an **extract** function maps final stores to outputs comparable with
  the specification's (e.g. gather distributed arrays to global);
* :meth:`RefinementPipeline.verify` then runs
  (1) the specification, (2) the simulated program sequentially,
  (3) the mechanical transform under the threaded engine and under a
  battery of cooperative schedules — and reports bitwise verdicts for
  each relation, in the paper's own two categories:
  *simulated-refines-spec* (tested) and *parallel-equals-simulated*
  (guaranteed; checked anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.refinement.checker import ComparisonReport, compare_stores
from repro.refinement.program import SimulatedParallelProgram
from repro.refinement.store import AddressSpace
from repro.refinement.transform import to_parallel_system
from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.engine_threaded import ThreadedEngine
from repro.runtime.schedulers import RandomPolicy

__all__ = ["RefinementVerdict", "RefinementPipeline"]

#: extract(stores) -> named outputs; stores is a list of plain dicts
Extract = Callable[[Sequence[Mapping[str, Any]]], Mapping[str, Any]]


@dataclass
class RefinementVerdict:
    """Outcome of one full pipeline verification."""

    simulated_vs_spec: ComparisonReport
    parallel_vs_simulated: list[tuple[str, ComparisonReport]] = field(
        default_factory=list
    )

    @property
    def simulated_refines_spec(self) -> bool:
        return self.simulated_vs_spec.bitwise_equal

    @property
    def parallel_equals_simulated(self) -> bool:
        return all(r.bitwise_equal for _, r in self.parallel_vs_simulated)

    @property
    def ok(self) -> bool:
        return self.simulated_refines_spec and self.parallel_equals_simulated

    def describe(self) -> str:
        lines = [
            "refinement verdict:",
            f"  simulated-parallel refines specification : "
            f"{'YES (bitwise)' if self.simulated_refines_spec else 'NO'}",
        ]
        if not self.simulated_refines_spec:
            for line in self.simulated_vs_spec.describe().splitlines():
                lines.append("    " + line)
        for label, report in self.parallel_vs_simulated:
            verdict = "identical" if report.bitwise_equal else "DIFFERS"
            lines.append(
                f"  message passing [{label:<18}] vs simulated: {verdict}"
            )
        return "\n".join(lines)


class RefinementPipeline:
    """Bundle of (specification, simulated program, extraction)."""

    def __init__(
        self,
        specification: Callable[[], Mapping[str, Any]],
        program: SimulatedParallelProgram,
        initial_stores: Callable[[], list[dict[str, Any]]],
        extract: Extract,
        name: str = "pipeline",
    ):
        self.specification = specification
        self.program = program
        self.initial_stores = initial_stores
        self.extract = extract
        self.name = name

    # -- individual stages -------------------------------------------------------

    def run_specification(self) -> Mapping[str, Any]:
        return self.specification()

    def run_simulated(self) -> Mapping[str, Any]:
        stores = [
            AddressSpace(s, owner=i)
            for i, s in enumerate(self.initial_stores())
        ]
        self.program.run(stores=stores)
        return self.extract([s.raw() for s in stores])

    def run_parallel(self, engine=None) -> Mapping[str, Any]:
        system = to_parallel_system(
            self.program, initial_stores=self.initial_stores()
        )
        result = (engine or ThreadedEngine()).run(system)
        return self.extract(result.stores)

    # -- the full check -------------------------------------------------------------

    def verify(
        self,
        n_random_schedules: int = 3,
        seed0: int = 0,
        only: Sequence[str] | None = None,
    ) -> RefinementVerdict:
        """Run everything; compare bitwise.

        ``only`` restricts comparisons to the named outputs (e.g. skip
        outputs the program legitimately reorders, like far-field sums
        — compare those separately with a tolerance).
        """
        spec = self.run_specification()
        simulated = self.run_simulated()
        verdict = RefinementVerdict(
            simulated_vs_spec=compare_stores(simulated, spec, only=only)
        )
        threaded = self.run_parallel(ThreadedEngine())
        verdict.parallel_vs_simulated.append(
            ("threads", compare_stores(threaded, simulated, only=only))
        )
        for k in range(n_random_schedules):
            run = self.run_parallel(
                CooperativeEngine(RandomPolicy(seed=seed0 + k), trace=False)
            )
            verdict.parallel_vs_simulated.append(
                (
                    f"random schedule {seed0 + k}",
                    compare_stores(run, simulated, only=only),
                )
            )
        return verdict
