"""Simulated address spaces.

Step 1 of the paper's transformation recipe (section 4.4) "in effect
partitions the data into distinct address spaces by adding an index to
each variable; the value of this index constitutes a simulated process
ID".  An :class:`AddressSpace` is one such indexed slice of the data: a
mapping from variable names to values (NumPy arrays or scalars) that
*belongs* to one simulated process.

The class is a thin, checked wrapper over a dict so that

* the same object can wrap a process's live ``ctx.store`` in the
  parallel version (by reference) — local-computation blocks then run
  unchanged in both worlds;
* misspelled variables fail loudly (:class:`~repro.errors.StoreError`)
  instead of silently creating state;
* snapshots are deep copies, suitable for bitwise comparison.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.errors import StoreError
from repro.util import deep_copy_value
from repro.xp import is_array_like

__all__ = ["AddressSpace", "make_stores"]


def _check_compatible(name: str, current: Any, incoming: Any, owner: int) -> None:
    """Array-into-array writes must match shape exactly and cast safely.

    Silent NumPy broadcasting and down-casting are exactly how a wrong
    rank decomposition hides: a (4,) slab lands in a (4, 4) block by
    replication, or a float64 ghost strip quietly truncates into a
    float32 field.  Any such mismatch is a refinement bug, so it raises
    a typed :class:`~repro.errors.StoreError` instead.  Length-1 axes
    are ignored in the comparison — a (3,) value filling a (1, 3) face
    view writes every element exactly once, which is assignment, not
    broadcasting.
    """
    squeezed_in = tuple(d for d in incoming.shape if d != 1)
    squeezed_cur = tuple(d for d in current.shape if d != 1)
    if squeezed_in != squeezed_cur:
        raise StoreError(
            f"shape mismatch writing {name!r} (owner {owner}): variable is "
            f"{tuple(current.shape)}, value is {tuple(incoming.shape)}"
        )
    if incoming.dtype != current.dtype and not np.can_cast(
        incoming.dtype, current.dtype, casting="safe"
    ):
        raise StoreError(
            f"dtype mismatch writing {name!r} (owner {owner}): variable is "
            f"{current.dtype}, value is {incoming.dtype} (unsafe cast)"
        )


class AddressSpace:
    """Named variables of one simulated process.

    Variables must be declared (:meth:`define` or via the constructor
    mapping) before they can be read or assigned; this catches the
    classic refinement bug of a local block inventing state the plan
    never classified as distributed or duplicated.
    """

    __slots__ = ("_vars", "owner")

    def __init__(self, variables: dict[str, Any] | None = None, owner: int = -1):
        self._vars: dict[str, Any] = variables if variables is not None else {}
        #: simulated process ID this space belongs to (-1: unspecified)
        self.owner = owner

    @classmethod
    def wrap(cls, mapping: dict[str, Any], owner: int = -1) -> "AddressSpace":
        """Wrap an existing dict *by reference* (no copy) — used to run
        local blocks against a live process store."""
        return cls(mapping, owner)

    # -- declaration ------------------------------------------------------------

    def define(self, name: str, value: Any) -> None:
        """Introduce a new variable (error if it already exists)."""
        if name in self._vars:
            raise StoreError(f"variable {name!r} already defined")
        self._vars[name] = value

    # -- access -----------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise StoreError(
                f"unknown variable {name!r} (owner {self.owner}); "
                f"known: {sorted(self._vars)}"
            ) from None

    def __setitem__(self, name: str, value: Any) -> None:
        if name not in self._vars:
            raise StoreError(
                f"assignment to undeclared variable {name!r} "
                f"(owner {self.owner}); declare it with define()"
            )
        current = self._vars[name]
        if is_array_like(current) and is_array_like(value) and value.shape:
            _check_compatible(name, current, value, self.owner)
        self._vars[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __iter__(self) -> Iterator[str]:
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    def keys(self):
        return self._vars.keys()

    def items(self):
        return self._vars.items()

    def raw(self) -> dict[str, Any]:
        """The underlying dict (shared, not copied)."""
        return self._vars

    # -- value helpers -------------------------------------------------------------

    def read_region(self, name: str, region: tuple | None) -> Any:
        """Read (a copy of) ``name`` or a sub-region of it.

        ``region`` is a tuple of slices/ints indexing an array variable,
        or ``None`` for the whole value.  Array reads are copied:
        exchange semantics require right-hand sides evaluated against
        the pre-state.
        """
        value = self[name]
        if region is None:
            return deep_copy_value(value)
        # Duck-typed: any backend's nd-array indexes and copies the same
        # way, so no concrete array class is named here.
        arr = value if is_array_like(value) else np.asarray(value)
        return arr[region].copy()

    def write_region(self, name: str, region: tuple | None, value: Any) -> None:
        """Write ``value`` to ``name`` or a sub-region of it."""
        if region is None:
            current = self[name]
            if is_array_like(current) and current.shape:
                incoming = value if is_array_like(value) else np.asarray(value)
                if not incoming.shape:
                    raise StoreError(
                        f"shape mismatch writing {name!r}: variable is "
                        f"{tuple(current.shape)}, value is a scalar"
                    )
                _check_compatible(name, current, incoming, self.owner)
                current[...] = incoming
            else:
                self._vars[name] = value
            return
        target = self[name]
        if not is_array_like(target) or not target.shape:
            raise StoreError(
                f"region write to non-array variable {name!r}"
            )
        view = target[region]
        if is_array_like(value) and value.shape:
            _check_compatible(name, view, value, self.owner)
        target[region] = value

    def snapshot(self) -> dict[str, Any]:
        """Deep copy of all variables (for bitwise comparison)."""
        return {k: deep_copy_value(v) for k, v in self._vars.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace(owner={self.owner}, vars={sorted(self._vars)})"


def make_stores(
    nprocs: int, initial: dict[str, Any] | None = None
) -> list[AddressSpace]:
    """N fresh address spaces, each seeded with a deep copy of ``initial``.

    This is the "duplicate all data across all processes" starting point
    of transformation step 1; later steps narrow each space to its local
    section.
    """
    return [
        AddressSpace(
            {k: deep_copy_value(v) for k, v in (initial or {}).items()}, owner=i
        )
        for i in range(nprocs)
    ]
