"""Simulated address spaces.

Step 1 of the paper's transformation recipe (section 4.4) "in effect
partitions the data into distinct address spaces by adding an index to
each variable; the value of this index constitutes a simulated process
ID".  An :class:`AddressSpace` is one such indexed slice of the data: a
mapping from variable names to values (NumPy arrays or scalars) that
*belongs* to one simulated process.

The class is a thin, checked wrapper over a dict so that

* the same object can wrap a process's live ``ctx.store`` in the
  parallel version (by reference) — local-computation blocks then run
  unchanged in both worlds;
* misspelled variables fail loudly (:class:`~repro.errors.StoreError`)
  instead of silently creating state;
* snapshots are deep copies, suitable for bitwise comparison.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.errors import StoreError
from repro.util import deep_copy_value

__all__ = ["AddressSpace", "make_stores"]


class AddressSpace:
    """Named variables of one simulated process.

    Variables must be declared (:meth:`define` or via the constructor
    mapping) before they can be read or assigned; this catches the
    classic refinement bug of a local block inventing state the plan
    never classified as distributed or duplicated.
    """

    __slots__ = ("_vars", "owner")

    def __init__(self, variables: dict[str, Any] | None = None, owner: int = -1):
        self._vars: dict[str, Any] = variables if variables is not None else {}
        #: simulated process ID this space belongs to (-1: unspecified)
        self.owner = owner

    @classmethod
    def wrap(cls, mapping: dict[str, Any], owner: int = -1) -> "AddressSpace":
        """Wrap an existing dict *by reference* (no copy) — used to run
        local blocks against a live process store."""
        return cls(mapping, owner)

    # -- declaration ------------------------------------------------------------

    def define(self, name: str, value: Any) -> None:
        """Introduce a new variable (error if it already exists)."""
        if name in self._vars:
            raise StoreError(f"variable {name!r} already defined")
        self._vars[name] = value

    # -- access -----------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise StoreError(
                f"unknown variable {name!r} (owner {self.owner}); "
                f"known: {sorted(self._vars)}"
            ) from None

    def __setitem__(self, name: str, value: Any) -> None:
        if name not in self._vars:
            raise StoreError(
                f"assignment to undeclared variable {name!r} "
                f"(owner {self.owner}); declare it with define()"
            )
        self._vars[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __iter__(self) -> Iterator[str]:
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    def keys(self):
        return self._vars.keys()

    def items(self):
        return self._vars.items()

    def raw(self) -> dict[str, Any]:
        """The underlying dict (shared, not copied)."""
        return self._vars

    # -- value helpers -------------------------------------------------------------

    def read_region(self, name: str, region: tuple | None) -> Any:
        """Read (a copy of) ``name`` or a sub-region of it.

        ``region`` is a tuple of slices/ints indexing an array variable,
        or ``None`` for the whole value.  Array reads are copied:
        exchange semantics require right-hand sides evaluated against
        the pre-state.
        """
        value = self[name]
        if region is None:
            return deep_copy_value(value)
        arr = np.asarray(value)
        return arr[region].copy()

    def write_region(self, name: str, region: tuple | None, value: Any) -> None:
        """Write ``value`` to ``name`` or a sub-region of it."""
        if region is None:
            current = self[name]
            if isinstance(current, np.ndarray):
                incoming = np.asarray(value)
                if incoming.shape != current.shape:
                    raise StoreError(
                        f"shape mismatch writing {name!r}: variable is "
                        f"{current.shape}, value is {incoming.shape}"
                    )
                current[...] = incoming
            else:
                self[name] = value
            return
        target = self[name]
        if not isinstance(target, np.ndarray):
            raise StoreError(
                f"region write to non-array variable {name!r}"
            )
        target[region] = value

    def snapshot(self) -> dict[str, Any]:
        """Deep copy of all variables (for bitwise comparison)."""
        return {k: deep_copy_value(v) for k, v in self._vars.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace(owner={self.owner}, vars={sorted(self._vars)})"


def make_stores(
    nprocs: int, initial: dict[str, Any] | None = None
) -> list[AddressSpace]:
    """N fresh address spaces, each seeded with a deep copy of ``initial``.

    This is the "duplicate all data across all processes" starting point
    of transformation step 1; later steps narrow each space to its local
    section.
    """
    return [
        AddressSpace(
            {k: deep_copy_value(v) for k, v in (initial or {}).items()}, owner=i
        )
        for i in range(nprocs)
    ]
