"""Counters, gauges and the metrics registry.

The observability layer keeps its numeric state in a
:class:`MetricsRegistry`: a named collection of

* :class:`Counter` — a monotonically increasing total (messages sent,
  bytes moved, stages executed);
* :class:`Gauge` — a last-written value that additionally tracks its
  **high-water mark** (queue occupancy, buffered envelopes), because for
  capacity questions the peak matters more than the final value.

Two disciplines shape the implementation:

* **thread safety** — the threaded engine's processes update metrics
  concurrently, so every mutation takes the instrument's lock (the
  cooperative engine serialises actions and pays nothing for it);
* **zero cost when off** — :data:`NULL_REGISTRY` is a shared, stateless
  registry whose instruments discard every update.  Library code that
  wants to record unconditionally can hold a null instrument instead of
  branching; code on genuinely hot paths (the engines) branches on
  ``observer is None`` instead and never touches this module.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullRegistry",
    "NULL_REGISTRY",
]


class Counter:
    """A named, monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int | float:
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {amount}"
            )
        with self._lock:
            self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A named last-written value with a high-water mark.

    ``set`` overwrites; ``update_max`` only raises the high-water mark
    (for callers that track a peak without caring about the current
    value).  The high-water mark never decreases.
    """

    __slots__ = ("name", "_value", "_hwm", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._hwm = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> int | float:
        return self._value

    @property
    def high_water(self) -> int | float:
        return self._hwm

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value
            if value > self._hwm:
                self._hwm = value

    def update_max(self, value: int | float) -> None:
        with self._lock:
            if value > self._hwm:
                self._hwm = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value}, hwm={self._hwm})"


class MetricsRegistry:
    """A named collection of counters and gauges.

    ``counter(name)`` / ``gauge(name)`` create on first use and return
    the existing instrument afterwards, so any module can contribute to
    a shared total without coordination.  A name registered as one kind
    cannot be re-registered as the other.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name in self._gauges:
                raise ValueError(f"{name!r} is already a gauge")
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def snapshot(self) -> dict[str, int | float]:
        """All current values, flat: gauges contribute ``name`` and
        ``name/hwm`` entries.  Deterministically ordered by name."""
        with self._lock:
            out: dict[str, int | float] = {}
            for name in sorted(self._counters):
                out[name] = self._counters[name].value
            for name in sorted(self._gauges):
                g = self._gauges[name]
                out[name] = g.value
                out[f"{name}/hwm"] = g.high_water
            return out


class NullCounter(Counter):
    """A counter that discards every increment."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class NullGauge(Gauge):
    """A gauge that discards every write."""

    __slots__ = ()

    def set(self, value: int | float) -> None:
        pass

    def update_max(self, value: int | float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry handing out shared no-op instruments.

    Safe to share globally: it holds no per-run state, so "recording"
    into it from any number of runs or threads is free and harmless.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = NullCounter("null")
        self._null_gauge = NullGauge("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def snapshot(self) -> dict[str, int | float]:
        return {}


#: Shared stateless no-op registry (the default when instrumentation is off).
NULL_REGISTRY = NullRegistry()
