"""Distributed causal tracing: Lamport clocks and happens-before merge.

The cooperative and threaded engines can record a *total* observation
order (:class:`~repro.runtime.trace.Trace`) because one process watches
every action.  The multiprocess and socket engines have no such
observer — separate address spaces, separate hosts — but the paper's
model never needed a total order in the first place: Theorem 1's
commuting-diagram argument runs entirely over the **happens-before
partial order** (program order plus channel FIFO order, see
:mod:`repro.theory.happens_before`).  This module records exactly that
partial order on every engine, using the classic logical-clock
construction (Lamport 1978):

* each rank keeps a :class:`LamportClock`; every local event (send,
  receive, explicit step) *ticks* it;
* every sent message is stamped with the sender's post-tick clock —
  piggybacked in the wire header for pipes, the slab descriptor metas
  for shm payloads, and the frame-header clock word for TCP
  (:mod:`repro.dist.net.frames`);
* a receiver *max-merges*: ``c = max(c_local, c_message) + 1`` — so a
  receive's clock **strictly exceeds** its matching send's clock, and
  clock order is a linear extension of happens-before.

Per-rank logs are bounded ring buffers (oldest events spill to a JSONL
file when a spill path is configured, else they are counted as
dropped); each rank ships its log home through the engine's existing
result-pipe path and :func:`merge_causal_events` fuses them into a
:class:`CausalTrace` — a happens-before-consistent event sequence with
explicit send→recv edges, a validator for the clock invariant, and a
Figure-1-style topological timeline renderer that works even for runs
spanning hosts.

Tracing is a **pure refinement**: recorders observe sends and receives
but never influence them, so traced and untraced runs produce bitwise
identical final states (asserted by the engine-equivalence tests).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Mapping

__all__ = [
    "LamportClock",
    "CausalEvent",
    "CausalRecorder",
    "CausalTrace",
    "merge_causal_events",
]


class LamportClock:
    """One rank's scalar logical clock."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = int(value)

    def tick(self) -> int:
        """Advance for a local event; returns the new clock."""
        self.value += 1
        return self.value

    def merge(self, other: int) -> int:
        """Advance past a received message's stamp; returns the new
        clock, which strictly exceeds both operands."""
        self.value = max(self.value, int(other)) + 1
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self.value})"


@dataclass(frozen=True)
class CausalEvent:
    """One rank-local event with its logical timestamp.

    ``kind`` is ``"send"`` / ``"recv"`` / ``"step"``; ``channel`` names
    the channel (or carries the step label), ``seq`` the channel
    sequence number (``-1`` for steps).  ``sent_clock`` is recorded on
    receives only: the stamp carried by the matched message, which makes
    every send→recv edge explicit and checkable after the merge.  ``t``
    is the wall timestamp (``perf_counter``; system-wide on Linux, so
    cross-process comparable) used for timeline layout — never for
    ordering decisions, which belong to ``clock`` alone.
    """

    rank: int
    clock: int
    kind: str
    channel: str
    seq: int
    t: float = 0.0
    sent_clock: int | None = None

    def brief(self) -> str:
        if self.kind == "step":
            return f"step({self.channel})"
        return f"{self.kind}({self.channel}#{self.seq})"


class CausalRecorder:
    """One rank's event log: a Lamport clock plus a bounded ring.

    The engine (or :func:`repro.dist.worker.run_job`) creates one per
    rank and attaches it to the rank's channels; the channel send/recv
    paths call :meth:`on_send` / :meth:`on_recv`, executors call
    :meth:`on_step`.  The ring holds the newest ``capacity`` events;
    when it overflows, the oldest events either spill to a JSONL file
    (``spill_path`` set) or are discarded and counted in ``dropped`` —
    either way recording never blocks and never grows without bound.
    """

    def __init__(
        self,
        rank: int,
        capacity: int = 1 << 16,
        spill_path: str | None = None,
    ):
        self.rank = rank
        self.clock = LamportClock()
        self.capacity = max(1, int(capacity))
        self.spill_path = spill_path
        self.events: deque[CausalEvent] = deque()
        self.dropped = 0
        self.spilled = 0
        self._spill_fh = None

    # -- recording hooks ---------------------------------------------------

    def on_send(self, channel: str, seq: int) -> int:
        """Tick for a send; returns the stamp to piggyback on the wire."""
        c = self.clock.tick()
        self._record(CausalEvent(self.rank, c, "send", channel, seq, perf_counter()))
        return c

    def on_recv(self, channel: str, seq: int, sent_clock: int | None) -> int:
        """Max-merge a delivered message's stamp; returns the new clock."""
        c = self.clock.merge(sent_clock or 0)
        self._record(
            CausalEvent(
                self.rank, c, "recv", channel, seq, perf_counter(), sent_clock
            )
        )
        return c

    def on_step(self, label: str) -> int:
        """Tick for a local step (stage boundary, kernel span)."""
        c = self.clock.tick()
        self._record(CausalEvent(self.rank, c, "step", label, -1, perf_counter()))
        return c

    # -- ring management ---------------------------------------------------

    def _record(self, event: CausalEvent) -> None:
        self.events.append(event)
        if len(self.events) > self.capacity:
            oldest = self.events.popleft()
            if self.spill_path is not None:
                self._spill(oldest)
            else:
                self.dropped += 1

    def _spill(self, event: CausalEvent) -> None:
        if self._spill_fh is None:
            self._spill_fh = open(self.spill_path, "a")
        json.dump(_event_record(event), self._spill_fh)
        self._spill_fh.write("\n")
        self.spilled += 1

    def close(self) -> None:
        if self._spill_fh is not None:
            self._spill_fh.close()
            self._spill_fh = None

    # -- handoff -----------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        """This rank's log, flattened for the result pipe."""
        return {
            "rank": self.rank,
            "clock": self.clock.value,
            "dropped": self.dropped,
            "spilled": self.spilled,
            "events": [
                (e.kind, e.channel, e.seq, e.clock, e.sent_clock, e.t)
                for e in self.events
            ],
        }


def _event_record(e: CausalEvent) -> dict[str, Any]:
    rec: dict[str, Any] = {
        "rank": e.rank,
        "clock": e.clock,
        "kind": e.kind,
        "channel": e.channel,
        "seq": e.seq,
        "t": e.t,
    }
    if e.sent_clock is not None:
        rec["sent_clock"] = e.sent_clock
    return rec


@dataclass
class CausalTrace:
    """The merged happens-before-consistent event sequence of one run.

    ``events`` is a topological order of the happens-before relation:
    sorted by ``(clock, rank)``, which is a valid linear extension
    because per-rank clocks strictly increase (program order preserved)
    and every receive's clock strictly exceeds its matching send's
    (channel order preserved).  ``dropped`` counts ring-buffer
    overflows across all ranks (0 in any run small enough to verify).
    """

    nprocs: int
    events: list[CausalEvent] = field(default_factory=list)
    engine: str = ""
    dropped: int = 0

    def __len__(self) -> int:
        return len(self.events)

    @property
    def depth(self) -> int:
        """Maximum clock value = length of the longest causal chain."""
        return max((e.clock for e in self.events), default=0)

    # -- edges and validation ----------------------------------------------

    def send_recv_pairs(self) -> list[tuple[CausalEvent, CausalEvent]]:
        """Every matched ``(send, recv)`` edge, in receive order."""
        sends = {
            (e.channel, e.seq): e for e in self.events if e.kind == "send"
        }
        return [
            (sends[(e.channel, e.seq)], e)
            for e in self.events
            if e.kind == "recv" and (e.channel, e.seq) in sends
        ]

    def validate(self) -> list[str]:
        """Check the Lamport invariant; returns violation descriptions.

        An empty list certifies that every receive's clock strictly
        exceeds its matching send's clock and that the stamp each
        receiver recorded equals the sender's — i.e. the merged trace
        really is happens-before consistent end-to-end (including
        across the wire formats that carried the stamps).
        """
        violations: list[str] = []
        sends = {
            (e.channel, e.seq): e for e in self.events if e.kind == "send"
        }
        for e in self.events:
            if e.kind != "recv":
                continue
            send = sends.get((e.channel, e.seq))
            if send is None:
                violations.append(
                    f"recv {e.channel}#{e.seq} on P{e.rank} has no "
                    "matching send in the trace"
                )
                continue
            if e.clock <= send.clock:
                violations.append(
                    f"recv {e.channel}#{e.seq} clock {e.clock} does not "
                    f"exceed send clock {send.clock}"
                )
            if e.sent_clock is not None and e.sent_clock != send.clock:
                violations.append(
                    f"recv {e.channel}#{e.seq} carried stamp "
                    f"{e.sent_clock} but the send's clock was {send.clock}"
                )
        return violations

    # -- rendering ----------------------------------------------------------

    def render(self, limit: int | None = None) -> str:
        """A Figure-1-style timeline: one column per rank, one row per
        event, rows in topological (clock) order.

        Works for any engine — the layout needs only the partial order,
        never a global observation order.
        """
        col = 18
        ranks = sorted({e.rank for e in self.events}) or list(range(self.nprocs))
        index = {r: i for i, r in enumerate(ranks)}
        header = " clock  " + "".join(f"{f'P{r}':<{col}}" for r in ranks)
        lines = [header, " " + "-" * (len(header) - 1)]
        shown = self.events if limit is None else self.events[: max(0, limit)]
        for e in shown:
            cells = [" " * col] * len(ranks)
            cells[index[e.rank]] = f"{e.brief():<{col}}"
            lines.append(f"{e.clock:6d}  " + "".join(cells).rstrip())
        if limit is not None and len(self.events) > limit:
            lines.append(f"  ... and {len(self.events) - limit} more event(s)")
        return "\n".join(lines)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``trace --out`` schema; see
        docs/OBSERVABILITY.md)."""
        return {
            "nprocs": self.nprocs,
            "engine": self.engine,
            "dropped": self.dropped,
            "depth": self.depth,
            "events": [_event_record(e) for e in self.events],
            "violations": self.validate(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CausalTrace":
        return cls(
            nprocs=int(data["nprocs"]),
            engine=data.get("engine", ""),
            dropped=int(data.get("dropped", 0)),
            events=[
                CausalEvent(
                    int(r["rank"]),
                    int(r["clock"]),
                    r["kind"],
                    r["channel"],
                    int(r["seq"]),
                    float(r.get("t", 0.0)),
                    (
                        int(r["sent_clock"])
                        if r.get("sent_clock") is not None
                        else None
                    ),
                )
                for r in data["events"]
            ],
        )


def merge_causal_events(
    payloads: Mapping[int, Mapping[str, Any]],
    nprocs: int,
    engine: str = "",
    epoch: float | None = None,
) -> CausalTrace:
    """Fuse per-rank :meth:`CausalRecorder.payload` logs into one trace.

    Wall timestamps shift so the run starts at ~0 (``epoch`` defaults to
    the earliest event time, matching the observation-merge convention
    in :func:`repro.obs.report.merge_worker_observations`).  The merged
    order — ``(clock, rank)`` — is deterministic regardless of the
    order ranks reported in, and is a linear extension of
    happens-before by the Lamport construction.
    """
    events: list[CausalEvent] = []
    dropped = 0
    for rank, payload in sorted(payloads.items()):
        dropped += int(payload.get("dropped", 0))
        for kind, channel, seq, clock, sent_clock, t in payload["events"]:
            events.append(
                CausalEvent(
                    int(payload.get("rank", rank)),
                    int(clock),
                    kind,
                    channel,
                    int(seq),
                    float(t),
                    int(sent_clock) if sent_clock is not None else None,
                )
            )
    if epoch is None:
        epoch = min((e.t for e in events), default=0.0)
    if epoch:
        events = [
            CausalEvent(
                e.rank, e.clock, e.kind, e.channel, e.seq, e.t - epoch,
                e.sent_clock,
            )
            for e in events
        ]
    events.sort(key=lambda e: (e.clock, e.rank, e.seq, e.kind))
    return CausalTrace(
        nprocs=nprocs, events=events, engine=engine, dropped=dropped
    )


def iter_spill(path) -> Iterable[CausalEvent]:
    """Read back events spilled by a :class:`CausalRecorder` (JSONL)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            yield CausalEvent(
                int(r["rank"]),
                int(r["clock"]),
                r["kind"],
                r["channel"],
                int(r["seq"]),
                float(r.get("t", 0.0)),
                int(r["sent_clock"]) if r.get("sent_clock") is not None else None,
            )
