"""Measured traffic vs :mod:`repro.perfmodel.costmodel` predictions.

The performance substitution behind Table 1 and Figure 2 (experiments
E3/E4) rests on *modeled* communication schedules: so many messages of
so many bytes per boundary-exchange phase, so much traffic into the
host.  With the observability layer the same quantities are *measured*
on an actual instrumented run, and this module closes the loop: it
lines the two up and reports the agreement.

Channel-name taxonomy used to classify measured traffic (the mechanical
transform names every channel ``dx_<src>_<dst>``):

* **grid ↔ grid** — boundary-exchange traffic (nothing else connects
  two grid ranks in the mesh skeleton);
* **grid → host** — collection of the field arrays plus, for Version C,
  the far-field potential gathers;
* **host → grid** — explicit distribute stages (absent by default: the
  builders pre-scatter initial stores).

The boundary-exchange byte prediction is exact by construction — the
model's strip arithmetic (:func:`~repro.perfmodel.costmodel.
exchange_comm_volume`) and the exchange's region arithmetic
(:mod:`repro.archetypes.mesh.ghost`) compute the same products — so the
measured payload must match the model to the byte once the 8-byte
per-message stage marker (transform framing) is deducted.  Message
counts must match exactly.  Any drift is a real divergence between the
model and the implementation, which is precisely what this report
exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.report import RunReport
from repro.perfmodel.costmodel import fdtd_step_costs
from repro.util import format_table, product

__all__ = ["ModelComparison", "fdtd_model_comparison"]

#: Transform framing: each combined exchange message carries one 8-byte
#: stage marker alongside its value list (see refinement.transform).
_STAGE_MARKER_BYTES = 8


@dataclass(frozen=True)
class ModelComparison:
    """Measured-vs-modeled communication quantities for one run."""

    rows: list  # (quantity, measured, modeled)

    def table(self) -> str:
        out = []
        for quantity, measured, modeled in self.rows:
            if modeled:
                ratio = f"{measured / modeled:.4f}"
            else:
                ratio = "-" if measured == 0 else "inf"
            out.append([quantity, f"{measured:.0f}", f"{modeled:.0f}", ratio])
        return format_table(
            ["quantity (per run)", "measured", "modeled", "ratio"], out
        )

    def agreement(self, tolerance: float = 0.0) -> bool:
        """True iff every measured quantity is within ``tolerance``
        (relative) of its model; ``0.0`` demands exact agreement."""
        for _, measured, modeled in self.rows:
            if modeled == 0:
                if measured != 0:
                    return False
            elif abs(measured - modeled) > tolerance * modeled:
                return False
        return True


def _direction_totals(
    report: RunReport, grid_size: int
) -> dict[str, tuple[int, int]]:
    """Aggregate dx-channel traffic by direction class.

    Returns ``{"grid": (msgs, payload), "to_host": ..., "from_host": ...}``
    with the per-message stage marker already deducted from payloads.
    """
    totals = {"grid": [0, 0], "to_host": [0, 0], "from_host": [0, 0]}
    for ch in report.channels:
        if not ch.name.startswith("dx_"):
            continue
        if ch.writer < grid_size and ch.reader < grid_size:
            key = "grid"
        elif ch.writer < grid_size:
            key = "to_host"
        else:
            key = "from_host"
        totals[key][0] += ch.sends
        totals[key][1] += ch.bytes_sent - _STAGE_MARKER_BYTES * ch.sends
    return {k: (v[0], v[1]) for k, v in totals.items()}


def fdtd_model_comparison(
    par,
    report: RunReport,
    word_bytes: int = 8,
) -> ModelComparison:
    """Compare one parallel-FDTD run's measured traffic with the model.

    ``par`` is the :class:`~repro.apps.fdtd.parallel.ParallelFDTD`
    handle the run was built from (it carries the decomposition, the
    version, and the NTFF sizing the model needs); ``report`` is the
    run's :class:`~repro.obs.report.RunReport`.
    """
    decomp = par.decomp
    steps = par.config.steps
    grid_cells = par.config.grid.shape
    costs = fdtd_step_costs(
        grid_cells,
        decomp,
        word_bytes,
        version=par.version,
        ntff_gap=par.ntff_config.gap if par.ntff_config is not None else 3,
    )
    measured = _direction_totals(report, par.grid_size)

    # Boundary exchange: the per-step model times the step count.
    exchange_msgs = costs.exchange.total_messages * steps
    exchange_bytes = costs.exchange.total_bytes * steps

    # Grid -> host: six field-array collects (owned regions, no ghosts),
    # plus two potential-array gathers in Version C.
    owned_nodes = sum(
        product(decomp.owned_shape(r)) for r in range(decomp.nprocs)
    )
    to_host_msgs = 6 * par.grid_size
    to_host_bytes = 6 * owned_nodes * word_bytes
    if par.version == "C":
        ndirs = len(par.ntff_config.directions)
        potential = ndirs * par.ntff_bins * 3 * word_bytes
        to_host_msgs += 2 * par.grid_size
        to_host_bytes += 2 * par.grid_size * potential

    rows = [
        ("boundary-exchange messages", measured["grid"][0], exchange_msgs),
        ("boundary-exchange payload bytes", measured["grid"][1], exchange_bytes),
        ("grid->host messages", measured["to_host"][0], to_host_msgs),
        ("grid->host payload bytes", measured["to_host"][1], to_host_bytes),
        ("host->grid messages", measured["from_host"][0], 0),
    ]
    return ModelComparison(rows=rows)
