"""Runtime observability: metrics, timed spans, run reports, trace export.

The paper's subject is what happens *inside* an execution —
interleavings, channel traffic, blocking receives — and this package is
the instrumentation that makes those things measurable:

* :mod:`~repro.obs.metrics` — counters, gauges with high-water marks,
  and the :class:`MetricsRegistry` that holds them (plus no-op variants
  for the instrumentation-off path);
* :mod:`~repro.obs.spans` — :class:`Span` intervals and the recorder
  that times them;
* :mod:`~repro.obs.observer` — the per-run :class:`Observer` the
  engines, communicator and archetype layers report into;
* :mod:`~repro.obs.report` — the frozen :class:`RunReport`: per-process
  compute/blocked wall time, per-channel traffic and queue high-water
  marks, the rank × rank communication matrix, per-tag streams, spans
  and metrics, rendered as tables;
* :mod:`~repro.obs.causal` — Lamport clocks, per-rank causal event
  logs, and the merged happens-before :class:`CausalTrace` — the
  tracing that works on every engine, including across hosts;
* :mod:`~repro.obs.export` — JSONL event log (lossless round trip) and
  Chrome trace-event JSON for ``chrome://tracing`` / Perfetto;
* :mod:`~repro.obs.validate` — measured traffic vs
  :mod:`repro.perfmodel` predictions (closing the loop on E3/E4).

Instrumentation is **off by default and free when off**: engines take a
``None`` observer and branch past every hook; layers that prefer
unconditional calls use :data:`NULL_OBSERVER`.  Enable it per run::

    from repro.obs import Observer
    from repro.runtime import ThreadedEngine

    result = ThreadedEngine(observe=True).run(system)
    print(result.report.summary())

or pass an :class:`Observer` instance to share one across layers.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.observer import (
    Observer,
    NullObserver,
    NULL_OBSERVER,
    observer_of,
)
from repro.obs.report import (
    ChannelTraffic,
    ProcessTimes,
    RunReport,
    StreamTraffic,
    build_run_report,
)
from repro.obs.causal import (
    CausalEvent,
    CausalRecorder,
    CausalTrace,
    LamportClock,
    merge_causal_events,
)
from repro.obs.export import (
    chrome_trace_dict,
    read_chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def __getattr__(name: str):
    # validate pulls in repro.perfmodel (and through it the archetype
    # and refinement layers, which themselves import the runtime — and
    # the runtime's collectives import this package).  Loading it
    # lazily keeps ``from repro.obs import fdtd_model_comparison``
    # working without closing that cycle at import time.
    if name in ("ModelComparison", "fdtd_model_comparison"):
        from repro.obs import validate

        return getattr(validate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "SpanRecorder",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "observer_of",
    "ChannelTraffic",
    "ProcessTimes",
    "RunReport",
    "StreamTraffic",
    "build_run_report",
    "CausalEvent",
    "CausalRecorder",
    "CausalTrace",
    "LamportClock",
    "merge_causal_events",
    "chrome_trace_dict",
    "read_chrome_trace",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "ModelComparison",
    "fdtd_model_comparison",
]
