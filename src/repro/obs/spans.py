"""Timed spans: named intervals on a per-process timeline.

A :class:`Span` is one closed interval of one process's execution — a
program stage, a collective operation, a blocked receive — with a name,
a category, and optional key/value arguments.  Spans are what the
Chrome trace-event export turns into the bars of a
``chrome://tracing`` / Perfetto timeline (process = the run, thread =
the rank).

Spans may nest (a collective inside a program stage inside the process
lifetime); the recorder tracks the nesting depth per (thread, rank) so
exports and reports can reconstruct the hierarchy without a parent
pointer — the same convention Chrome's ``X`` (complete) events use,
where containment is inferred from interval inclusion.

Timestamps are ``time.perf_counter()`` values (seconds, arbitrary
epoch); reports and exporters subtract the run's epoch so rendered
times start near zero.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "SpanRecorder"]


@dataclass(frozen=True)
class Span:
    """One finished interval of one process.

    ``depth`` is the nesting level at which the span was opened (0 for
    top-level), letting consumers indent or aggregate hierarchically.
    """

    name: str
    cat: str
    rank: int
    t0: float
    t1: float
    depth: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def shifted(self, epoch: float) -> "Span":
        """The same span with timestamps relative to ``epoch``."""
        return Span(
            self.name,
            self.cat,
            self.rank,
            self.t0 - epoch,
            self.t1 - epoch,
            self.depth,
            dict(self.args),
        )


class SpanRecorder:
    """Collects finished spans; hands out context managers to time them.

    Thread-safe: each process thread opens and closes its own spans, and
    the recorder only locks to append to the shared list.  Per-rank
    nesting depth is tracked without a lock because a rank's spans are
    opened and closed by a single thread.
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._depths: dict[int, int] = {}

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(
        self, rank: int, name: str, cat: str = "phase", **args: Any
    ) -> Iterator[None]:
        """Time a block as a span of process ``rank``."""
        depth = self._depths.get(rank, 0)
        self._depths[rank] = depth + 1
        t0 = self._clock()
        try:
            yield
        finally:
            t1 = self._clock()
            self._depths[rank] = depth
            self.record(Span(name, cat, rank, t0, t1, depth, args))

    def add(
        self,
        rank: int,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        **args: Any,
    ) -> None:
        """Record a span whose endpoints the caller already measured
        (used for blocked-receive intervals timed inside engines)."""
        self.record(Span(name, cat, rank, t0, t1, self._depths.get(rank, 0), args))

    @property
    def spans(self) -> list[Span]:
        """All finished spans, ordered by start time."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.t0, s.rank))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
