"""The per-run observer: the single collection point for instrumentation.

An :class:`Observer` is created for (at most) one run and threaded
through it: engines call the lifecycle and blocked-receive hooks, the
communicator reports tagged streams, and any layer may open
:meth:`Observer.span` intervals or touch :attr:`Observer.registry`
metrics.  After the run, :func:`repro.obs.report.build_run_report`
freezes everything into a :class:`~repro.obs.report.RunReport`.

Design rules:

* **the null path is** ``None`` **or** :data:`NULL_OBSERVER` — engines
  branch on ``observer is None`` (not even a method call on the hot
  path); library layers that prefer unconditional calls hold
  :data:`NULL_OBSERVER`, whose hooks are empty and whose ``span`` is a
  shared no-op context manager.  Either way an un-observed run records
  nothing and allocates nothing per event.
* **observers never influence execution** — no hook returns a value a
  process body can see, so instrumented and bare runs compute
  bit-identical results (determinism is the whole subject of the
  reproduced paper; the instruments must not perturb it).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.spans import SpanRecorder

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER", "observer_of"]


class Observer:
    """Collects one run's instrumentation.

    Attributes
    ----------
    registry:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.
    spans:
        The run's :class:`~repro.obs.spans.SpanRecorder`.
    epoch:
        Clock value at observer creation; reports shift timestamps so
        the run starts near zero.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.epoch = clock()
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(clock)
        self._lock = threading.Lock()
        # rank -> [name, start, wall, blocked]
        self._procs: dict[int, list] = {}
        # (src, dst, tag) -> [messages, bytes]
        self._streams: dict[tuple[int, int, int], list] = {}

    # -- engine lifecycle hooks ---------------------------------------------

    def process_started(self, rank: int, name: str = "") -> None:
        with self._lock:
            self._procs[rank] = [name or f"P{rank}", self.clock(), 0.0, 0.0]

    def process_finished(self, rank: int) -> None:
        now = self.clock()
        with self._lock:
            entry = self._procs.get(rank)
            if entry is not None:
                entry[2] = now - entry[1]

    def recv_blocked(
        self, rank: int, channel_name: str, t0: float, t1: float
    ) -> None:
        """One receive's blocked interval, timed by the engine."""
        with self._lock:
            entry = self._procs.get(rank)
            if entry is not None:
                entry[3] += t1 - t0
        self.spans.add(rank, f"recv {channel_name}", "blocked", t0, t1)

    # -- communicator hook ---------------------------------------------------

    def message(self, src: int, dst: int, tag: int, nbytes: int) -> None:
        """One tagged logical message (communicator layer)."""
        key = (src, dst, tag)
        with self._lock:
            entry = self._streams.get(key)
            if entry is None:
                self._streams[key] = [1, nbytes]
            else:
                entry[0] += 1
                entry[1] += nbytes

    # -- spans ---------------------------------------------------------------

    def span(self, rank: int, name: str, cat: str = "phase", **args: Any):
        """Context manager timing a block as a span of ``rank``."""
        return self.spans.span(rank, name, cat, **args)

    # -- frozen views --------------------------------------------------------

    def process_times(self) -> dict[int, tuple[str, float, float]]:
        """``rank -> (name, wall, blocked)`` for every observed process.

        A process still running (finish hook not yet called) reports its
        wall time as elapsed-so-far.
        """
        now = self.clock()
        with self._lock:
            out = {}
            for rank, (name, start, wall, blocked) in self._procs.items():
                out[rank] = (name, wall if wall else now - start, blocked)
            return out

    def stream_stats(self) -> dict[tuple[int, int, int], tuple[int, int]]:
        """``(src, dst, tag) -> (messages, bytes)`` for tagged streams."""
        with self._lock:
            return {k: (v[0], v[1]) for k, v in self._streams.items()}


_NULL_CM = nullcontext()


class NullObserver(Observer):
    """An observer that records nothing, at (almost) no cost.

    Holds the shared :data:`~repro.obs.metrics.NULL_REGISTRY`; its
    ``span`` returns one shared no-op context manager, so layers like
    the collectives can instrument unconditionally.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately does not call super()
        self.clock = time.perf_counter
        self.epoch = 0.0
        self.registry = NULL_REGISTRY
        self.spans = SpanRecorder(time.perf_counter)

    def process_started(self, rank: int, name: str = "") -> None:
        pass

    def process_finished(self, rank: int) -> None:
        pass

    def recv_blocked(
        self, rank: int, channel_name: str, t0: float, t1: float
    ) -> None:
        pass

    def message(self, src: int, dst: int, tag: int, nbytes: int) -> None:
        pass

    def span(self, rank: int, name: str, cat: str = "phase", **args: Any):
        return _NULL_CM

    def process_times(self) -> dict[int, tuple[str, float, float]]:
        return {}

    def stream_stats(self) -> dict[tuple[int, int, int], tuple[int, int]]:
        return {}


#: Shared no-op observer (safe to use from any number of runs).
NULL_OBSERVER = NullObserver()


def observer_of(ctx: Any) -> Observer:
    """The observer attached to a process context, or the null observer.

    Library layers built on :class:`~repro.runtime.context.ProcessContext`
    (communicator, collectives, archetype routines) use this to record
    unconditionally without knowing whether the run is observed.
    """
    obs = getattr(ctx, "observer", None)
    return obs if obs is not None else NULL_OBSERVER
