"""Exporters: JSONL event log and Chrome trace-event JSON.

Two output formats, two audiences:

* :func:`write_jsonl` — one JSON object per line, the machine-readable
  record of a run (per-process times, per-channel traffic, streams,
  spans, metrics).  :func:`read_jsonl` rebuilds an equal
  :class:`~repro.obs.report.RunReport`, so the log is a lossless
  round-trip of the report.
* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: the
  run is one *process*, each rank one *thread*, every span a complete
  (``"ph": "X"``) event.  Blocked-receive spans appear on the same
  timeline as program phases, which makes waiting time visually obvious
  — the Figure 1 interleaving picture, but with real durations.

Lane assignment: ranks named by the report's process list are the run's
real ranks — they get the run's trace process (pid 0) with one thread
lane each, dense tids in sorted-rank order plus explicit
``thread_sort_index`` metadata so multiprocess and multi-host ranks
render as unique, stably-ordered lanes.  Span ranks *outside* the
process list (e.g. the serving layer's per-job spans, whose "rank" is a
job id) land in a separate auxiliary trace process (pid 1) instead of
colliding with rank lanes.

When the report carries a causal trace (``report.causal``), every
matched send→recv pair additionally becomes a Chrome *flow* event pair
(``"ph": "s"`` / ``"ph": "f"``), drawing the happens-before arrows
between rank lanes.

Timestamps: report spans are seconds relative to the run start; Chrome
wants integer-ish microseconds, so spans are scaled by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.report import RunReport

__all__ = [
    "chrome_trace_dict",
    "write_chrome_trace",
    "read_chrome_trace",
    "write_jsonl",
    "read_jsonl",
]

#: The run's ranks live in this trace process...
_PID = 0
#: ...and non-rank span owners (serving-layer job spans) in this one.
_AUX_PID = 1


def _lane_map(report: RunReport) -> dict[int, tuple[int, int]]:
    """``rank -> (pid, tid)``: unique, stably-sorted lanes.

    Real ranks (the report's process list; every span rank when the
    list is empty) get dense tids in sorted-rank order under pid 0;
    any remaining span ranks are auxiliary ids under pid 1.  Dense
    tids — rather than the raw rank — keep lanes unique even when
    local rank ids repeat across hosts.
    """
    real = sorted(p.rank for p in report.processes)
    span_ranks = sorted({s.rank for s in report.spans})
    if not real:
        real = span_ranks
    lanes = {rank: (_PID, tid) for tid, rank in enumerate(real)}
    aux = [r for r in span_ranks if r not in lanes]
    lanes.update({rank: (_AUX_PID, tid) for tid, rank in enumerate(aux)})
    return lanes


def chrome_trace_dict(report: RunReport) -> dict[str, Any]:
    """The report's spans (and causal edges) as a Trace Event Format
    object."""
    lanes = _lane_map(report)
    names = {p.rank: p.name for p in report.processes}
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro run ({report.engine})"},
        },
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": _PID},
        },
    ]
    if any(pid == _AUX_PID for pid, _tid in lanes.values()):
        events.append(
            {
                "ph": "M",
                "pid": _AUX_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"repro aux spans ({report.engine})"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": _AUX_PID,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": _AUX_PID},
            }
        )
    for rank in sorted(lanes):
        pid, tid = lanes[rank]
        label = names.get(rank, f"P{rank}" if pid == _PID else f"span-{rank}")
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for span in report.spans:
        pid, tid = lanes[span.rank]
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.t0 * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    if report.causal is not None:
        events.extend(_flow_events(report.causal, lanes))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _flow_events(causal, lanes: dict[int, tuple[int, int]]) -> list[dict]:
    """One flow-event pair (``"s"`` start / ``"f"`` finish) per matched
    send→recv edge in the causal trace — the happens-before arrows."""
    events: list[dict[str, Any]] = []
    for k, (send, recv) in enumerate(causal.send_recv_pairs()):
        for ev, ph in ((send, "s"), (recv, "f")):
            pid, tid = lanes.get(ev.rank, (_PID, ev.rank))
            flow: dict[str, Any] = {
                "name": f"{ev.channel}#{ev.seq}",
                "cat": "causal",
                "ph": ph,
                "id": k,
                "ts": ev.t * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"clock": ev.clock},
            }
            if ph == "f":
                flow["bp"] = "e"
            events.append(flow)
    return events


def write_chrome_trace(report: RunReport, path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(chrome_trace_dict(report), fh)
    return path


def read_chrome_trace(path) -> dict[str, Any]:
    """Load a Chrome trace JSON (for validation and tests)."""
    with Path(path).open() as fh:
        return json.load(fh)


def write_jsonl(report: RunReport, path) -> Path:
    """Write the report as JSON-lines; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in report.to_events():
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path) -> RunReport:
    """Rebuild a :class:`RunReport` from a JSONL event log."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return RunReport.from_events(events)
