"""Exporters: JSONL event log and Chrome trace-event JSON.

Two output formats, two audiences:

* :func:`write_jsonl` — one JSON object per line, the machine-readable
  record of a run (per-process times, per-channel traffic, streams,
  spans, metrics).  :func:`read_jsonl` rebuilds an equal
  :class:`~repro.obs.report.RunReport`, so the log is a lossless
  round-trip of the report.
* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: the
  run is one *process*, each rank one *thread*, every span a complete
  (``"ph": "X"``) event.  Blocked-receive spans appear on the same
  timeline as program phases, which makes waiting time visually obvious
  — the Figure 1 interleaving picture, but with real durations.

Timestamps: report spans are seconds relative to the run start; Chrome
wants integer-ish microseconds, so spans are scaled by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.report import RunReport

__all__ = [
    "chrome_trace_dict",
    "write_chrome_trace",
    "read_chrome_trace",
    "write_jsonl",
    "read_jsonl",
]

#: One trace "process" per run; ranks are its "threads".
_PID = 0


def chrome_trace_dict(report: RunReport) -> dict[str, Any]:
    """The report's spans as a Trace Event Format object."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro run ({report.engine})"},
        }
    ]
    names = {p.rank: p.name for p in report.processes}
    ranks = sorted({s.rank for s in report.spans} | set(names))
    for rank in ranks:
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": names.get(rank, f"P{rank}")},
            }
        )
    for span in report.spans:
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.t0 * 1e6,
            "dur": span.duration * 1e6,
            "pid": _PID,
            "tid": span.rank,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(report: RunReport, path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(chrome_trace_dict(report), fh)
    return path


def read_chrome_trace(path) -> dict[str, Any]:
    """Load a Chrome trace JSON (for validation and tests)."""
    with Path(path).open() as fh:
        return json.load(fh)


def write_jsonl(report: RunReport, path) -> Path:
    """Write the report as JSON-lines; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in report.to_events():
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path) -> RunReport:
    """Rebuild a :class:`RunReport` from a JSONL event log."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return RunReport.from_events(events)
