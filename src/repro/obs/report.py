"""The per-run report: everything the instruments observed, frozen.

A :class:`RunReport` is a plain-data summary of one execution:

* per-process wall time split into **compute** and **blocked-on-recv**
  (the split the paper's bulk-synchronous performance model reasons
  about: a rank is either advancing its local computation or waiting on
  a channel);
* per-channel traffic: message count, payload bytes, and the queue's
  occupancy **high-water mark** (how far ahead the writer ran — the
  empirical face of "infinite slack");
* the **rank × rank communication matrix** (messages and bytes),
  aggregated from channel endpoints;
* per-tag logical **stream** statistics from the communicator layer;
* all recorded :class:`~repro.obs.spans.Span` intervals (timestamps
  shifted so the run starts at ~0);
* a snapshot of the run's metrics registry.

The report renders itself as fixed-width tables (matching the
experiment reports elsewhere in this repository) and serialises to a
flat event list for the JSONL exporter; :meth:`RunReport.from_events`
rebuilds an equal report from that list, which is what the round-trip
tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.spans import Span
from repro.util import format_table

__all__ = [
    "ChannelTraffic",
    "ProcessTimes",
    "StreamTraffic",
    "RunReport",
    "build_run_report",
    "worker_observation",
    "merge_worker_observations",
]


@dataclass(frozen=True)
class ProcessTimes:
    """One process's wall-clock accounting."""

    rank: int
    name: str
    wall: float
    blocked: float

    @property
    def compute(self) -> float:
        """Wall time not spent blocked on a receive."""
        return max(0.0, self.wall - self.blocked)


@dataclass(frozen=True)
class ChannelTraffic:
    """One channel's lifetime traffic and peak occupancy."""

    name: str
    writer: int
    reader: int
    sends: int
    receives: int
    bytes_sent: int
    queue_hwm: int


@dataclass(frozen=True)
class StreamTraffic:
    """One tagged logical stream (communicator layer)."""

    src: int
    dst: int
    tag: int
    messages: int
    nbytes: int


def _phase_key(name: str) -> str:
    """Collapse per-step stage names (``E-phase[3]``) into one phase."""
    return name.split("[", 1)[0]


@dataclass
class RunReport:
    """Frozen observability summary of one run."""

    engine: str
    nprocs: int
    processes: list[ProcessTimes] = field(default_factory=list)
    channels: list[ChannelTraffic] = field(default_factory=list)
    streams: list[StreamTraffic] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, int | float] = field(default_factory=dict)
    #: Merged :class:`~repro.obs.causal.CausalTrace` when the run was
    #: causally traced (``trace_causal=True``), else ``None``.  Feeds
    #: the Chrome exporter's send→recv flow events.
    causal: Any = None

    # -- aggregations --------------------------------------------------------

    def message_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]`` = messages sent src -> dst (channel layer)."""
        m = [[0] * self.nprocs for _ in range(self.nprocs)]
        for ch in self.channels:
            m[ch.writer][ch.reader] += ch.sends
        return m

    def bytes_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]`` = payload bytes sent src -> dst."""
        m = [[0] * self.nprocs for _ in range(self.nprocs)]
        for ch in self.channels:
            m[ch.writer][ch.reader] += ch.bytes_sent
        return m

    def total_messages(self) -> int:
        return sum(ch.sends for ch in self.channels)

    def total_bytes(self) -> int:
        return sum(ch.bytes_sent for ch in self.channels)

    def phase_totals(self) -> list[tuple[str, int, float]]:
        """``(phase, count, total_seconds)`` aggregated over spans.

        Per-step stages collapse into one phase (``E-phase[0..N]`` →
        ``E-phase``); blocked-receive spans are excluded (they are
        accounted in the per-process split).  Ordered by total time,
        largest first.
        """
        acc: dict[str, list] = {}
        for s in self.spans:
            if s.cat == "blocked":
                continue
            key = _phase_key(s.name)
            entry = acc.setdefault(key, [0, 0.0])
            entry[0] += 1
            entry[1] += s.duration
        rows = [(k, c, t) for k, (c, t) in acc.items()]
        rows.sort(key=lambda r: -r[2])
        return rows

    # -- tables --------------------------------------------------------------

    def process_table(self) -> str:
        rows = []
        for p in sorted(self.processes, key=lambda p: p.rank):
            rows.append(
                [
                    p.name,
                    f"{p.wall * 1e3:.2f}",
                    f"{p.compute * 1e3:.2f}",
                    f"{p.blocked * 1e3:.2f}",
                    f"{100.0 * p.blocked / p.wall:.1f}%" if p.wall else "-",
                ]
            )
        return format_table(
            ["process", "wall ms", "compute ms", "blocked ms", "blocked %"],
            rows,
        )

    def channel_table(self, limit: int | None = 20) -> str:
        chans = sorted(self.channels, key=lambda c: -c.bytes_sent)
        shown = chans if limit is None else chans[:limit]
        rows = [
            [
                c.name,
                f"{c.writer}->{c.reader}",
                str(c.sends),
                str(c.receives),
                f"{c.bytes_sent}",
                str(c.queue_hwm),
            ]
            for c in shown
        ]
        table = format_table(
            ["channel", "edge", "sends", "recvs", "bytes", "queue hwm"], rows
        )
        if limit is not None and len(chans) > limit:
            rest = len(chans) - limit
            table += f"\n... and {rest} more channel(s)"
        return table

    def matrix_table(self, what: str = "messages") -> str:
        if what == "messages":
            m = self.message_matrix()
        elif what == "bytes":
            m = self.bytes_matrix()
        else:
            raise ValueError(f"unknown matrix {what!r}")
        headers = ["src\\dst"] + [f"P{j}" for j in range(self.nprocs)]
        rows = [
            [f"P{i}"] + [str(m[i][j]) if m[i][j] else "." for j in range(self.nprocs)]
            for i in range(self.nprocs)
        ]
        return format_table(headers, rows, title=f"communication matrix ({what})")

    def phase_table(self) -> str:
        rows = [
            [name, str(count), f"{total * 1e3:.2f}"]
            for name, count, total in self.phase_totals()
        ]
        return format_table(["phase", "spans", "total ms"], rows)

    def summary(self) -> str:
        """The full human-readable run summary."""
        parts = [
            f"run summary — engine={self.engine}, nprocs={self.nprocs}, "
            f"messages={self.total_messages()}, bytes={self.total_bytes()}",
            "",
            self.process_table(),
            "",
            self.channel_table(),
            "",
            self.matrix_table("messages"),
            "",
            self.matrix_table("bytes"),
        ]
        if self.spans:
            parts += ["", self.phase_table()]
        if self.metrics:
            parts += [
                "",
                format_table(
                    ["metric", "value"],
                    [[k, str(v)] for k, v in sorted(self.metrics.items())],
                ),
            ]
        return "\n".join(parts)

    # -- serialisation -------------------------------------------------------

    def to_events(self) -> list[dict[str, Any]]:
        """The report as a flat list of JSON-able records (JSONL form)."""
        events: list[dict[str, Any]] = [
            {"type": "run", "engine": self.engine, "nprocs": self.nprocs}
        ]
        for p in self.processes:
            events.append(
                {
                    "type": "process",
                    "rank": p.rank,
                    "name": p.name,
                    "wall": p.wall,
                    "blocked": p.blocked,
                }
            )
        for c in self.channels:
            events.append(
                {
                    "type": "channel",
                    "name": c.name,
                    "writer": c.writer,
                    "reader": c.reader,
                    "sends": c.sends,
                    "receives": c.receives,
                    "bytes": c.bytes_sent,
                    "queue_hwm": c.queue_hwm,
                }
            )
        for s in self.streams:
            events.append(
                {
                    "type": "stream",
                    "src": s.src,
                    "dst": s.dst,
                    "tag": s.tag,
                    "messages": s.messages,
                    "bytes": s.nbytes,
                }
            )
        for sp in self.spans:
            events.append(
                {
                    "type": "span",
                    "name": sp.name,
                    "cat": sp.cat,
                    "rank": sp.rank,
                    "t0": sp.t0,
                    "t1": sp.t1,
                    "depth": sp.depth,
                    "args": dict(sp.args),
                }
            )
        for name, value in sorted(self.metrics.items()):
            events.append({"type": "metric", "name": name, "value": value})
        if self.causal is not None:
            events.append({"type": "causal", **self.causal.to_dict()})
        return events

    @classmethod
    def from_events(cls, events: Iterable[Mapping[str, Any]]) -> "RunReport":
        """Rebuild a report from :meth:`to_events` records."""
        report = cls(engine="", nprocs=0)
        for ev in events:
            kind = ev.get("type")
            if kind == "run":
                report.engine = ev["engine"]
                report.nprocs = int(ev["nprocs"])
            elif kind == "process":
                report.processes.append(
                    ProcessTimes(
                        int(ev["rank"]), ev["name"], ev["wall"], ev["blocked"]
                    )
                )
            elif kind == "channel":
                report.channels.append(
                    ChannelTraffic(
                        ev["name"],
                        int(ev["writer"]),
                        int(ev["reader"]),
                        int(ev["sends"]),
                        int(ev["receives"]),
                        int(ev["bytes"]),
                        int(ev["queue_hwm"]),
                    )
                )
            elif kind == "stream":
                report.streams.append(
                    StreamTraffic(
                        int(ev["src"]),
                        int(ev["dst"]),
                        int(ev["tag"]),
                        int(ev["messages"]),
                        int(ev["bytes"]),
                    )
                )
            elif kind == "span":
                report.spans.append(
                    Span(
                        ev["name"],
                        ev["cat"],
                        int(ev["rank"]),
                        ev["t0"],
                        ev["t1"],
                        int(ev.get("depth", 0)),
                        dict(ev.get("args", {})),
                    )
                )
            elif kind == "metric":
                report.metrics[ev["name"]] = ev["value"]
            elif kind == "causal":
                from repro.obs.causal import CausalTrace

                report.causal = CausalTrace.from_dict(ev)
        return report


def build_run_report(observer, engine: str, nprocs: int, channels) -> RunReport:
    """Freeze an observer plus live channel objects into a report.

    ``channels`` is any iterable of objects exposing the
    :class:`~repro.runtime.channel.Channel` statistics attributes
    (``spec``-free duck typing keeps this module import-light).
    """
    procs = [
        ProcessTimes(rank, name, wall, blocked)
        for rank, (name, wall, blocked) in sorted(
            observer.process_times().items()
        )
    ]
    chans = [
        ChannelTraffic(
            ch.name,
            ch.writer,
            ch.reader,
            ch.sends,
            ch.receives,
            ch.bytes_sent,
            ch.queue_hwm,
        )
        for ch in channels
    ]
    streams = [
        StreamTraffic(src, dst, tag, count, nbytes)
        for (src, dst, tag), (count, nbytes) in sorted(
            observer.stream_stats().items()
        )
    ]
    epoch = observer.epoch
    spans = [s.shifted(epoch) for s in observer.spans.spans]
    return RunReport(
        engine=engine,
        nprocs=nprocs,
        processes=procs,
        channels=chans,
        streams=streams,
        spans=spans,
        metrics=observer.registry.snapshot(),
    )


def worker_observation(observer) -> dict[str, Any]:
    """One worker process's observer, flattened for the result pipe.

    The multiprocess engine runs an independent observer per worker
    (observers cannot span address spaces); this is the payload each
    worker ships home, merged by :func:`merge_worker_observations`.
    Timestamps stay absolute ``perf_counter`` values — on Linux that
    clock is system-wide (CLOCK_MONOTONIC), so one worker's epoch is
    comparable with another's.
    """
    return {
        "epoch": observer.epoch,
        "procs": observer.process_times(),
        "streams": observer.stream_stats(),
        "spans": [
            (s.name, s.cat, s.rank, s.t0, s.t1, s.depth, dict(s.args))
            for s in observer.spans.spans
        ],
        "metrics": observer.registry.snapshot(),
    }


def merge_worker_observations(
    engine: str,
    nprocs: int,
    observations: Mapping[int, Mapping[str, Any]],
    channels: Iterable[Any],
) -> RunReport:
    """Fuse per-worker observation payloads into one :class:`RunReport`.

    The merged run epoch is the earliest worker epoch, so span and
    process timestamps from different workers land on one timeline.
    Stream counts are summed per ``(src, dst, tag)``; metrics are
    summed per name (the registry's counters dominate; a clash of
    same-named gauges across workers has no single right answer, and
    summing at least keeps counters exact).
    """
    epoch = min(
        (obs["epoch"] for obs in observations.values()), default=0.0
    )
    procs: list[ProcessTimes] = []
    stream_acc: dict[tuple[int, int, int], list[int]] = {}
    spans: list[Span] = []
    metrics: dict[str, int | float] = {}
    for _rank, obs in sorted(observations.items()):
        for rank, (name, wall, blocked) in sorted(obs["procs"].items()):
            procs.append(ProcessTimes(rank, name, wall, blocked))
        for key, (count, nbytes) in obs["streams"].items():
            entry = stream_acc.setdefault(tuple(key), [0, 0])
            entry[0] += count
            entry[1] += nbytes
        for name, cat, rank, t0, t1, depth, args in obs["spans"]:
            spans.append(
                Span(name, cat, rank, t0 - epoch, t1 - epoch, depth, args)
            )
        for name, value in obs["metrics"].items():
            metrics[name] = metrics.get(name, 0) + value
    chans = [
        ChannelTraffic(
            ch.name,
            ch.writer,
            ch.reader,
            ch.sends,
            ch.receives,
            ch.bytes_sent,
            ch.queue_hwm,
        )
        for ch in channels
    ]
    streams = [
        StreamTraffic(src, dst, tag, count, nbytes)
        for (src, dst, tag), (count, nbytes) in sorted(stream_acc.items())
    ]
    # Full tiebreak chain: worker payloads arrive in completion order,
    # and same-timestamp spans (coarse clocks, symmetric ranks) must
    # still land in one deterministic merged order.
    spans.sort(key=lambda s: (s.t0, s.rank, s.t1, s.depth, s.cat, s.name))
    return RunReport(
        engine=engine,
        nprocs=nprocs,
        processes=procs,
        channels=chans,
        streams=streams,
        spans=spans,
        metrics=metrics,
    )
