"""Analytic performance model (substitution for the paper's testbeds).

The paper's performance numbers (Table 1, Figure 2) were measured on a
network of Sun workstations over Ethernet and on an IBM SP.  Neither
machine exists here, so — per the documented substitution — this
package models them: a latency/bandwidth/flop-rate
:class:`~repro.perfmodel.machine.MachineModel` with calibrated presets,
driven by exact operation counts extracted from the same decomposition
and communication schedule the real parallelization uses
(:mod:`~repro.perfmodel.costmodel`), assembled into per-configuration
execution-time and speedup estimates for FDTD Versions A and C
(:mod:`~repro.perfmodel.fdtd_model`) and formatted in the paper's
table/figure shapes (:mod:`~repro.perfmodel.report`).

The claim being reproduced is qualitative (the paper's own words:
"reasonably efficient"): monotone, sub-linear speedups, with Version A
on the SP's fast switch scaling visibly better than Version C on shared
10 Mbit Ethernet.  EXPERIMENTS.md records our modeled values against
that shape.
"""

from repro.perfmodel.machine import (
    IBM_SP2,
    SUN_ETHERNET,
    MachineModel,
)
from repro.perfmodel.costmodel import (
    CommVolume,
    FDTDStepCosts,
    fdtd_step_costs,
    exchange_comm_volume,
)
from repro.perfmodel.fdtd_model import (
    TimeBreakdown,
    estimate_parallel_time,
    estimate_sequential_time,
    speedup_series,
)
from repro.perfmodel.report import figure2_report, table1_report
from repro.perfmodel.scaling import (
    efficiency_table,
    isoefficiency,
    weak_scaling_series,
)

__all__ = [
    "MachineModel",
    "SUN_ETHERNET",
    "IBM_SP2",
    "CommVolume",
    "FDTDStepCosts",
    "fdtd_step_costs",
    "exchange_comm_volume",
    "TimeBreakdown",
    "estimate_sequential_time",
    "estimate_parallel_time",
    "speedup_series",
    "table1_report",
    "figure2_report",
    "efficiency_table",
    "isoefficiency",
    "weak_scaling_series",
]
