"""Operation counting for the parallelized FDTD codes.

The counts are extracted from the *same* objects the real
parallelization uses — the block decomposition of the node grid and the
NTFF surface restriction — so the model's communication schedule is the
implementation's, not a separate estimate:

* **compute**: ~8 flops per node per component per step (one
  ``curl_update``: two differences, two spacing scalings, one subtract,
  two coefficient multiplies, one add), 6 components, counted over each
  rank's owned nodes;
* **boundary exchange**: per step, each of the two phases moves one
  ghost-deep face strip per (face, variable) pair, one combined message
  per pair (three field components per phase);
* **far field** (Version C): per step, each rank processes its owned
  surface points (~60 flops each, covering the cross products, area
  scaling and retarded binning across the three observation
  directions), with an end-of-run all-to-one reduction of the potential
  arrays;
* **host I/O**: collect (and optionally distribute) of the six field
  arrays between grid processes and the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.util import product

__all__ = [
    "FLOPS_PER_NODE_STEP",
    "FARFIELD_FLOPS_PER_POINT",
    "CommVolume",
    "FDTDStepCosts",
    "exchange_comm_volume",
    "fdtd_step_costs",
    "surface_points",
    "surface_points_per_rank",
]

#: 6 components x ~8 flops per curl_update point.
FLOPS_PER_NODE_STEP: float = 48.0

#: Equivalent currents (2 cross products, 18 flops), area scaling (6),
#: and retarded accumulation for 3 observation directions (~36).
FARFIELD_FLOPS_PER_POINT: float = 60.0


@dataclass(frozen=True)
class CommVolume:
    """One communication round's traffic."""

    total_messages: int
    total_bytes: float
    max_rank_messages: int
    max_rank_bytes: float

    def __add__(self, other: "CommVolume") -> "CommVolume":
        return CommVolume(
            self.total_messages + other.total_messages,
            self.total_bytes + other.total_bytes,
            self.max_rank_messages + other.max_rank_messages,
            self.max_rank_bytes + other.max_rank_bytes,
        )


def exchange_comm_volume(
    decomp: BlockDecomposition, nvars: int, word_bytes: int
) -> CommVolume:
    """Traffic of one boundary-exchange phase of ``nvars`` arrays."""
    total_messages = 0
    total_bytes = 0.0
    max_msgs = 0
    max_bytes = 0.0
    for rank in range(decomp.nprocs):
        msgs = 0
        nbytes = 0.0
        shape = decomp.owned_shape(rank)
        for axis in range(decomp.ndim):
            for direction in (-1, 1):
                if decomp.pgrid.neighbor(rank, axis, direction) is None:
                    continue
                strip = decomp.ghost * product(
                    s for a, s in enumerate(shape) if a != axis
                )
                msgs += nvars  # one combined message per (face, var)
                nbytes += nvars * strip * word_bytes
        total_messages += msgs
        total_bytes += nbytes
        max_msgs = max(max_msgs, msgs)
        max_bytes = max(max_bytes, nbytes)
    return CommVolume(total_messages, total_bytes, max_msgs, max_bytes)


def surface_points(grid_cells: tuple[int, int, int], gap: int) -> int:
    """Node count of the closed NTFF surface box."""
    extents = [n - 2 * gap + 1 for n in grid_cells]
    if any(e < 2 for e in extents):
        return 0
    total = 0
    for axis in range(3):
        transverse = product(e for a, e in enumerate(extents) if a != axis)
        total += 2 * transverse
    return total


def surface_points_per_rank(
    grid_cells: tuple[int, int, int],
    gap: int,
    decomp: BlockDecomposition,
) -> list[int]:
    """Exact per-rank surface-point counts under the decomposition.

    Mirrors the restriction rule of
    :class:`~repro.apps.fdtd.ntff.NTFFAccumulator`: a surface node
    belongs to the rank owning it in the node decomposition.
    """
    bounds = [(gap, n - gap) for n in grid_cells]
    counts = []
    for rank in range(decomp.nprocs):
        owned = decomp.owned_bounds(rank)
        n = 0
        for axis in range(3):
            for side in (0, 1):
                plane = bounds[axis][side]
                if not owned[axis][0] <= plane < owned[axis][1]:
                    continue
                pts = 1
                for a in range(3):
                    if a == axis:
                        continue
                    lo = max(bounds[a][0], owned[a][0])
                    hi = min(bounds[a][1], owned[a][1] - 1)
                    pts *= max(0, hi - lo + 1)
                n += pts
        counts.append(n)
    return counts


@dataclass(frozen=True)
class FDTDStepCosts:
    """Per-time-step costs of one parallel configuration."""

    #: owned-node count of the most loaded rank
    max_rank_nodes: int
    total_nodes: int
    #: both exchange phases (E then H), combined
    exchange: CommVolume
    #: far-field surface points of the most loaded rank (0 for version A)
    max_rank_surface_points: int
    total_surface_points: int

    def max_rank_flops(self) -> float:
        return (
            self.max_rank_nodes * FLOPS_PER_NODE_STEP
            + self.max_rank_surface_points * FARFIELD_FLOPS_PER_POINT
        )


def fdtd_step_costs(
    grid_cells: tuple[int, int, int],
    decomp: BlockDecomposition,
    word_bytes: int,
    version: str = "A",
    ntff_gap: int = 3,
) -> FDTDStepCosts:
    """Assemble one configuration's per-step cost inputs."""
    owned = [product(decomp.owned_shape(r)) for r in range(decomp.nprocs)]
    # Two phases x three field components each.
    exchange = exchange_comm_volume(decomp, 3, word_bytes)
    exchange = exchange + exchange
    if version.upper() == "C":
        per_rank = surface_points_per_rank(grid_cells, ntff_gap, decomp)
        max_sp = max(per_rank)
        total_sp = sum(per_rank)
    else:
        max_sp = total_sp = 0
    return FDTDStepCosts(
        max_rank_nodes=max(owned),
        total_nodes=sum(owned),
        exchange=exchange,
        max_rank_surface_points=max_sp,
        total_surface_points=total_sp,
    )
