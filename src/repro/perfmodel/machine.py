"""Machine models: flop rate + alpha-beta communication cost.

The model is the classic postal/alpha-beta abstraction: sending one
message of ``b`` bytes costs ``latency + b / bandwidth`` seconds;
computing ``f`` floating-point operations costs ``f / flop_rate``.
Deliberately simple — the paper's performance evaluation is coarse
(execution times and speedups at a handful of process counts), so a
two-parameter network plus a sustained flop rate captures everything
the *shape* of Table 1 and Figure 2 depends on: the
computation-to-communication ratio and how it scales with P.

Preset calibration (mid-1990s hardware, sustained — not peak — rates):

* ``SUN_ETHERNET`` — SPARCstation-class workstations on shared 10 Mbit
  Ethernet: ~3 Mflop/s sustained on stencil code (SPARCstation 2/5-era
  scalar FPUs); TCP/IP + Fortran M messaging latency ~1.5 ms; ~1 MB/s
  effective bandwidth, *shared* —
  the model serialises concurrent transfers (``shared_network=True``),
  which is what makes small-grid Version C flatten early, as the
  paper's Table 1 setting would.
* ``IBM_SP2`` — POWER2-class nodes on the SP switch: ~100 Mflop/s
  sustained, ~40 us latency, ~35 MB/s per-link bandwidth, full bisection
  (transfers in different node pairs proceed concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["MachineModel", "SUN_ETHERNET", "IBM_SP2"]


@dataclass(frozen=True)
class MachineModel:
    """An alpha-beta machine."""

    name: str
    flop_rate: float  # sustained flop/s per process
    latency: float  # per-message cost [s]
    bandwidth: float  # [bytes/s] per link (or network total if shared)
    shared_network: bool = False  # True: all transfers share the medium
    word_bytes: int = 4  # Fortran REAL*4, as the original codes used

    def __post_init__(self) -> None:
        if min(self.flop_rate, self.bandwidth) <= 0 or self.latency < 0:
            raise ModelError(f"invalid machine parameters for {self.name!r}")

    # -- primitive costs ---------------------------------------------------------

    def compute_time(self, flops: float) -> float:
        """Time to execute ``flops`` floating-point operations."""
        return flops / self.flop_rate

    def message_time(self, nbytes: float) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def transfer_round_time(
        self, messages: int, total_bytes: float, parallel_pairs: int = 1
    ) -> float:
        """Time for a communication round of ``messages`` messages
        totalling ``total_bytes``.

        On a shared network every byte and every message crosses the
        same medium: the round costs the *sum*.  On a switched network,
        disjoint pairs transfer concurrently: the round costs the sum
        divided by the number of concurrently-active pairs (``messages``
        and bytes assumed spread evenly across them).
        """
        total = messages * self.latency + total_bytes / self.bandwidth
        if self.shared_network:
            return total
        return total / max(1, parallel_pairs)

    def describe(self) -> str:
        net = "shared" if self.shared_network else "switched"
        return (
            f"{self.name}: {self.flop_rate / 1e6:.0f} Mflop/s/process, "
            f"latency {self.latency * 1e6:.0f} us, bandwidth "
            f"{self.bandwidth / 1e6:.1f} MB/s ({net} network), "
            f"{self.word_bytes}-byte words"
        )


SUN_ETHERNET = MachineModel(
    name="network of Suns (10 Mbit Ethernet, Fortran M)",
    flop_rate=3e6,
    latency=1.5e-3,
    bandwidth=1.0e6,
    shared_network=True,
    word_bytes=4,
)

IBM_SP2 = MachineModel(
    name="IBM SP (POWER2 nodes, SP switch, Fortran M)",
    flop_rate=100e6,
    latency=40e-6,
    bandwidth=35e6,
    shared_network=False,
    word_bytes=4,
)
