"""End-to-end time and speedup estimation for FDTD Versions A and C.

Bulk-synchronous composition: each time step costs the slowest rank's
computation plus one communication round per exchange phase; the far
field adds per-step local work and one end-of-run reduction; host I/O
adds the collect (and optional distribute) redistribution.  Speedup
follows the paper's definition: "execution time for the original
sequential code divided by execution time for the parallel code" —
note the baseline is the *sequential* code, not the P=1 parallel code
(which carries exchange-stage and host overheads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archetypes.mesh.decomposition import (
    BlockDecomposition,
    choose_process_grid,
)
from repro.errors import ModelError
from repro.perfmodel.costmodel import (
    FARFIELD_FLOPS_PER_POINT,
    FLOPS_PER_NODE_STEP,
    fdtd_step_costs,
    surface_points,
)
from repro.perfmodel.machine import MachineModel
from repro.util import product

__all__ = [
    "TimeBreakdown",
    "estimate_sequential_time",
    "estimate_parallel_time",
    "speedup_series",
]

#: Potential arrays: ndirs x nbins x 3 doubles, reduced to the host.
_NTFF_DIRECTIONS = 3
_NTFF_POTENTIAL_BYTES_PER_BIN = _NTFF_DIRECTIONS * 3 * 8 * 2  # A and F


def _node_shape(grid_cells: tuple[int, int, int]) -> tuple[int, int, int]:
    return tuple(n + 1 for n in grid_cells)


@dataclass(frozen=True)
class TimeBreakdown:
    """Estimated execution time of one configuration, by category."""

    nprocs: int
    pgrid: tuple[int, int, int]
    compute: float
    comm: float
    farfield_reduction: float
    io: float

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.farfield_reduction + self.io

    def describe(self) -> str:
        return (
            f"P={self.nprocs} {self.pgrid}: total {self.total:.2f}s "
            f"(compute {self.compute:.2f}, comm {self.comm:.2f}, "
            f"ff-reduce {self.farfield_reduction:.3f}, io {self.io:.3f})"
        )


def estimate_sequential_time(
    grid_cells: tuple[int, int, int],
    steps: int,
    machine: MachineModel,
    version: str = "A",
    ntff_gap: int = 3,
) -> float:
    """Model of the *original sequential code* (the speedup baseline)."""
    nodes = product(_node_shape(grid_cells))
    flops = nodes * FLOPS_PER_NODE_STEP * steps
    if version.upper() == "C":
        flops += surface_points(grid_cells, ntff_gap) * (
            FARFIELD_FLOPS_PER_POINT * steps
        )
    return machine.compute_time(flops)


def estimate_parallel_time(
    grid_cells: tuple[int, int, int],
    steps: int,
    nprocs: int,
    machine: MachineModel,
    version: str = "A",
    pgrid: tuple[int, int, int] | None = None,
    ntff_gap: int = 3,
    include_distribute: bool = False,
) -> TimeBreakdown:
    """Model of the parallelized code on ``nprocs`` grid processes."""
    if nprocs < 1:
        raise ModelError(f"nprocs must be >= 1, got {nprocs}")
    node_shape = _node_shape(grid_cells)
    if pgrid is None:
        pgrid = choose_process_grid(nprocs, node_shape)
    decomp = BlockDecomposition(node_shape, pgrid, ghost=1)
    costs = fdtd_step_costs(
        grid_cells, decomp, machine.word_bytes, version, ntff_gap
    )

    # Per-step: slowest rank computes, then the exchange round drains.
    compute = machine.compute_time(costs.max_rank_flops()) * steps
    ex = costs.exchange
    comm = (
        machine.transfer_round_time(
            ex.total_messages if machine.shared_network else ex.max_rank_messages,
            ex.total_bytes if machine.shared_network else ex.max_rank_bytes,
        )
        * steps
    )

    # End-of-run far-field reduction: every rank ships its potential
    # arrays to the host (all-to-one), host folds them.
    farfield_reduction = 0.0
    if version.upper() == "C":
        max_delay_bins = int(
            1.2 * max(grid_cells)
        )  # retardation span, ~grid diameter in steps
        nbins = steps + max_delay_bins
        nbytes = nbins * _NTFF_POTENTIAL_BYTES_PER_BIN
        if machine.shared_network:
            farfield_reduction = machine.transfer_round_time(
                nprocs, nprocs * nbytes
            )
        else:
            # serialised at the host's link
            farfield_reduction = nprocs * machine.message_time(nbytes)
        farfield_reduction += machine.compute_time(
            nprocs * nbins * _NTFF_DIRECTIONS * 3 * 2
        )

    # Host I/O: collect the six field arrays (optionally distribute too).
    io_rounds = 2 if include_distribute else 1
    field_bytes = costs.total_nodes * machine.word_bytes * 6
    if machine.shared_network:
        io = io_rounds * machine.transfer_round_time(
            6 * nprocs, field_bytes
        )
    else:
        io = io_rounds * (
            6 * nprocs * machine.latency + field_bytes / machine.bandwidth
        )

    return TimeBreakdown(
        nprocs=nprocs,
        pgrid=tuple(pgrid),
        compute=compute,
        comm=comm,
        farfield_reduction=farfield_reduction,
        io=io,
    )


def speedup_series(
    grid_cells: tuple[int, int, int],
    steps: int,
    machine: MachineModel,
    process_counts,
    version: str = "A",
    ntff_gap: int = 3,
) -> list[tuple[int, float, float]]:
    """``(P, modeled_time, speedup_vs_sequential)`` for each P."""
    seq = estimate_sequential_time(grid_cells, steps, machine, version, ntff_gap)
    out = []
    for p in process_counts:
        t = estimate_parallel_time(
            grid_cells, steps, p, machine, version, ntff_gap=ntff_gap
        ).total
        out.append((p, t, seq / t))
    return out
