"""Paper-shaped reports: Table 1 and Figure 2.

``table1_report`` prints the rows of the paper's Table 1 — "Execution
times and speedups for electromagnetics code (version C), for 33 by 33
by 33 grid, 128 steps, using Fortran M on a network of Suns" — from the
machine model.  ``figure2_report`` prints the two panels of Figure 2 —
execution time (actual vs ideal) and speedup (actual vs perfect) for
"electromagnetics code (version A) for 66 by 66 by 66 grid, 512 steps
... on the IBM SP" — as aligned series plus an ASCII rendering of the
speedup curve.
"""

from __future__ import annotations

from repro.perfmodel.fdtd_model import (
    estimate_parallel_time,
    estimate_sequential_time,
)
from repro.perfmodel.machine import IBM_SP2, SUN_ETHERNET, MachineModel
from repro.util import format_table

__all__ = ["table1_report", "figure2_report", "ascii_curve"]


def table1_report(
    machine: MachineModel = SUN_ETHERNET,
    grid_cells: tuple[int, int, int] = (33, 33, 33),
    steps: int = 128,
    process_counts: tuple[int, ...] = (2, 4, 8),
) -> str:
    """The Table 1 analogue (modeled, see DESIGN.md substitutions)."""
    seq = estimate_sequential_time(grid_cells, steps, machine, version="C")
    rows: list[list[str]] = [["Sequential", f"{seq:.1f}", "1.00"]]
    for p in process_counts:
        t = estimate_parallel_time(
            grid_cells, steps, p, machine, version="C"
        ).total
        rows.append([f"Parallel, P = {p}", f"{t:.1f}", f"{seq / t:.2f}"])
    title = (
        "Table 1 (modeled): execution times and speedups for "
        f"electromagnetics code (version C), {grid_cells[0]} by "
        f"{grid_cells[1]} by {grid_cells[2]} grid, {steps} steps,\n"
        f"machine model: {machine.describe()}"
    )
    return format_table(
        ["", "Execution time (seconds)", "Speedup"], rows, title=title
    )


def ascii_curve(
    xs: list[float],
    series: dict[str, list[float]],
    width: int = 58,
    height: int = 16,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot one or more series as an ASCII chart (linear axes)."""
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = 0.0, max(all_y) * 1.05
    x_min, x_max = min(xs), max(xs)
    canvas = [[" "] * width for _ in range(height)]
    markers = "*o+x#"
    for (label, ys), mark in zip(series.items(), markers):
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min or 1) * (width - 1))
            row = int((y - y_min) / (y_max - y_min or 1) * (height - 1))
            canvas[height - 1 - row][col] = mark
    lines = []
    if ylabel:
        lines.append(ylabel)
    for i, row in enumerate(canvas):
        ytick = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{ytick:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10.0f}{xlabel:^{width - 20}}{x_max:>8.0f}")
    legend = "   ".join(
        f"{mark} {label}" for (label, _), mark in zip(series.items(), markers)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def figure2_report(
    machine: MachineModel = IBM_SP2,
    grid_cells: tuple[int, int, int] = (66, 66, 66),
    steps: int = 512,
    process_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> str:
    """The Figure 2 analogue: time and speedup panels (modeled)."""
    seq = estimate_sequential_time(grid_cells, steps, machine, version="A")
    ps = list(process_counts)
    actual_times = [
        estimate_parallel_time(grid_cells, steps, p, machine, version="A").total
        for p in ps
    ]
    ideal_times = [seq / p for p in ps]
    speedups = [seq / t for t in actual_times]
    perfect = [float(p) for p in ps]

    rows = [
        [str(p), f"{t:.1f}", f"{i:.1f}", f"{s:.2f}", f"{q:.0f}"]
        for p, t, i, s, q in zip(ps, actual_times, ideal_times, speedups, perfect)
    ]
    table = format_table(
        [
            "Processors",
            "Time actual (s)",
            "Time ideal (s)",
            "Speedup actual",
            "Speedup perfect",
        ],
        rows,
        title=(
            "Figure 2 (modeled): execution times and speedups for "
            f"electromagnetics code (version A), {grid_cells[0]} by "
            f"{grid_cells[1]} by {grid_cells[2]} grid, {steps} steps,\n"
            f"sequential: {seq:.1f}s; machine model: {machine.describe()}"
        ),
    )
    curve = ascii_curve(
        [float(p) for p in ps],
        {"actual": speedups, "perfect": perfect},
        xlabel="Processors",
        ylabel="Speedup",
    )
    return table + "\n\n" + curve
