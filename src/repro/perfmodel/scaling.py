"""Scaling analysis on top of the machine models.

Figure 2's message is a fixed-size (strong-scaling) curve; two standard
analyses complete the picture and are cheap to derive from the same
cost model:

* :func:`efficiency_table` — parallel efficiency ``S(P)/P`` across a
  grid of process counts and problem sizes (where does the Figure 2
  curve live in the wider design space?);
* :func:`isoefficiency` — for each P, the smallest cubic grid that
  sustains a target efficiency: the classic isoefficiency function,
  which for a 3-D stencil with surface communication grows like
  ``P`` in total volume (edge ~ P^(1/3)) on a switched network, and
  much faster on the shared-Ethernet model — quantifying *why* the
  Suns stopped scaling where they did;
* :func:`weak_scaling_series` — constant work per process, the
  Gustafson-style counterpart of Figure 2.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.perfmodel.fdtd_model import (
    estimate_parallel_time,
    estimate_sequential_time,
)
from repro.perfmodel.machine import MachineModel

__all__ = ["efficiency_table", "isoefficiency", "weak_scaling_series"]


def _efficiency(
    edge: int, steps: int, nprocs: int, machine: MachineModel, version: str
) -> float:
    grid = (edge, edge, edge)
    seq = estimate_sequential_time(grid, steps, machine, version)
    par = estimate_parallel_time(grid, steps, nprocs, machine, version).total
    return seq / par / nprocs


def efficiency_table(
    edges,
    process_counts,
    machine: MachineModel,
    steps: int = 128,
    version: str = "A",
) -> dict[tuple[int, int], float]:
    """``(edge, P) -> efficiency`` over a problem-size/process grid."""
    table: dict[tuple[int, int], float] = {}
    for edge in edges:
        for p in process_counts:
            try:
                table[(edge, p)] = _efficiency(edge, steps, p, machine, version)
            except Exception:
                continue  # decomposition infeasible (too many procs)
    return table


def isoefficiency(
    process_counts,
    machine: MachineModel,
    target: float = 0.5,
    steps: int = 128,
    version: str = "A",
    max_edge: int = 1024,
) -> dict[int, int | None]:
    """Smallest cubic grid edge sustaining ``target`` efficiency per P.

    ``None`` marks process counts for which no grid up to ``max_edge``
    reaches the target (the machine's latency floor dominates).
    Monotone bisection over the edge length.
    """
    if not 0 < target < 1:
        raise ModelError(f"target efficiency must be in (0,1), got {target}")
    out: dict[int, int | None] = {}
    for p in process_counts:
        lo, hi = 2, max_edge
        # Efficiency grows with problem size for these models; find the
        # first feasible edge, then bisect.
        best: int | None = None
        if _try_eff(hi, steps, p, machine, version) is None:
            out[p] = None
            continue
        if (_try_eff(hi, steps, p, machine, version) or 0.0) < target:
            out[p] = None
            continue
        while lo < hi:
            mid = (lo + hi) // 2
            eff = _try_eff(mid, steps, p, machine, version)
            if eff is not None and eff >= target:
                best = mid
                hi = mid
            else:
                lo = mid + 1
        out[p] = best if best is not None else (lo if lo <= max_edge else None)
        # confirm
        eff = _try_eff(out[p], steps, p, machine, version) if out[p] else None
        if eff is None or eff < target:
            out[p] = None
    return out


def _try_eff(edge, steps, p, machine, version):
    try:
        return _efficiency(edge, steps, p, machine, version)
    except Exception:
        return None


def weak_scaling_series(
    base_edge: int,
    process_counts,
    machine: MachineModel,
    steps: int = 128,
    version: str = "A",
) -> list[tuple[int, float, float]]:
    """Constant volume per process: ``(P, time, weak efficiency)``.

    The grid is scaled so each process keeps ``base_edge^3`` cells
    (cube-rounded); weak efficiency is ``T(1) / T(P)`` — flat lines are
    perfect weak scaling.
    """
    base_time = None
    out = []
    for p in process_counts:
        edge = round(base_edge * p ** (1.0 / 3.0))
        t = estimate_parallel_time(
            (edge, edge, edge), steps, p, machine, version
        ).total
        if base_time is None:
            base_time = t
        out.append((p, t, base_time / t))
    return out
