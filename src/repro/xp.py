"""Pluggable array-module backends (the ``xp`` convention).

The FDTD kernels are written against a tiny slice of the NumPy API —
``empty``, ``copyto``, ``subtract``, ``multiply``, ``add`` with ``out=``
— which is exactly the slice CuPy (and most ``array_api`` namespaces)
implement verbatim.  This module is the registry that turns a backend
*name* into an array namespace so kernels, scratch buffers, and stores
never import ``numpy`` by fiat:

* ``numpy`` is always available (it is the project's one dependency);
* ``cupy`` is optional: it is looked up lazily and a missing install
  surfaces as a typed :class:`~repro.errors.BackendUnavailable`, never
  an ``ImportError`` at import time.

Stores need one more predicate: "is this value an nd-array?" without
naming a concrete class.  :func:`is_array_like` duck-types on
``shape``/``dtype``/``__getitem__``, which both NumPy and CuPy arrays
satisfy — this is the backend protocol that replaces the old
``isinstance(value, np.ndarray)`` coupling in ``refinement/store.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import BackendUnavailable

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "is_array_like",
    "BACKEND_NAMES",
]

BACKEND_NAMES = ("numpy", "cupy")


@dataclass(frozen=True)
class Backend:
    """A named array namespace plus the host-transfer glue around it."""

    name: str
    xp: Any  # the array module itself (numpy, cupy, ...)

    def asarray(self, value, dtype=None):
        return self.xp.asarray(value, dtype=dtype)

    def to_numpy(self, value):
        """Bring an array of this backend back to host memory."""
        if self.name == "numpy":
            return np.asarray(value)
        get = getattr(value, "get", None)  # cupy device->host
        if callable(get):
            return get()
        return np.asarray(value)


def _load_numpy() -> Backend:
    return Backend("numpy", np)


def _load_cupy() -> Backend:
    try:
        import cupy  # noqa: PLC0415 -- optional, resolved on demand
    except ImportError as exc:
        raise BackendUnavailable(
            "array backend 'cupy' is not installed; the kernels run on "
            "the (always-available) 'numpy' backend instead"
        ) from exc
    return Backend("cupy", cupy)


_LOADERS = {"numpy": _load_numpy, "cupy": _load_cupy}
_CACHE: dict[str, Backend] = {}


def get_backend(name: str = "numpy") -> Backend:
    """Resolve a backend name to a :class:`Backend`.

    Raises :class:`~repro.errors.BackendUnavailable` for known-but-absent
    backends (CuPy not installed) and ``ValueError`` for unknown names.
    """
    if name not in _LOADERS:
        raise ValueError(
            f"unknown array backend {name!r}; expected one of "
            f"{sorted(_LOADERS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _LOADERS[name]()
    return _CACHE[name]


def available_backends() -> list[str]:
    """Names of backends that import cleanly on this host."""
    out = []
    for name in _LOADERS:
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


def is_array_like(value) -> bool:
    """Duck-typed nd-array test shared by stores and kernels.

    True for any object exposing ``shape``, ``dtype`` and item access —
    NumPy arrays, CuPy arrays, and compatible third-party tensors —
    without importing any backend to ask.  Scalars (including NumPy
    0-d scalars, which have ``shape == ()`` but no ``__getitem__`` use
    we rely on) with a ``shape`` attribute still count; stores treat
    ``shape == ()`` values as whole-replacement scalars anyway.
    """
    return (
        hasattr(value, "shape")
        and hasattr(value, "dtype")
        and hasattr(value, "__getitem__")
    )
