"""Scheduling policies for the cooperative engine.

A policy chooses, at each step of a simulated execution, which process
performs its next action.  The cooperative engine presents the policy
with the *enabled* pending actions — sends and local steps are always
enabled (infinite slack), a receive is enabled iff its channel is
non-empty — so every policy automatically respects the simulation rule
"never read from a channel not known to be non-empty" (paper, section
3.1), and every completed run is a *maximal* interleaving.

Policies included:

* :class:`RoundRobinPolicy` — cycle through ranks; the canonical fair
  interleaving.
* :class:`RandomPolicy` — seeded uniform choice; the workhorse of the
  empirical determinacy experiments (many distinct interleavings of the
  same system).
* :class:`RunToBlockPolicy` — keep running one process until it blocks
  or finishes; produces the fewest context switches and corresponds to
  the natural hand-simulation order.
* :class:`SendsFirstPolicy` — prefer sends over receives; the ordering
  section 3.3 of the paper recommends for data-exchange operations
  ("all sends in a data-exchange operation are done before any
  receives"), guaranteeing the exchange cannot self-block.
* :class:`ReplayPolicy` — follow an explicit rank sequence, e.g. a
  previously recorded :meth:`~repro.runtime.trace.Trace.schedule`;
  exact re-execution of one interleaving.
* :class:`RecordingPolicy` — wrap another policy and log, at each step,
  the full enabled set alongside the choice made; the hook used by
  :mod:`repro.theory.enumerate` to drive exhaustive DFS over
  interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.util import rng_from

__all__ = [
    "PendingAction",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "RunToBlockPolicy",
    "SendsFirstPolicy",
    "ReplayPolicy",
    "RecordingPolicy",
    "MinRankPolicy",
    "PrefixPolicy",
]


@dataclass(frozen=True)
class PendingAction:
    """What the scheduler knows about one process's next action."""

    rank: int
    kind: str  # 'send' | 'recv' | 'step'
    channel: str | None


class SchedulingPolicy:
    """Base class; subclasses override :meth:`choose`."""

    def reset(self) -> None:
        """Called once at the start of each run."""

    def observe_state(self, stores, channels) -> None:
        """Peek at the live run state before each :meth:`choose`.

        The cooperative engine calls this with the per-rank stores and
        the live ``{name: Channel}`` map immediately before asking for a
        decision.  The default does nothing; the schedule explorer's
        controller overrides it to fingerprint states for prefix
        pruning.  Implementations must treat the arguments as
        read-only — mutating them would change the execution being
        observed.
        """

    def choose(self, enabled: list[PendingAction]) -> int:
        """Return the rank of the action to perform next.

        ``enabled`` is non-empty and sorted by rank.  Must return the
        rank of one of its elements.
        """
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through ranks, picking the next enabled one."""

    def __init__(self) -> None:
        self._last = -1

    def reset(self) -> None:
        self._last = -1

    def choose(self, enabled: list[PendingAction]) -> int:
        ranks = [a.rank for a in enabled]
        for r in ranks:
            if r > self._last:
                self._last = r
                return r
        self._last = ranks[0]
        return ranks[0]


class RandomPolicy(SchedulingPolicy):
    """Uniform random choice among enabled actions, from a seeded RNG.

    Distinct seeds give distinct (with high probability) maximal
    interleavings of the same system; the determinacy experiments run a
    system under many seeds and compare final states.
    """

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._seed = seed
        self._rng = rng_from(seed)

    def reset(self) -> None:
        self._rng = rng_from(self._seed)

    def choose(self, enabled: list[PendingAction]) -> int:
        return enabled[int(self._rng.integers(len(enabled)))].rank


class RunToBlockPolicy(SchedulingPolicy):
    """Stay with the current process while it remains enabled."""

    def __init__(self) -> None:
        self._current = -1

    def reset(self) -> None:
        self._current = -1

    def choose(self, enabled: list[PendingAction]) -> int:
        ranks = [a.rank for a in enabled]
        if self._current in ranks:
            return self._current
        for r in ranks:
            if r > self._current:
                self._current = r
                return r
        self._current = ranks[0]
        return ranks[0]


class SendsFirstPolicy(SchedulingPolicy):
    """Prefer sends (and local steps) over receives, round-robin within.

    This realises the ordering Theorem 1's application prescribes for
    data-exchange operations: performing every send before any receive
    makes the receives provably safe (each awaited value is already in
    its channel).
    """

    def __init__(self) -> None:
        self._last = -1

    def reset(self) -> None:
        self._last = -1

    def choose(self, enabled: list[PendingAction]) -> int:
        preferred = [a for a in enabled if a.kind != "recv"] or enabled
        ranks = [a.rank for a in preferred]
        for r in ranks:
            if r > self._last:
                self._last = r
                return r
        self._last = ranks[0]
        return ranks[0]


class ReplayPolicy(SchedulingPolicy):
    """Follow an explicit schedule (a list of ranks) exactly.

    Raises :class:`~repro.errors.ScheduleError` if the schedule runs out
    while processes are still live, or names a rank whose next action is
    not enabled — either means the schedule does not correspond to a
    legal interleaving of this system.
    """

    def __init__(self, schedule: list[int]):
        self._schedule = list(schedule)
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def choose(self, enabled: list[PendingAction]) -> int:
        if self._pos >= len(self._schedule):
            raise ScheduleError(
                f"replay schedule exhausted after {self._pos} actions but "
                f"processes are still live (enabled: "
                f"{[a.rank for a in enabled]})"
            )
        rank = self._schedule[self._pos]
        self._pos += 1
        if rank not in [a.rank for a in enabled]:
            raise ScheduleError(
                f"replay schedule names rank {rank} at step {self._pos - 1} "
                f"but its next action is not enabled "
                f"(enabled: {[a.rank for a in enabled]})"
            )
        return rank


class RecordingPolicy(SchedulingPolicy):
    """Delegate to ``inner`` while logging (choice, enabled-ranks) pairs.

    ``log`` is a list of ``(chosen_rank, tuple_of_enabled_ranks)``; the
    exhaustive-enumeration driver inspects it to discover unexplored
    branches of the interleaving tree.
    """

    def __init__(self, inner: SchedulingPolicy):
        self.inner = inner
        self.log: list[tuple[int, tuple[int, ...]]] = []
        #: full pending-action descriptors per step (for independence
        #: analysis in partial-order-reduced enumeration)
        self.action_log: list[tuple[int, tuple[PendingAction, ...]]] = []

    def reset(self) -> None:
        self.inner.reset()
        self.log = []
        self.action_log = []

    def observe_state(self, stores, channels) -> None:
        self.inner.observe_state(stores, channels)

    def choose(self, enabled: list[PendingAction]) -> int:
        rank = self.inner.choose(enabled)
        self.log.append((rank, tuple(a.rank for a in enabled)))
        self.action_log.append((rank, tuple(enabled)))
        return rank


class MinRankPolicy(SchedulingPolicy):
    """Always pick the lowest enabled rank (deterministic default)."""

    def choose(self, enabled: list[PendingAction]) -> int:
        return enabled[0].rank


class PrefixPolicy(SchedulingPolicy):
    """Follow ``prefix`` exactly, then fall back to ``tail`` policy.

    Used by the exhaustive enumerator: a new branch is explored by
    replaying the path to the branch point and then letting the
    deterministic tail complete the interleaving.
    """

    def __init__(self, prefix: list[int], tail: SchedulingPolicy | None = None):
        self._prefix = list(prefix)
        self._pos = 0
        self._tail = tail or MinRankPolicy()

    def reset(self) -> None:
        self._pos = 0
        self._tail.reset()

    def observe_state(self, stores, channels) -> None:
        self._tail.observe_state(stores, channels)

    def choose(self, enabled: list[PendingAction]) -> int:
        if self._pos < len(self._prefix):
            rank = self._prefix[self._pos]
            self._pos += 1
            if rank not in [a.rank for a in enabled]:
                raise ScheduleError(
                    f"prefix names rank {rank} at step {self._pos - 1} but "
                    "it is not enabled; the prefix is not a legal partial "
                    "interleaving"
                )
            return rank
        return self._tail.choose(enabled)
