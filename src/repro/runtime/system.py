"""Systems: processes wired together by SRSW channels.

A :class:`System` is the static description of a parallel program in
the paper's model — the process specs plus the channel specs.  It is
*not* an execution: engines instantiate fresh run state (channels,
stores, contexts) each time, so one system can be executed under many
interleavings, which is precisely the quantification in Theorem 1.

Wiring rules enforced here:

* channel names are unique within a system;
* each channel's writer and reader are existing, distinct ranks
  (single-reader single-writer is thus true *by construction*, and
  additionally enforced per-operation by the channels themselves);
* ranks are dense: ``0..nprocs-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ChannelError, RuntimeModelError
from repro.runtime.channel import Channel, ChannelSpec
from repro.runtime.context import ProcessContext
from repro.runtime.process import ProcessSpec
from repro.runtime.trace import Trace

__all__ = [
    "System",
    "RunResult",
    "RunState",
    "ChannelStatsRecord",
    "assemble_run_result",
]


@dataclass
class RunResult:
    """Everything observable about one completed execution.

    The *final state* in the sense of Theorem 1 is ``(stores, returns)``:
    the contents of every process's address space at termination plus
    the value returned by each body.  ``trace`` is populated when the
    engine ran with tracing enabled; ``schedule`` is the interleaving as
    a rank sequence (replayable), and ``channel_stats`` maps channel
    name to ``(sends, receives)``.  ``channel_hwm`` maps channel name to
    the queue-occupancy high-water mark, and ``report`` is the full
    :class:`~repro.obs.report.RunReport` when the engine ran with an
    observer (``observe=True``), else ``None``.
    """

    stores: list[dict[str, Any]]
    returns: list[Any]
    trace: Trace | None = None
    channel_stats: dict[str, tuple[int, int]] = field(default_factory=dict)
    channel_bytes: dict[str, int] = field(default_factory=dict)
    channel_hwm: dict[str, int] = field(default_factory=dict)
    #: Transport-level traffic, populated meaningfully only by the
    #: multiprocess engine: pipe frames written, bytes crossing the
    #: pipe, and payload bytes staged through shared-memory slabs.
    #: In-process engines move references, so theirs are all zero —
    #: unlike ``channel_bytes`` (logical payload size), these are
    #: engine-dependent by design and excluded from equivalence checks.
    channel_frames: dict[str, int] = field(default_factory=dict)
    channel_pipe_bytes: dict[str, int] = field(default_factory=dict)
    channel_shm_bytes: dict[str, int] = field(default_factory=dict)
    #: Socket-transport syscall accounting per channel (zero off the
    #: socket engine): send syscalls issued on the vectored fast path,
    #: the unvectored sender's count for the same frames, frames that
    #: left in multi-frame gather batches, and the feeder coalescing
    #: high-water mark.  Engine-dependent, excluded from equivalence.
    channel_net_syscalls: dict[str, int] = field(default_factory=dict)
    channel_net_syscalls_unvectored: dict[str, int] = field(
        default_factory=dict
    )
    channel_net_vectored: dict[str, int] = field(default_factory=dict)
    channel_coalesce_hwm: dict[str, int] = field(default_factory=dict)
    engine: str = ""
    report: Any = None
    #: Merged :class:`~repro.obs.causal.CausalTrace` when the engine ran
    #: with ``trace_causal=True``, else ``None``.  Unlike ``trace`` (a
    #: total order, in-process engines only) this is the happens-before
    #: partial order and exists on every engine.
    causal: Any = None
    #: :class:`~repro.runtime.deadlock.DeadlockReport` when this result
    #: is the *partial* state snapshotted by the cooperative engine at
    #: deadlock detection (attached to the raised ``DeadlockError``);
    #: ``None`` on every completed run.  Lets the schedule explorer
    #: classify deadlocks distinctly from crashes with the full
    #: wait-for-cycle evidence in hand.
    deadlock: Any = None

    @property
    def schedule(self) -> list[int]:
        if self.trace is None:
            raise RuntimeModelError(
                "run was not traced; pass trace=True to the engine"
            )
        return self.trace.schedule()

    def final_state(self) -> tuple[list[dict[str, Any]], list[Any]]:
        return self.stores, self.returns


@dataclass(frozen=True)
class ChannelStatsRecord:
    """One channel's end-of-run statistics, engine-agnostic.

    Every engine reduces its channels to these records and hands them
    to :func:`assemble_run_result`, so ``channel_stats`` /
    ``channel_bytes`` / ``channel_hwm`` are populated by exactly one
    code path.  In-process engines build them straight off live
    :class:`~repro.runtime.channel.Channel` objects; the multiprocess
    engine merges the two endpoint halves reported by the worker
    processes.  The field set deliberately matches
    :class:`~repro.obs.report.ChannelTraffic`, so records also feed
    report building directly.
    """

    name: str
    writer: int
    reader: int
    sends: int
    receives: int
    bytes_sent: int
    queue_hwm: int
    # Transport-level counters (zero for in-process channels, which
    # move references rather than frames).
    frames: int = 0
    pipe_bytes: int = 0
    shm_bytes: int = 0
    # Socket-transport syscall accounting (zero everywhere else): send
    # syscalls issued on the vectored fast path, what the unvectored
    # sender would have issued for the same frames, frames that left in
    # a multi-frame gather batch, and the feeder's coalescing-window
    # high-water mark (see :mod:`repro.dist.net.frames`).
    net_syscalls: int = 0
    net_syscalls_unvectored: int = 0
    net_vectored: int = 0
    coalesce_hwm: int = 0

    @classmethod
    def from_channel(cls, ch: Channel) -> "ChannelStatsRecord":
        return cls(
            name=ch.name,
            writer=ch.writer,
            reader=ch.reader,
            sends=ch.sends,
            receives=ch.receives,
            bytes_sent=ch.bytes_sent,
            queue_hwm=ch.queue_hwm,
            frames=getattr(ch, "frames", 0),
            pipe_bytes=getattr(ch, "pipe_bytes", 0),
            shm_bytes=getattr(ch, "shm_bytes", 0),
            net_syscalls=getattr(ch, "net_syscalls", 0),
            net_syscalls_unvectored=getattr(ch, "net_syscalls_unvectored", 0),
            net_vectored=getattr(ch, "net_vectored", 0),
            coalesce_hwm=getattr(ch, "coalesce_hwm", 0),
        )


def assemble_run_result(
    *,
    stores: list[dict[str, Any]],
    returns: list[Any],
    engine: str,
    channel_stats: Sequence[ChannelStatsRecord],
    trace: Trace | None = None,
    report: Any = None,
    causal: Any = None,
) -> RunResult:
    """The single point where a :class:`RunResult` is populated.

    Centralising this (rather than each engine filling the stats dicts
    ad hoc) keeps the per-channel fields uniform across backends — the
    engine-equivalence tests compare them directly.
    """
    if report is not None and causal is not None:
        report.causal = causal
    return RunResult(
        stores=stores,
        returns=returns,
        trace=trace,
        channel_stats={r.name: (r.sends, r.receives) for r in channel_stats},
        channel_bytes={r.name: r.bytes_sent for r in channel_stats},
        channel_hwm={r.name: r.queue_hwm for r in channel_stats},
        channel_frames={r.name: r.frames for r in channel_stats},
        channel_pipe_bytes={r.name: r.pipe_bytes for r in channel_stats},
        channel_shm_bytes={r.name: r.shm_bytes for r in channel_stats},
        channel_net_syscalls={r.name: r.net_syscalls for r in channel_stats},
        channel_net_syscalls_unvectored={
            r.name: r.net_syscalls_unvectored for r in channel_stats
        },
        channel_net_vectored={r.name: r.net_vectored for r in channel_stats},
        channel_coalesce_hwm={r.name: r.coalesce_hwm for r in channel_stats},
        engine=engine,
        report=report,
        causal=causal,
    )


class RunState:
    """Fresh per-run mutable state: live channels, stores, contexts."""

    def __init__(
        self, system: "System", executor, trace: Trace | None, observer=None
    ):
        self.system = system
        self.trace = trace
        self.observer = observer
        self.channels: dict[str, Channel] = {
            spec.name: system.make_channel(spec) for spec in system.channel_specs
        }
        self.stores: list[dict[str, Any]] = [
            p.fresh_store() for p in system.processes
        ]
        self.returns: list[Any] = [None] * system.nprocs
        self.contexts: list[ProcessContext] = []
        for p in system.processes:
            out = {
                name: ch
                for name, ch in self.channels.items()
                if ch.writer == p.rank
            }
            inc = {
                name: ch
                for name, ch in self.channels.items()
                if ch.reader == p.rank
            }
            self.contexts.append(
                ProcessContext(
                    rank=p.rank,
                    nprocs=system.nprocs,
                    store=self.stores[p.rank],
                    out_channels=out,
                    in_channels=inc,
                    executor=executor,
                    name=p.name,
                    observer=self.observer,
                )
            )

    def result(self, engine: str, causal: Any = None) -> RunResult:
        report = None
        if self.observer is not None:
            from repro.obs.report import build_run_report

            report = build_run_report(
                self.observer, engine, self.system.nprocs, self.channels.values()
            )
        return assemble_run_result(
            stores=self.stores,
            returns=self.returns,
            engine=engine,
            channel_stats=[
                ChannelStatsRecord.from_channel(ch)
                for ch in self.channels.values()
            ],
            trace=self.trace,
            report=report,
            causal=causal,
        )


class System:
    """A set of process specs plus the channel specs connecting them."""

    def __init__(
        self,
        processes: Sequence[ProcessSpec],
        channels: Sequence[ChannelSpec] = (),
    ):
        procs = sorted(processes, key=lambda p: p.rank)
        ranks = [p.rank for p in procs]
        if ranks != list(range(len(procs))):
            raise RuntimeModelError(
                f"process ranks must be dense 0..N-1, got {ranks}"
            )
        self.processes: list[ProcessSpec] = list(procs)
        self.channel_specs: list[ChannelSpec] = []
        self._channel_names: set[str] = set()
        for spec in channels:
            self.add_channel_spec(spec)

    # -- construction ----------------------------------------------------------

    @property
    def nprocs(self) -> int:
        return len(self.processes)

    def add_channel_spec(self, spec: ChannelSpec) -> ChannelSpec:
        if spec.name in self._channel_names:
            raise ChannelError(f"duplicate channel name {spec.name!r}")
        for endpoint, role in ((spec.writer, "writer"), (spec.reader, "reader")):
            if endpoint >= self.nprocs:
                raise ChannelError(
                    f"channel {spec.name!r} {role} rank {endpoint} does not "
                    f"exist (nprocs={self.nprocs})"
                )
        self._channel_names.add(spec.name)
        self.channel_specs.append(spec)
        return spec

    def add_channel(self, name: str, writer: int, reader: int) -> ChannelSpec:
        """Convenience wrapper building and registering a spec."""
        return self.add_channel_spec(ChannelSpec(name, writer, reader))

    def make_channel(self, spec: ChannelSpec) -> Channel:
        """Channel factory; subclasses in :mod:`repro.theory.violations`
        override this to inject deliberately broken channels."""
        return Channel(spec)

    # -- inspection ------------------------------------------------------------

    def channels_written_by(self, rank: int) -> list[ChannelSpec]:
        return [c for c in self.channel_specs if c.writer == rank]

    def channels_read_by(self, rank: int) -> list[ChannelSpec]:
        return [c for c in self.channel_specs if c.reader == rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System(nprocs={self.nprocs}, "
            f"channels={len(self.channel_specs)})"
        )
