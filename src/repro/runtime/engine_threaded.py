"""The free-running threaded engine: the "real parallel" execution.

Each process body runs on its own OS thread; channels are thread-safe
FIFO queues; receives block.  The OS scheduler provides the "fair
interleaving of actions from processes" of the paper's model (section
3.1, item 4) — which particular interleaving occurs is outside our
control, and that is the point: Theorem 1 says it does not matter.

Practical deviations from the idealised model, handled explicitly:

* when a process terminates, the channels it writes are *closed*; a
  reader blocked on a closed empty channel receives
  :class:`~repro.errors.EmptyChannelError` instead of hanging forever,
  so most real deadlocks surface as diagnosable failures;
* an optional ``recv_timeout`` bounds every blocking receive, turning
  any remaining hang into an error;
* a body that raises is reported as
  :class:`~repro.errors.ProcessFailedError` after all threads have been
  reaped.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import wrap_process_failure
from repro.runtime.channel import Channel
from repro.runtime.system import RunResult, RunState, System
from repro.runtime.trace import Trace

__all__ = ["ThreadedEngine"]


class _ThreadedExecutor:
    """Performs actions immediately; optionally records them.

    Trace recording takes a lock (the trace list is shared); per-channel
    sequence numbers are race-free without extra locking because each
    channel has exactly one writer and one reader.  With an observer
    attached, each receive's blocked interval is timed; without one
    (the default) no clock is ever read.
    """

    def __init__(
        self,
        trace: Trace | None,
        recv_timeout: float | None,
        observer=None,
        causal=None,
    ):
        self._trace = trace
        self._lock = threading.Lock()
        self._recv_timeout = recv_timeout
        self._obs = observer
        #: Per-rank :class:`~repro.obs.causal.CausalRecorder` list, or
        #: ``None``.  In-process channels move references rather than
        #: wire frames, so the Lamport stamp travels out-of-band: a
        #: shared ``(channel, seq) -> clock`` table, written by the
        #: sender *before* the value is enqueued (so it is always
        #: present by the time the matching receive can complete).
        self._causal = causal
        self._sent_clocks: dict[tuple[str, int], int] = {}

    def exec_send(self, rank: int, channel: Channel, value: Any) -> None:
        if self._causal is not None:
            # SRSW: this thread is the only sender, so ``sends`` is the
            # seq the send below will return.
            stamp = self._causal[rank].on_send(channel.name, channel.sends)
            with self._lock:
                self._sent_clocks[(channel.name, channel.sends)] = stamp
        seq = channel.send(value, rank=rank)
        if self._trace is not None:
            with self._lock:
                self._trace.record(rank, "send", channel.name, seq)

    def exec_recv(self, rank: int, channel: Channel) -> Any:
        if self._obs is not None:
            t0 = self._obs.clock()
            value = channel.recv(rank=rank, timeout=self._recv_timeout)
            self._obs.recv_blocked(rank, channel.name, t0, self._obs.clock())
        else:
            value = channel.recv(rank=rank, timeout=self._recv_timeout)
        # SRSW: this thread is the only receiver, so ``receives`` is
        # stable between the recv above and the reads below.
        if self._causal is not None:
            seq = channel.receives - 1
            with self._lock:
                stamp = self._sent_clocks.pop((channel.name, seq), None)
            self._causal[rank].on_recv(channel.name, seq, stamp)
        if self._trace is not None:
            seq = channel.receives - 1
            with self._lock:
                self._trace.record(rank, "recv", channel.name, seq)
        return value

    def exec_step(self, rank: int, label: str) -> None:
        if self._causal is not None:
            self._causal[rank].on_step(label)
        if self._trace is not None:
            with self._lock:
                self._trace.record(rank, "step", None, -1, label=label)


class ThreadedEngine:
    """Run a :class:`~repro.runtime.system.System` on free-running threads.

    Parameters
    ----------
    trace:
        Record an execution trace (observation order).  Off by default:
        tracing serialises on a lock and perturbs timing.
    recv_timeout:
        Optional upper bound, in seconds, on any single blocking
        receive.  ``None`` (default) waits indefinitely.
    observe:
        ``True`` creates a fresh :class:`~repro.obs.observer.Observer`
        per run; an :class:`Observer` instance is used as given (one
        observer may span layers, but then reuse it for one run only).
        Off by default — the un-observed path never reads a clock.
        The result's ``report`` carries the per-run summary.
    trace_causal:
        Record per-rank Lamport-clock event logs and merge them into a
        happens-before :class:`~repro.obs.causal.CausalTrace` on the
        result's ``causal`` field.  Unlike ``trace`` this never imposes
        an observation order, so it is also available on the process
        engines; recording is a pure refinement — it cannot change what
        any body computes.
    """

    name = "threaded"

    def __init__(
        self,
        trace: bool = False,
        recv_timeout: float | None = None,
        observe=False,
        trace_causal: bool = False,
    ):
        self._trace_enabled = trace
        self._recv_timeout = recv_timeout
        self._observe = observe
        self._trace_causal = trace_causal

    def _make_observer(self):
        if self._observe is True:
            from repro.obs.observer import Observer

            return Observer()
        return self._observe or None

    def run(self, system: System) -> RunResult:
        trace = Trace() if self._trace_enabled else None
        observer = self._make_observer()
        recorders = None
        if self._trace_causal:
            from repro.obs.causal import CausalRecorder

            recorders = [CausalRecorder(p.rank) for p in system.processes]
        executor = _ThreadedExecutor(
            trace, self._recv_timeout, observer, recorders
        )
        state = RunState(system, executor, trace, observer)
        errors: dict[int, BaseException] = {}
        threads: list[threading.Thread] = []

        def runner(rank: int) -> None:
            ctx = state.contexts[rank]
            if observer is not None:
                observer.process_started(rank, ctx.name)
            try:
                state.returns[rank] = system.processes[rank].body(ctx)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors[rank] = exc
            finally:
                # Closing write channels wakes readers blocked on queues
                # this process will never fill again.
                for ch in ctx.out_channels.values():
                    ch.close()
                if observer is not None:
                    observer.process_finished(rank)

        for p in system.processes:
            t = threading.Thread(
                target=runner, args=(p.rank,), name=p.name, daemon=True
            )
            threads.append(t)
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            rank = min(errors)
            raise wrap_process_failure(rank, errors[rank]) from errors[rank]
        causal = None
        if recorders is not None:
            from repro.obs.causal import merge_causal_events

            causal = merge_causal_events(
                {r.rank: r.payload() for r in recorders},
                system.nprocs,
                engine=self.name,
            )
        return state.result(self.name, causal)
