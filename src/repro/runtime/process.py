"""Process specifications.

A process in the paper's model is a *sequential, deterministic* program
with a private address space.  Here a process is described by a
:class:`ProcessSpec`: a rank, a body (a plain Python callable taking a
:class:`~repro.runtime.context.ProcessContext`), and an initial local
store.  The same spec is executed unchanged by both engines — this is
what makes "the parallel program and its simulation run the same code"
a checked property rather than an analogy.

Determinism is a *contract* on bodies: they must not consult wall-clock
time, unseeded randomness, or anything outside ``ctx``.  The library
cannot verify the contract statically, but :mod:`repro.theory.determinacy`
verifies its observable consequence — identical final states across
interleavings — and :mod:`repro.theory.violations` demonstrates what
breaks when the contract is violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util import deep_copy_value

__all__ = ["ProcessSpec"]


@dataclass
class ProcessSpec:
    """Description of one process in a system.

    Parameters
    ----------
    rank:
        The process index, ``0 <= rank < nprocs``, unique in its system.
    body:
        ``body(ctx)`` — runs to completion using only ``ctx`` for
        communication and ``ctx.store`` for state.  Its return value is
        captured in the run result.
    store:
        Initial local variables.  Deep-copied at every run start so that
        (a) repeated runs are independent and (b) no mutable state is
        shared between processes (the model's "no shared variables").
    name:
        Optional human-readable name used in traces and diagnostics.
    """

    rank: int
    body: Callable[..., Any]
    store: dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"process rank must be non-negative, got {self.rank}")
        if not callable(self.body):
            raise TypeError("process body must be callable")
        if not self.name:
            self.name = f"P{self.rank}"

    def fresh_store(self) -> dict[str, Any]:
        """An isolated copy of the initial store for one run."""
        return {k: deep_copy_value(v) for k, v in self.store.items()}
