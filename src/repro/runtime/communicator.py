"""Tagged point-to-point messaging over SRSW channels.

The paper's Theorem 1 is stated for single-reader single-writer
channels, and section 3.3 notes real message-passing systems can
simulate channels "using tagged point-to-point messages if necessary".
This module supplies the glue in both directions:

* :func:`make_full_mesh_channels` wires one channel per ordered process
  pair (the physical layer);
* :class:`Communicator` multiplexes arbitrarily many logical streams
  over those channels by tagging every payload, with per-source
  buffering so receives may select by tag out of arrival order — the
  familiar MPI-flavoured interface
  (``send(value, dest, tag)`` / ``recv(source, tag)``) the archetype
  library is written against.

Because each ordered pair has its own FIFO channel and each logical
stream uses a fixed tag, messages of one stream are received in the
order sent — the property the refinement transform relies on when it
converts data-exchange assignments into sends and receives.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import CommunicatorError
from repro.runtime.context import ProcessContext
from repro.runtime.message import ANY_TAG, TaggedMessage
from repro.runtime.system import System
from repro.util import deep_copy_value, payload_nbytes

__all__ = ["Communicator", "make_full_mesh_channels", "pair_channel_name"]

#: Default channel-name prefix for communicator meshes.
_PREFIX = "msg"


def pair_channel_name(src: int, dst: int, prefix: str = _PREFIX) -> str:
    """Canonical name of the channel carrying messages ``src -> dst``."""
    return f"{prefix}_{src}_{dst}"


def make_full_mesh_channels(
    system: System, prefix: str = _PREFIX, ranks: list[int] | None = None
) -> None:
    """Add one channel per ordered pair of ``ranks`` to ``system``.

    With N processes this wires N*(N-1) channels.  For systems whose
    communication structure is known (e.g. mesh boundary exchange) a
    sparser wiring is preferable; the archetype layer wires only the
    channels it needs.
    """
    rs = list(ranks) if ranks is not None else list(range(system.nprocs))
    for i in rs:
        for j in rs:
            if i != j:
                system.add_channel(pair_channel_name(i, j, prefix), i, j)


class Communicator:
    """MPI-flavoured tagged point-to-point messaging for one process.

    Created inside a process body from its context::

        def body(ctx):
            comm = Communicator(ctx)
            comm.send(value, dest=1, tag=7)
            other = comm.recv(source=1, tag=7)

    Receives select by ``(source, tag)``; envelopes that arrive before
    they are wanted are buffered per source, so two logical streams
    between the same pair of processes cannot corrupt each other.

    When the run is observed (see :mod:`repro.obs`), every send is
    reported as one message of its ``(source, dest, tag)`` logical
    stream, and the out-of-order buffer's occupancy high-water mark is
    tracked per rank in the run's metrics registry.
    """

    def __init__(self, ctx: ProcessContext, prefix: str = _PREFIX):
        self.ctx = ctx
        self.rank = ctx.rank
        self.size = ctx.nprocs
        self._prefix = prefix
        self._obs = ctx.observer
        # Envelopes received from each source but not yet consumed.
        self._pending: dict[int, deque[TaggedMessage]] = {}

    # -- plumbing ---------------------------------------------------------------

    def _out(self, dest: int):
        return self.ctx.out_channel(pair_channel_name(self.rank, dest, self._prefix))

    def _in(self, source: int):
        return self.ctx.in_channel(pair_channel_name(source, self.rank, self._prefix))

    # -- operations ---------------------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0, copy: bool = False) -> None:
        """Send ``value`` to ``dest`` under ``tag``.

        Never blocks (infinite slack).  ``copy=True`` deep-copies the
        payload first, for callers that will mutate it after sending;
        the refinement transform and archetype library always send
        fresh copies, so they pass ``copy=False``.
        """
        if dest == self.rank:
            raise CommunicatorError(
                f"rank {self.rank} attempted send-to-self; local data "
                "never travels through a channel"
            )
        if copy:
            value = deep_copy_value(value)
        if self._obs is not None:
            self._obs.message(self.rank, dest, tag, payload_nbytes(value))
        self.ctx.send(self._out(dest), TaggedMessage(self.rank, tag, value))

    def recv(self, source: int, tag: int = ANY_TAG) -> Any:
        """Blocking receive of the next message from ``source`` matching
        ``tag`` (or any tag, with :data:`~repro.runtime.message.ANY_TAG`).
        """
        if source == self.rank:
            raise CommunicatorError(
                f"rank {self.rank} attempted recv-from-self"
            )
        buf = self._pending.setdefault(source, deque())
        for i, env in enumerate(buf):
            if env.matches(tag):
                del buf[i]
                return env.payload
        ch = self._in(source)
        while True:
            env = self.ctx.recv(ch)
            if not isinstance(env, TaggedMessage):
                raise CommunicatorError(
                    f"non-enveloped value on communicator channel "
                    f"{ch.name!r}: {type(env).__name__}"
                )
            if env.matches(tag):
                return env.payload
            buf.append(env)
            if self._obs is not None:
                self._obs.registry.gauge(
                    f"comm/pending/P{self.rank}"
                ).update_max(len(buf))

    def sendrecv(
        self,
        value: Any,
        partner: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Exchange with ``partner``: send then receive.

        Safe in any interleaving because the send cannot block —
        this is exactly the sends-before-receives ordering the paper
        prescribes for data-exchange operations.
        """
        self.send(value, partner, send_tag)
        return self.recv(partner, send_tag if recv_tag is None else recv_tag)
