"""Execution traces: the raw material of the Theorem 1 experiments.

An *interleaving* in the paper is a sequence of actions drawn from the
processes.  Engines can record each action as an :class:`Event`; the
resulting :class:`Trace` is what :mod:`repro.theory` analyses — building
the happens-before relation, permuting interleavings into one another
(the proof technique of Theorem 1), and rendering the Figure 1 style
correspondence between parallel and simulated-parallel executions.

Three action kinds are recorded:

``send``
    A value was appended to a channel.  ``channel`` names it and
    ``seq`` is the 0-based per-channel send sequence number.
``recv``
    A value was removed from a channel; ``seq`` is the per-channel
    receive sequence number.  The k-th receive on a channel observes
    the k-th send (FIFO), which is exactly the cross-process edge of
    the happens-before relation.
``step``
    An explicit local-computation marker emitted by ``ctx.step()``.
    Local steps never synchronise, so they commute freely with actions
    of other processes; bodies emit them only to make traces legible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Event", "Trace"]


@dataclass(frozen=True)
class Event:
    """One action of one process, in global interleaving order.

    ``index`` is the position of this event in the global interleaving;
    ``local_index`` its position within its process's own sequence.
    ``seq`` is only meaningful for ``send``/``recv`` (per-channel
    sequence number); it is ``-1`` for ``step`` events.
    """

    index: int
    rank: int
    kind: str  # 'send' | 'recv' | 'step'
    channel: str | None
    seq: int
    label: str = ""
    local_index: int = -1

    def brief(self) -> str:
        """Compact single-token rendering, e.g. ``P1:send(c01#3)``."""
        if self.kind == "step":
            tag = self.label or "compute"
            return f"P{self.rank}:{tag}"
        return f"P{self.rank}:{self.kind}({self.channel}#{self.seq})"


class Trace:
    """An append-only record of one execution's actions."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._local_counts: dict[int, int] = {}

    # -- recording (engine-side) -------------------------------------------

    def record(
        self,
        rank: int,
        kind: str,
        channel: str | None = None,
        seq: int = -1,
        label: str = "",
    ) -> Event:
        local_index = self._local_counts.get(rank, 0)
        self._local_counts[rank] = local_index + 1
        ev = Event(
            index=len(self._events),
            rank=rank,
            kind=kind,
            channel=channel,
            seq=seq,
            label=label,
            local_index=local_index,
        )
        self._events.append(ev)
        return ev

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, i) -> Event:
        return self._events[i]

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def by_rank(self, rank: int) -> list[Event]:
        """The (program-order) subsequence of events of one process."""
        return [e for e in self._events if e.rank == rank]

    def communication_events(self) -> list[Event]:
        """Only sends and receives — what Theorem 1's permutations act on."""
        return [e for e in self._events if e.kind in ("send", "recv")]

    def schedule(self) -> list[int]:
        """The interleaving as a list of ranks (replayable by
        :class:`~repro.runtime.schedulers.ReplayPolicy`)."""
        return [e.rank for e in self._events]

    def render(self, width: int = 72) -> str:
        """Multi-line human-readable rendering (Figure 1 style).

        Lines longer than ``width`` columns (long channel names or step
        labels) are truncated with an ellipsis so rendered traces line
        up in fixed-width experiment reports.
        """
        width = max(width, 16)
        lines = []
        for ev in self._events:
            line = f"{ev.index:5d}  {ev.brief()}"
            if len(line) > width:
                line = line[: width - 1] + "…"
            lines.append(line)
        return "\n".join(lines)
