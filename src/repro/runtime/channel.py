"""Single-reader single-writer channels with infinite slack.

A channel in the paper's model (section 3.1, item 3) is a FIFO queue
with one registered writer process, one registered reader process, and
unbounded capacity ("infinite slack"), read with *blocking* receives.

:class:`ChannelSpec` is the static description used when wiring a
:class:`~repro.runtime.system.System`; :class:`Channel` is the live
run-time object, created fresh for every run so a system can be executed
many times (each execution is one interleaving, and Theorem 1 is a
statement about *all* of them).

The same :class:`Channel` serves both engines:

* under the threaded engine, :meth:`Channel.recv` blocks on a condition
  variable until a value (or channel close) arrives;
* under the cooperative engine the scheduler only ever grants a receive
  when the channel is known non-empty, so :meth:`Channel.recv_nowait`
  is used and an empty receive is a scheduler bug
  (:class:`~repro.errors.EmptyChannelError`), mirroring the simulation
  rule "take care that no attempt is made to read from a channel unless
  it is known not to be empty".
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    ChannelError,
    ChannelOwnershipError,
    EmptyChannelError,
)
from repro.util import payload_nbytes

__all__ = ["ChannelSpec", "Channel"]


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of a channel: its name and its two endpoints.

    ``writer`` and ``reader`` are process ranks.  A spec with
    ``writer == reader`` is rejected at system-wiring time: a process
    sending to itself over a blocking-receive channel is always either
    pointless (the value was already local) or a self-deadlock risk, and
    the paper's data-exchange restriction (ii) never produces one.
    """

    name: str
    writer: int
    reader: int

    def __post_init__(self) -> None:
        if self.writer == self.reader:
            raise ChannelError(
                f"channel {self.name!r}: writer and reader are both rank "
                f"{self.writer}; SRSW channels connect distinct processes"
            )
        if self.writer < 0 or self.reader < 0:
            raise ChannelError(f"channel {self.name!r}: negative rank")


class Channel:
    """A live FIFO channel with registered single writer / single reader.

    Thread safety: all queue operations take an internal lock, so the
    channel is safe under the free-running threaded engine.  Under the
    cooperative engine only one process acts at a time, so the lock is
    uncontended and merely cheap insurance.
    """

    __slots__ = (
        "spec",
        "_queue",
        "_lock",
        "_nonempty",
        "_closed",
        "sends",
        "receives",
        "bytes_sent",
        "queue_hwm",
    )

    def __init__(self, spec: ChannelSpec):
        self.spec = spec
        self._queue: deque[Any] = deque()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False
        #: total number of values ever sent on this channel
        self.sends = 0
        #: total number of values ever received from this channel
        self.receives = 0
        #: estimated payload bytes ever sent (see util.payload_nbytes)
        self.bytes_sent = 0
        #: queue-occupancy high-water mark: how far the writer ever ran
        #: ahead of the reader (the empirical face of "infinite slack")
        self.queue_hwm = 0

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def writer(self) -> int:
        return self.spec.writer

    @property
    def reader(self) -> int:
        return self.spec.reader

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, {self.writer}->{self.reader}, "
            f"depth={len(self)})"
        )

    # -- state -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def poll(self) -> bool:
        """True iff a receive would succeed immediately."""
        with self._lock:
            return bool(self._queue)

    # -- operations ---------------------------------------------------------

    def send(self, value: Any, *, rank: int) -> int:
        """Append ``value``; returns this send's 0-based sequence number.

        Infinite slack means a send never blocks and never fails for
        capacity reasons.  ``rank`` must be the registered writer.
        """
        if rank != self.writer:
            raise ChannelOwnershipError(
                f"rank {rank} sent on channel {self.name!r} "
                f"owned by writer {self.writer}"
            )
        with self._lock:
            if self._closed:
                raise ChannelError(
                    f"send on closed channel {self.name!r} (writer already "
                    "finished once; a channel is closed exactly when its "
                    "writer terminates)"
                )
            seq = self.sends
            self._queue.append(value)
            self.sends += 1
            self.bytes_sent += payload_nbytes(value)
            depth = len(self._queue)
            if depth > self.queue_hwm:
                self.queue_hwm = depth
            self._nonempty.notify()
        return seq

    def recv(self, *, rank: int, timeout: float | None = None) -> Any:
        """Blocking receive (threaded engine).

        Blocks until a value is available.  If the writer terminates
        while the queue is empty the receive can never succeed, so it
        raises :class:`~repro.errors.EmptyChannelError` — turning what
        would be a silent hang into a diagnosable failure.
        """
        if rank != self.reader:
            raise ChannelOwnershipError(
                f"rank {rank} received on channel {self.name!r} "
                f"owned by reader {self.reader}"
            )
        with self._nonempty:
            while not self._queue:
                if self._closed:
                    raise EmptyChannelError(
                        f"receive on channel {self.name!r}: writer "
                        f"{self.writer} terminated with the channel empty"
                    )
                if not self._nonempty.wait(timeout=timeout):
                    raise EmptyChannelError(
                        f"receive on channel {self.name!r} timed out after "
                        f"{timeout}s (likely deadlock)"
                    )
            self.receives += 1
            return self._queue.popleft()

    def recv_nowait(self, *, rank: int) -> Any:
        """Non-blocking receive (cooperative engine).

        The cooperative scheduler only grants receives on channels it has
        verified non-empty, so an empty channel here is a scheduler bug.
        """
        if rank != self.reader:
            raise ChannelOwnershipError(
                f"rank {rank} received on channel {self.name!r} "
                f"owned by reader {self.reader}"
            )
        with self._lock:
            if not self._queue:
                raise EmptyChannelError(
                    f"simulated receive on empty channel {self.name!r}: the "
                    "simulation rule forbids reading a channel not known to "
                    "be non-empty"
                )
            self.receives += 1
            return self._queue.popleft()

    def close(self) -> None:
        """Mark the writer terminated; wakes any blocked reader."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    def snapshot(self) -> tuple[Any, ...]:
        """The queued values, oldest first, without consuming them.

        Non-mutating counterpart of :meth:`drain`; the schedule
        explorer fingerprints these alongside the address spaces.
        """
        with self._lock:
            return tuple(self._queue)

    def drain(self) -> list[Any]:
        """Remove and return all queued values (diagnostics only)."""
        with self._lock:
            out = list(self._queue)
            self._queue.clear()
            return out
