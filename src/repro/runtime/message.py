"""Tagged message envelopes.

Section 3.3 of the paper notes that channels can be simulated "using
tagged point-to-point messages if necessary".  The communicator layer
(:mod:`repro.runtime.communicator`) multiplexes many logical streams
over one physical channel per ordered process pair by wrapping every
payload in a :class:`TaggedMessage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TaggedMessage", "ANY_TAG"]

#: Wildcard accepted by ``Communicator.recv`` to match any tag.
ANY_TAG: int = -1


@dataclass(frozen=True)
class TaggedMessage:
    """An immutable envelope: source rank, integer tag, payload.

    The payload is carried by reference — processes must not mutate a
    value after sending it.  (The refinement transform only ever sends
    freshly-copied slices, and the archetype library copies on send; the
    communicator also offers ``copy=True`` for defensive callers.)
    """

    source: int
    tag: int
    payload: Any = field(repr=False)

    def __post_init__(self) -> None:
        if self.tag < 0:
            raise ValueError(f"message tag must be non-negative, got {self.tag}")

    def matches(self, tag: int) -> bool:
        """True iff this envelope satisfies a receive for ``tag``."""
        return tag == ANY_TAG or tag == self.tag
