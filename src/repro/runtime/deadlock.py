"""Deadlock diagnostics.

The cooperative engine detects deadlock exactly (live processes, no
enabled action) and raises :class:`~repro.errors.DeadlockError` with a
``waiting`` map.  This module turns that map plus the system wiring
into an explanation: the wait-for graph among processes and its cycles.

A process blocked receiving on channel ``c`` waits for ``c``'s writer.
A cycle in the wait-for graph is a classic circular wait; an acyclic
blocked set means some writer simply terminated (or will never send
enough values) — a logic error rather than a circular dependency.
Ablation A1 uses these diagnostics to show *why* receive-first
data-exchange orderings self-deadlock while the sends-first ordering
prescribed by the paper cannot.
"""

from __future__ import annotations

import re

from repro.errors import DeadlockError
from repro.runtime.system import System

__all__ = ["wait_for_graph", "find_cycles", "explain_deadlock"]

_CHANNEL_RE = re.compile(r"channel '([^']+)'")


def wait_for_graph(
    error: DeadlockError, system: System
) -> dict[int, list[int]]:
    """Edges ``blocked_rank -> writer_rank`` extracted from a deadlock.

    Returned as an adjacency mapping (each blocked process waits on
    exactly one writer in this model, but the mapping form composes with
    graph utilities).
    """
    graph: dict[int, list[int]] = {}
    by_name = {spec.name: spec for spec in system.channel_specs}
    for rank, description in error.waiting.items():
        match = _CHANNEL_RE.search(description)
        if not match:
            continue
        spec = by_name.get(match.group(1))
        if spec is not None:
            graph.setdefault(rank, []).append(spec.writer)
    return graph


def find_cycles(graph: dict[int, list[int]]) -> list[list[int]]:
    """All simple cycles of a small wait-for graph (DFS)."""
    cycles: list[list[int]] = []
    seen_cycles: set[tuple[int, ...]] = set()

    def dfs(path: list[int], node: int) -> None:
        for succ in graph.get(node, ()):
            if succ in path:
                cycle = path[path.index(succ) :]
                # Canonicalise rotation so each cycle is reported once.
                pivot = cycle.index(min(cycle))
                key = tuple(cycle[pivot:] + cycle[:pivot])
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(list(key))
            else:
                dfs(path + [succ], succ)

    for start in graph:
        dfs([start], start)
    return cycles


def explain_deadlock(error: DeadlockError, system: System) -> str:
    """Human-readable diagnosis of a deadlock."""
    graph = wait_for_graph(error, system)
    cycles = find_cycles(graph)
    lines = ["deadlock diagnosis:"]
    for rank, desc in sorted(error.waiting.items()):
        lines.append(f"  P{rank} blocked: {desc}")
    if cycles:
        for cycle in cycles:
            ring = " -> ".join(f"P{r}" for r in cycle + cycle[:1])
            lines.append(f"  circular wait: {ring}")
    else:
        lines.append(
            "  no circular wait: some awaited writer has terminated or "
            "under-sent"
        )
    return "\n".join(lines)
