"""Deadlock diagnostics.

The cooperative engine detects deadlock exactly (live processes, no
enabled action) and raises :class:`~repro.errors.DeadlockError` with a
``waiting`` map.  This module turns that map plus the system wiring
into an explanation: the wait-for graph among processes and its cycles.

A process blocked receiving on channel ``c`` waits for ``c``'s writer.
A cycle in the wait-for graph is a classic circular wait; an acyclic
blocked set means some writer simply terminated (or will never send
enough values) — a logic error rather than a circular dependency.
Ablation A1 uses these diagnostics to show *why* receive-first
data-exchange orderings self-deadlock while the sends-first ordering
prescribed by the paper cannot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DeadlockError
from repro.runtime.system import System

__all__ = [
    "DeadlockReport",
    "build_report",
    "wait_for_graph",
    "find_cycles",
    "explain_deadlock",
]

_CHANNEL_RE = re.compile(r"channel '([^']+)'")


@dataclass(frozen=True)
class DeadlockReport:
    """Structured evidence for one detected deadlock.

    ``blocked`` maps each blocked rank to ``(channel_name, peer_rank)``
    — the channel it is receiving on and that channel's writer, i.e. the
    rank it waits for.  ``cycles`` are the wait-for graph's circular
    waits (rank rings, canonicalised to start at their minimum rank); an
    empty tuple means the blockage is acyclic (some awaited writer
    terminated or under-sent — a logic error, not a circular
    dependency).  The cooperative engine attaches this report to the
    partial ``RunResult`` it snapshots at detection time
    (``result.deadlock``) so the schedule explorer can classify
    deadlocks distinctly from crashes.
    """

    blocked: dict[int, tuple[str, int]]
    cycles: tuple[tuple[int, ...], ...] = ()
    waiting: dict[int, str] = field(default_factory=dict)

    @property
    def circular(self) -> bool:
        return bool(self.cycles)

    def describe(self) -> str:
        parts = [
            f"P{rank} blocked on {chan!r} (waits for P{peer})"
            for rank, (chan, peer) in sorted(self.blocked.items())
        ]
        if self.cycles:
            for cycle in self.cycles:
                ring = " -> ".join(f"P{r}" for r in list(cycle) + [cycle[0]])
                parts.append(f"circular wait {ring}")
        return "; ".join(parts)


def build_report(
    blocked: dict[int, tuple[str, int]],
    waiting: dict[int, str] | None = None,
) -> DeadlockReport:
    """Assemble a :class:`DeadlockReport` from a structured blocked map,
    computing the wait-for cycles."""
    graph = {rank: [peer] for rank, (_, peer) in blocked.items()}
    cycles = tuple(tuple(c) for c in find_cycles(graph))
    return DeadlockReport(
        blocked=dict(blocked), cycles=cycles, waiting=dict(waiting or {})
    )


def wait_for_graph(
    error: DeadlockError, system: System
) -> dict[int, list[int]]:
    """Edges ``blocked_rank -> writer_rank`` extracted from a deadlock.

    Prefers the structured ``error.blocked`` map the cooperative engine
    now records; falls back to parsing the textual ``waiting``
    descriptions for errors built by other (or older) sources.
    Returned as an adjacency mapping (each blocked process waits on
    exactly one writer in this model, but the mapping form composes with
    graph utilities).
    """
    if getattr(error, "blocked", None):
        return {
            rank: [peer] for rank, (_, peer) in sorted(error.blocked.items())
        }
    graph: dict[int, list[int]] = {}
    by_name = {spec.name: spec for spec in system.channel_specs}
    for rank, description in error.waiting.items():
        match = _CHANNEL_RE.search(description)
        if not match:
            continue
        spec = by_name.get(match.group(1))
        if spec is not None:
            graph.setdefault(rank, []).append(spec.writer)
    return graph


def find_cycles(graph: dict[int, list[int]]) -> list[list[int]]:
    """All simple cycles of a small wait-for graph (DFS)."""
    cycles: list[list[int]] = []
    seen_cycles: set[tuple[int, ...]] = set()

    def dfs(path: list[int], node: int) -> None:
        for succ in graph.get(node, ()):
            if succ in path:
                cycle = path[path.index(succ) :]
                # Canonicalise rotation so each cycle is reported once.
                pivot = cycle.index(min(cycle))
                key = tuple(cycle[pivot:] + cycle[:pivot])
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(list(key))
            else:
                dfs(path + [succ], succ)

    for start in graph:
        dfs([start], start)
    return cycles


def explain_deadlock(error: DeadlockError, system: System) -> str:
    """Human-readable diagnosis of a deadlock."""
    graph = wait_for_graph(error, system)
    cycles = find_cycles(graph)
    lines = ["deadlock diagnosis:"]
    for rank, desc in sorted(error.waiting.items()):
        lines.append(f"  P{rank} blocked: {desc}")
    if cycles:
        for cycle in cycles:
            ring = " -> ".join(f"P{r}" for r in cycle + cycle[:1])
            lines.append(f"  circular wait: {ring}")
    else:
        lines.append(
            "  no circular wait: some awaited writer has terminated or "
            "under-sent"
        )
    return "\n".join(lines)
