"""An mpi4py-flavoured facade over the substrate.

The original experiments ran on Fortran M, p4 and NX; the lingua franca
today is MPI.  This module lets code written in the familiar mpi4py
lowercase-method idiom run unchanged on this library's channels —
useful both as a migration aid and as the most direct demonstration that
the paper's channel model and tagged point-to-point messaging are
interchangeable (section 3.3).

Supported subset (the pickle-style lowercase API):

* ``comm.Get_rank()`` / ``comm.Get_size()`` / ``comm.rank`` / ``comm.size``
* ``comm.send(obj, dest, tag=0)`` / ``comm.recv(source, tag=ANY)``
* ``comm.sendrecv(obj, dest, ...)``
* ``comm.bcast(obj, root=0)``
* ``comm.scatter(list, root=0)`` / ``comm.gather(obj, root=0)``
* ``comm.allgather(obj)`` / ``comm.allreduce(obj, op=operator.add)``
* ``comm.reduce(obj, op, root=0)``
* ``comm.barrier()``

Run an SPMD main with :func:`run_mpi_style`::

    def main(comm):
        rank = comm.Get_rank()
        total = comm.allreduce(rank)
        return total

    result = run_mpi_style(4, main)
    assert result.returns == [6, 6, 6, 6]

Semantics note: sends are buffered (infinite slack), i.e. MPI's
``MPI_Bsend`` discipline — the one the paper's model prescribes and the
one under which Theorem 1 holds.  Rendezvous sends would reintroduce
the finite-slack failure mode demonstrated in
:mod:`repro.theory.violations`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.runtime.collectives import Collectives
from repro.runtime.communicator import Communicator, make_full_mesh_channels
from repro.runtime.context import ProcessContext
from repro.runtime.engine_threaded import ThreadedEngine
from repro.runtime.message import ANY_TAG
from repro.runtime.process import ProcessSpec
from repro.runtime.system import RunResult, System

__all__ = ["MPIStyleComm", "run_mpi_style", "ANY_TAG"]


class MPIStyleComm:
    """The familiar communicator surface, backed by SRSW channels."""

    def __init__(self, ctx: ProcessContext):
        self._comm = Communicator(ctx)
        self._coll = Collectives(self._comm)
        self.rank = ctx.rank
        self.size = ctx.nprocs

    # -- queries -------------------------------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point ---------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send (never blocks; infinite slack)."""
        self._comm.send(obj, dest=dest, tag=tag, copy=True)

    def recv(self, source: int, tag: int = ANY_TAG) -> Any:
        """Blocking receive, selecting on (source, tag)."""
        return self._comm.recv(source=source, tag=tag)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int | None = None,
        recvtag: int | None = None,
    ) -> Any:
        src = dest if source is None else source
        rtag = sendtag if recvtag is None else recvtag
        self.send(sendobj, dest, sendtag)
        return self.recv(src, rtag)

    # -- collectives ---------------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._coll.broadcast(obj, root=root)

    def scatter(self, sendobj: list | None, root: int = 0) -> Any:
        return self._coll.scatter(sendobj, root=root)

    def gather(self, sendobj: Any, root: int = 0) -> list | None:
        return self._coll.gather(sendobj, root=root)

    def allgather(self, sendobj: Any) -> list:
        return self._coll.allgather(sendobj)

    def reduce(
        self, sendobj: Any, op: Callable = operator.add, root: int = 0
    ) -> Any:
        return self._coll.reduce_all_to_one(sendobj, op, root=root)

    def allreduce(self, sendobj: Any, op: Callable = operator.add) -> Any:
        return self._coll.allreduce_recursive_doubling(sendobj, op)

    def barrier(self) -> None:
        self._coll.barrier()

    # mpi4py also capitalises Barrier; accept both spellings.
    Barrier = barrier


def build_mpi_style_system(
    nprocs: int, main: Callable[[MPIStyleComm], Any]
) -> System:
    """Wire an SPMD ``main(comm)`` over a full channel mesh."""

    def body(ctx: ProcessContext) -> Any:
        return main(MPIStyleComm(ctx))

    system = System([ProcessSpec(r, body) for r in range(nprocs)])
    make_full_mesh_channels(system)
    return system


def run_mpi_style(
    nprocs: int,
    main: Callable[[MPIStyleComm], Any],
    engine=None,
) -> RunResult:
    """``mpiexec -n nprocs`` for the substrate: run ``main(comm)`` on
    every rank; the result carries per-rank return values and stores."""
    system = build_mpi_style_system(nprocs, main)
    return (engine or ThreadedEngine()).run(system)
