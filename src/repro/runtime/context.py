"""The API a process body sees.

A body is a plain callable ``body(ctx)``.  Everything a process may
legally do in the paper's model flows through the
:class:`ProcessContext`:

* ``ctx.store`` — the private address space (a dict of named values);
* ``ctx.send(channel, value)`` / ``ctx.recv(channel)`` — the only
  interaction with other processes;
* ``ctx.step(label)`` — an optional marker delimiting local-computation
  blocks; it has no semantic effect (local actions of distinct
  processes always commute) but makes traces legible and, under the
  cooperative engine, gives the scheduler an extra preemption point so
  interleavings can split computation the way Figure 1 of the paper
  draws it.

The context is engine-agnostic: it forwards each action to an
*executor* installed by the engine.  The threaded executor performs the
action immediately (receives block); the cooperative executor first
asks its scheduler for permission, which is how controlled
interleavings are produced from unmodified process bodies.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.errors import ChannelError
from repro.runtime.channel import Channel

__all__ = ["ProcessContext", "ActionExecutor"]


class ActionExecutor(Protocol):
    """What an engine must provide to run process bodies."""

    def exec_send(self, rank: int, channel: Channel, value: Any) -> None:
        """Perform (or schedule and perform) a send."""

    def exec_recv(self, rank: int, channel: Channel) -> Any:
        """Perform a blocking receive; returns the received value."""

    def exec_step(self, rank: int, label: str) -> None:
        """Mark a local-computation step."""


class ProcessContext:
    """Per-process, per-run view of the system.

    Channel handles are exposed by name: ``ctx.send("c01", v)`` uses the
    channel named ``"c01"``, which must have this process as its writer.
    Bodies may also hold :class:`Channel` objects directly (as obtained
    from :meth:`out_channel` / :meth:`in_channel`), which avoids a dict
    lookup in inner loops.
    """

    __slots__ = (
        "rank",
        "nprocs",
        "store",
        "name",
        "observer",
        "_out",
        "_in",
        "_executor",
    )

    def __init__(
        self,
        rank: int,
        nprocs: int,
        store: dict[str, Any],
        out_channels: dict[str, Channel],
        in_channels: dict[str, Channel],
        executor: ActionExecutor,
        name: str = "",
        observer: Any = None,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.store = store
        self.name = name or f"P{rank}"
        #: the run's :class:`~repro.obs.observer.Observer`, or ``None``
        #: when the run is not instrumented (the default); layers above
        #: raw channels record through it (see repro.obs.observer_of)
        self.observer = observer
        self._out = out_channels
        self._in = in_channels
        self._executor = executor

    # -- channel lookup ------------------------------------------------------

    def out_channel(self, name: str) -> Channel:
        """The channel this process writes, by name."""
        try:
            return self._out[name]
        except KeyError:
            raise ChannelError(
                f"{self.name} has no outgoing channel {name!r}; "
                f"outgoing: {sorted(self._out)}"
            ) from None

    def in_channel(self, name: str) -> Channel:
        """The channel this process reads, by name."""
        try:
            return self._in[name]
        except KeyError:
            raise ChannelError(
                f"{self.name} has no incoming channel {name!r}; "
                f"incoming: {sorted(self._in)}"
            ) from None

    @property
    def out_channels(self) -> dict[str, Channel]:
        return dict(self._out)

    @property
    def in_channels(self) -> dict[str, Channel]:
        return dict(self._in)

    # -- actions ---------------------------------------------------------------

    def send(self, channel: str | Channel, value: Any) -> None:
        """Send ``value`` on ``channel`` (never blocks: infinite slack).

        Dispatch is on the *name* type so that any channel-shaped
        endpoint object (in-process :class:`Channel`, cross-process
        ``ProcChannel``) passes through untouched.
        """
        ch = self.out_channel(channel) if isinstance(channel, str) else channel
        self._executor.exec_send(self.rank, ch, value)

    def recv(self, channel: str | Channel) -> Any:
        """Blocking receive from ``channel``."""
        ch = self.in_channel(channel) if isinstance(channel, str) else channel
        return self._executor.exec_recv(self.rank, ch)

    def step(self, label: str = "compute") -> None:
        """Mark a local-computation step (trace/preemption point only)."""
        self._executor.exec_step(self.rank, label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessContext(rank={self.rank}, nprocs={self.nprocs})"
