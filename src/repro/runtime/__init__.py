"""Message-passing substrate implementing the paper's parallel model.

The target parallel program of the paper (section 3.1) is:

1. a collection of N sequential, deterministic processes;
2. with no shared variables — each process has a distinct address space;
3. interacting only through sends and *blocking* receives on
   single-reader single-writer channels with infinite slack;
4. executed as a fair interleaving of actions from the processes.

This package provides exactly that model, twice over:

* :class:`~repro.runtime.engine_threaded.ThreadedEngine` runs process
  bodies on free-running OS threads with thread-safe FIFO channels —
  the "real parallel" execution;
* :class:`~repro.runtime.engine_cooperative.CooperativeEngine` runs the
  *same* bodies one action at a time, with a pluggable
  :mod:`~repro.runtime.schedulers` policy choosing which process acts
  next — a generator of arbitrary maximal interleavings, i.e. the
  simulated execution of section 3.1, and the vehicle for the
  Theorem 1 experiments in :mod:`repro.theory`.

On top of raw channels, :mod:`~repro.runtime.communicator` provides
tagged point-to-point messaging (the paper notes channels may be
simulated by tagged point-to-point messages; we provide both
directions), and :mod:`~repro.runtime.collectives` provides the
broadcast / reduction / gather / scatter operations the mesh archetype's
communication library is built from.
"""

from repro.runtime.channel import Channel, ChannelSpec
from repro.runtime.message import TaggedMessage
from repro.runtime.process import ProcessSpec
from repro.runtime.context import ProcessContext
from repro.runtime.system import System, RunResult
from repro.runtime.engine_threaded import ThreadedEngine
from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.schedulers import (
    RoundRobinPolicy,
    RandomPolicy,
    RunToBlockPolicy,
    SendsFirstPolicy,
    ReplayPolicy,
)
from repro.runtime.communicator import Communicator, make_full_mesh_channels
from repro.runtime.collectives import Collectives
from repro.runtime.mpi_style import MPIStyleComm, run_mpi_style

def __getattr__(name):
    # Lazy: importing the multiprocess backend pulls in multiprocessing
    # machinery that plain in-process runs never need.
    if name == "MultiprocessEngine":
        from repro.dist.engine import MultiprocessEngine

        return MultiprocessEngine
    if name == "SocketEngine":
        from repro.dist.net.engine import SocketEngine

        return SocketEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


ENGINE_NAMES = (
    "cooperative",
    "threaded",
    "multiprocess",
    "multiprocess+pool",
    "socket",
)


def make_engine(name: str = "threaded", backend: str | None = None, **kwargs):
    """Engine factory by name — the CLI's ``--engine`` values.

    ``kwargs`` are forwarded to the engine constructor (``observe``,
    ``recv_timeout``, ...; ``start_method``, ``pool``, ``affinity`` and
    ``payload_slab`` for the multiprocess backend).  The variant name
    ``"multiprocess+pool"`` is shorthand for ``("multiprocess",
    pool=True)`` — workers boot once and are reused across every
    subsequent ``run()`` on the same engine (close with
    ``engine.close()`` or use the engine as a context manager).
    ``"socket"`` runs ranks in TCP-connected worker daemons — loopback
    daemons it spawns itself by default, or external ones via
    ``hosts="hostA:9001,hostB:9002"`` — and likewise wants a
    ``close()`` when done.

    ``backend`` names the array backend the caller's program was built
    on (``"numpy"`` / ``"cupy"``, see :mod:`repro.xp`).  Engines move
    bytes and never touch array arithmetic, so the name is only
    *validated* here — an unknown or uninstalled backend fails at
    engine creation instead of deep inside a run.
    """
    if backend is not None:
        from repro.xp import get_backend

        get_backend(backend)
    if name == "threaded":
        return ThreadedEngine(**kwargs)
    if name == "cooperative":
        return CooperativeEngine(**kwargs)
    if name in ("multiprocess", "multiprocess+pool"):
        from repro.dist.engine import MultiprocessEngine

        if name.endswith("+pool"):
            kwargs.setdefault("pool", True)
        return MultiprocessEngine(**kwargs)
    if name == "socket":
        from repro.dist.net.engine import SocketEngine

        return SocketEngine(**kwargs)
    raise ValueError(
        f"unknown engine {name!r}; options: {', '.join(ENGINE_NAMES)}"
    )


__all__ = [
    "Channel",
    "ChannelSpec",
    "MultiprocessEngine",
    "SocketEngine",
    "TaggedMessage",
    "ProcessSpec",
    "ProcessContext",
    "System",
    "RunResult",
    "ThreadedEngine",
    "CooperativeEngine",
    "RoundRobinPolicy",
    "RandomPolicy",
    "RunToBlockPolicy",
    "SendsFirstPolicy",
    "ReplayPolicy",
    "Communicator",
    "Collectives",
    "MPIStyleComm",
    "run_mpi_style",
    "make_full_mesh_channels",
    "make_engine",
    "ENGINE_NAMES",
]
