"""Collective operations over a :class:`~repro.runtime.communicator.Communicator`.

The mesh archetype's communication library (paper section 4.2) needs a
small set of collective patterns:

* **broadcast of global data** — binomial tree from the root;
* **reduction support** — both implementations the paper names:
  *all-to-one/one-to-all* (gather values to a root, combine, broadcast
  the result) and *recursive doubling* (butterfly exchange, every rank
  finishes with the result);
* **redistribution** — gather/scatter between a host process and grid
  processes, for file I/O.

Determinism note: with floating-point operands, reduction results
depend on combination order.  Every algorithm here fixes its
combination order deterministically (all-to-one combines in increasing
rank order; recursive doubling combines lower-rank operand first), so a
given algorithm at a given process count is bit-reproducible run to
run — while *different* algorithms or process counts may legitimately
differ.  That gap is not a bug: it is the associativity phenomenon the
paper's far-field experiment tripped over, reproduced in experiment E2.

SPMD contract: all participating ranks must call the same collectives
in the same order.  Each collective invocation draws a fresh tag block
from a per-communicator counter, so consecutive collectives can never
confuse each other's messages.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.errors import CommunicatorError
from repro.obs.observer import observer_of
from repro.runtime.communicator import Communicator

__all__ = ["Collectives"]

# Tags within one collective's block.
_TAG_SPAN = 8
_T_DATA = 0
_T_UP = 1
_T_DOWN = 2
_T_BARRIER = 3


def _timed(op_name: str):
    """Record each invocation as a ``collective:<op>`` span.

    Composite collectives (reduce_one_to_all, allgather) produce nested
    spans — the composite and its constituent operations — which is the
    intended reading of the timeline.  With instrumentation off the
    observer is the null observer and the span is a shared no-op.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            with self._obs.span(
                self.rank, f"collective:{op_name}", cat="collective"
            ):
                return fn(self, *args, **kwargs)

        return wrapper

    return deco


class Collectives:
    """Stateful facade: collective operations for one rank.

    Wraps a communicator; maintains an operation counter that all ranks
    advance in lockstep (SPMD), giving every collective a private tag
    block.
    """

    def __init__(self, comm: Communicator):
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self._op_counter = 0
        self._obs = observer_of(comm.ctx)

    def _tags(self) -> int:
        base = self._op_counter * _TAG_SPAN
        self._op_counter += 1
        return base

    # -- broadcast ---------------------------------------------------------------

    @_timed("broadcast")
    def broadcast(self, value: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the root's value on all ranks.

        log2(P) rounds; in round k, every rank that already holds the
        value forwards it to the rank 2^k away (in root-relative
        numbering).
        """
        self._check_root(root)
        base = self._tags()
        rel = (self.rank - root) % self.size
        have = rel == 0
        k = 1
        while k < self.size:
            if have and rel + k < self.size:
                dest = (root + rel + k) % self.size
                self.comm.send(value, dest, base + _T_DATA)
            elif not have and rel < 2 * k:
                src = (root + rel - k) % self.size
                value = self.comm.recv(src, base + _T_DATA)
                have = True
            k *= 2
        return value

    # -- reductions ---------------------------------------------------------------

    @_timed("reduce_all_to_one")
    def reduce_all_to_one(
        self, value: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """All-to-one reduction: every rank sends to the root, which
        combines contributions in increasing rank order.  Non-roots
        return ``None``.

        O(P) messages into the root; the paper lists this alongside
        recursive doubling as an archetype reduction implementation, and
        ablation A2 compares their modeled cost.
        """
        self._check_root(root)
        base = self._tags()
        if self.rank != root:
            self.comm.send(value, root, base + _T_UP)
            return None
        acc: Any = None
        # Combine in increasing rank order for a deterministic result.
        for r in range(self.size):
            if r == root:
                contrib = value
            else:
                contrib = self.comm.recv(r, base + _T_UP)
            acc = contrib if r == 0 else op(acc, contrib)
        return acc

    @_timed("reduce_one_to_all")
    def reduce_one_to_all(
        self, value: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """All-to-one reduction followed by one-to-all broadcast: every
        rank returns the combined value (the 'all-to-one/one-to-all'
        pattern of section 4.2)."""
        result = self.reduce_all_to_one(value, op, root)
        return self.broadcast(result, root)

    @_timed("allreduce_recursive_doubling")
    def allreduce_recursive_doubling(
        self, value: Any, op: Callable[[Any, Any], Any]
    ) -> Any:
        """Recursive-doubling allreduce (Van de Velde's method, which the
        paper cites for concurrent reductions).

        For P a power of two: log2(P) butterfly rounds; at each round a
        rank exchanges its partial with ``rank XOR 2^k`` and combines,
        always placing the lower rank's operand first so every rank
        computes bitwise the same result.

        For other P: the trailing ``P - 2^k`` ranks first fold their
        values into a partner inside the leading power-of-two block,
        the block runs the butterfly, and results are sent back out.
        """
        base = self._tags()
        p2 = 1
        while p2 * 2 <= self.size:
            p2 *= 2
        extra = self.size - p2

        acc = value
        in_block = self.rank < p2
        if self.rank >= p2:
            # Fold my value into rank - p2, then wait for the result.
            self.comm.send(acc, self.rank - p2, base + _T_UP)
            return self.comm.recv(self.rank - p2, base + _T_DOWN)
        if self.rank < extra:
            other = self.comm.recv(self.rank + p2, base + _T_UP)
            acc = op(acc, other)

        k = 1
        while k < p2:
            partner = self.rank ^ k
            other = self.comm.sendrecv(acc, partner, base + _T_DATA + 4)
            # Lower-rank operand first: both sides combine identically.
            acc = op(acc, other) if self.rank < partner else op(other, acc)
            k *= 2

        if in_block and self.rank < extra:
            self.comm.send(acc, self.rank + p2, base + _T_DOWN)
        return acc

    # -- gather / scatter ------------------------------------------------------------

    @_timed("gather")
    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to the root (rank order); ``None``
        elsewhere."""
        self._check_root(root)
        base = self._tags()
        if self.rank != root:
            self.comm.send(value, root, base + _T_UP)
            return None
        out = []
        for r in range(self.size):
            out.append(value if r == root else self.comm.recv(r, base + _T_UP))
        return out

    @_timed("scatter")
    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        """Scatter ``values[r]`` to each rank ``r`` from the root."""
        self._check_root(root)
        base = self._tags()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommunicatorError(
                    f"scatter root needs exactly {self.size} values, got "
                    f"{None if values is None else len(values)}"
                )
            for r in range(self.size):
                if r != root:
                    self.comm.send(values[r], r, base + _T_DOWN)
            return values[root]
        return self.comm.recv(root, base + _T_DOWN)

    @_timed("allgather")
    def allgather(self, value: Any) -> list[Any]:
        """Every rank returns the list of all ranks' values (rank order)."""
        gathered = self.gather(value, root=0)
        return self.broadcast(gathered, root=0)

    # -- synchronisation ------------------------------------------------------------

    @_timed("barrier")
    def barrier(self) -> None:
        """Dissemination barrier: log2(P) rounds of token exchange."""
        base = self._tags()
        k = 1
        while k < self.size:
            dest = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            self.comm.send(True, dest, base + _T_BARRIER)
            self.comm.recv(src, base + _T_BARRIER)
            k *= 2

    # -- internals ---------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(
                f"root {root} out of range for {self.size} processes"
            )
