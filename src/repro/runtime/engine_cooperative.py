"""The cooperative engine: controlled maximal interleavings.

This engine runs the *same* process bodies as the threaded engine, but
one action at a time: before every send, receive, or explicit local
step, the process parks and the engine's scheduling policy decides who
moves next.  Because the policy only ever sees *enabled* actions —
sends and steps always; receives only when their channel is non-empty —
each completed run is a legal maximal interleaving of the system in the
paper's sense, and the engine is therefore:

* the **simulated execution** of section 3.1 (interleave actions,
  distinct address spaces, channels as queues, never read an empty
  channel);
* the instrument of the **Theorem 1 experiments**: run one system under
  many policies/seeds and observe that every maximal interleaving
  terminates in the same final state;
* an exact **replayer** (via
  :class:`~repro.runtime.schedulers.ReplayPolicy`) and the substrate of
  exhaustive interleaving enumeration (:mod:`repro.theory.enumerate`).

Mechanically each process body still runs on its own thread, but a
handshake (park / grant) ensures only one thread is ever executing
between scheduling decisions, so execution is sequential — a genuine
simulation, not merely a serialised parallel run.

Deadlock — live processes, none enabled — is detected exactly and
raised as :class:`~repro.errors.DeadlockError` with a map of which rank
is blocked on which channel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    DeadlockError,
    ScheduleError,
    wrap_process_failure,
)
from repro.runtime.channel import Channel
from repro.runtime.schedulers import (
    PendingAction,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from repro.runtime.system import RunResult, RunState, System
from repro.runtime.trace import Trace

__all__ = ["CooperativeEngine"]


class _AbortExecution(BaseException):
    """Raised inside a parked process thread to unwind it when the engine
    aborts a run (deadlock, failure elsewhere, schedule error).  Derives
    from BaseException so well-behaved bodies cannot swallow it."""


@dataclass
class _Request:
    kind: str  # 'send' | 'recv' | 'step'
    channel: Channel | None
    value: Any = None
    label: str = ""


class _Slot:
    """Synchronisation state for one process thread."""

    def __init__(self, rank: int):
        self.rank = rank
        self.pending: _Request | None = None
        self.parked = threading.Event()  # set: awaiting grant, or finished
        self.go = threading.Event()  # set by engine: perform your action
        self.finished = False
        self.error: BaseException | None = None
        self.aborted = False


class _CooperativeExecutor:
    """Runs inside process threads; parks before every action.

    With an observer attached, each receive's park-to-grant interval is
    recorded as its blocked time: under the simulation a process is
    "blocked on recv" exactly while it waits for the scheduler to grant
    the receive (which the scheduler does only once the channel is
    non-empty), so the measured interval is the simulated analogue of
    the threaded engine's wait on the condition variable.
    """

    def __init__(self, trace: Trace | None, observer=None, causal=None):
        self.trace = trace
        self.observer = observer
        self.slots: list[_Slot] = []
        #: Per-rank :class:`~repro.obs.causal.CausalRecorder` list, or
        #: ``None``.  Stamps travel out-of-band through a shared
        #: ``(channel, seq) -> clock`` table, filled by the sender after
        #: its grant but before the value is enqueued; one action runs
        #: at a time, so no lock is needed.
        self.causal = causal
        self._sent_clocks: dict[tuple[str, int], int] = {}

    def _await_grant(self, rank: int, request: _Request) -> None:
        slot = self.slots[rank]
        slot.pending = request
        slot.parked.set()
        slot.go.wait()
        slot.go.clear()
        if slot.aborted:
            raise _AbortExecution()

    def exec_send(self, rank: int, channel: Channel, value: Any) -> None:
        self._await_grant(rank, _Request("send", channel, value=value))
        if self.causal is not None:
            stamp = self.causal[rank].on_send(channel.name, channel.sends)
            self._sent_clocks[(channel.name, channel.sends)] = stamp
        seq = channel.send(value, rank=rank)
        if self.trace is not None:
            self.trace.record(rank, "send", channel.name, seq)

    def exec_recv(self, rank: int, channel: Channel) -> Any:
        if self.observer is not None:
            t0 = self.observer.clock()
            self._await_grant(rank, _Request("recv", channel))
            self.observer.recv_blocked(
                rank, channel.name, t0, self.observer.clock()
            )
        else:
            self._await_grant(rank, _Request("recv", channel))
        # The engine granted this receive only after verifying the
        # channel non-empty, so a non-blocking pop must succeed.
        value = channel.recv_nowait(rank=rank)
        if self.causal is not None:
            seq = channel.receives - 1
            stamp = self._sent_clocks.pop((channel.name, seq), None)
            self.causal[rank].on_recv(channel.name, seq, stamp)
        if self.trace is not None:
            self.trace.record(rank, "recv", channel.name, channel.receives - 1)
        return value

    def exec_step(self, rank: int, label: str) -> None:
        self._await_grant(rank, _Request("step", None, label=label))
        if self.causal is not None:
            self.causal[rank].on_step(label)
        if self.trace is not None:
            self.trace.record(rank, "step", None, -1, label=label)


class CooperativeEngine:
    """Execute a system one action at a time under a scheduling policy.

    Parameters
    ----------
    policy:
        A :class:`~repro.runtime.schedulers.SchedulingPolicy`; defaults
        to round-robin.  The policy is ``reset()`` at the start of each
        run, so one engine can be reused.
    trace:
        Record the interleaving (default on — controlled interleavings
        are usually produced in order to be inspected).
    max_actions:
        Safety bound on the total number of actions; exceeding it raises
        :class:`~repro.errors.ScheduleError` (a terminating system under
        a correct policy never hits it).
    observe:
        ``True`` creates a fresh :class:`~repro.obs.observer.Observer`
        per run; an :class:`Observer` instance is used as given.  Off by
        default.  The result's ``report`` carries the per-run summary;
        note that under the simulation "blocked" time includes the
        serialisation the scheduler imposes, so the split describes the
        *simulated* schedule, not hardware parallelism.
    trace_causal:
        Record per-rank Lamport-clock event logs and merge them into a
        happens-before :class:`~repro.obs.causal.CausalTrace` on the
        result's ``causal`` field — the engine-independent counterpart
        of ``trace``.  Pure refinement: recording cannot change what
        any body computes.
    """

    name = "cooperative"

    def __init__(
        self,
        policy: SchedulingPolicy | None = None,
        trace: bool = True,
        max_actions: int | None = None,
        observe=False,
        trace_causal: bool = False,
    ):
        self.policy = policy or RoundRobinPolicy()
        self._trace_enabled = trace
        self._max_actions = max_actions
        self._observe = observe
        self._trace_causal = trace_causal

    def _make_observer(self):
        if self._observe is True:
            from repro.obs.observer import Observer

            return Observer()
        return self._observe or None

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _enabled(slots: list[_Slot]) -> list[PendingAction]:
        out: list[PendingAction] = []
        for slot in slots:
            if slot.finished or slot.pending is None:
                continue
            req = slot.pending
            if req.kind == "recv":
                assert req.channel is not None
                if not req.channel.poll():
                    continue
            out.append(
                PendingAction(
                    rank=slot.rank,
                    kind=req.kind,
                    channel=req.channel.name if req.channel else None,
                )
            )
        return out

    @staticmethod
    def _blocked_map(slots: list[_Slot]) -> dict[int, str]:
        waiting = {}
        for slot in slots:
            if slot.finished or slot.pending is None:
                continue
            req = slot.pending
            if req.kind == "recv" and req.channel is not None:
                waiting[slot.rank] = (
                    f"recv on empty channel {req.channel.name!r} "
                    f"(writer {req.channel.writer})"
                )
        return waiting

    @staticmethod
    def _blocked_edges(slots: list[_Slot]) -> dict[int, tuple[str, int]]:
        """Structured form of :meth:`_blocked_map`:
        rank -> (channel name, peer rank waited on)."""
        blocked = {}
        for slot in slots:
            if slot.finished or slot.pending is None:
                continue
            req = slot.pending
            if req.kind == "recv" and req.channel is not None:
                blocked[slot.rank] = (req.channel.name, req.channel.writer)
        return blocked

    def _raise_deadlock(self, state: RunState, slots: list[_Slot]) -> None:
        """Build the enriched DeadlockError: per-member channel + peer in
        the message, wait-for cycles, and a partial RunResult carrying
        the cycle report on its ``deadlock`` field."""
        from repro.runtime.deadlock import build_report

        waiting = self._blocked_map(slots)
        report = build_report(self._blocked_edges(slots), waiting)
        # Snapshot the partial state without the observer: the run
        # report builder assumes finished processes, and the abort that
        # follows makes its numbers meaningless anyway.
        saved_observer = state.observer
        state.observer = None
        try:
            partial = state.result(self.name)
        finally:
            state.observer = saved_observer
        partial.deadlock = report
        live = [s for s in slots if not s.finished]
        raise DeadlockError(
            f"{len(live)} process(es) live but none enabled: "
            f"{report.describe()}",
            waiting=waiting,
            blocked=report.blocked,
            cycles=report.cycles,
            result=partial,
        )

    def _abort_all(self, slots: list[_Slot]) -> None:
        for slot in slots:
            if not slot.finished:
                slot.aborted = True
                slot.go.set()

    # -- main entry ------------------------------------------------------------

    def run(self, system: System) -> RunResult:
        trace = Trace() if self._trace_enabled else None
        observer = self._make_observer()
        recorders = None
        if self._trace_causal:
            from repro.obs.causal import CausalRecorder

            recorders = [CausalRecorder(p.rank) for p in system.processes]
        executor = _CooperativeExecutor(trace, observer, recorders)
        state = RunState(system, executor, trace, observer)
        slots = [_Slot(p.rank) for p in system.processes]
        executor.slots = slots
        self.policy.reset()

        def runner(rank: int) -> None:
            slot = slots[rank]
            ctx = state.contexts[rank]
            if observer is not None:
                observer.process_started(rank, ctx.name)
            try:
                state.returns[rank] = system.processes[rank].body(ctx)
            except _AbortExecution:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported below
                slot.error = exc
            finally:
                for ch in ctx.out_channels.values():
                    ch.close()
                if observer is not None:
                    observer.process_finished(rank)
                slot.finished = True
                slot.pending = None
                slot.parked.set()

        threads = [
            threading.Thread(
                target=runner, args=(p.rank,), name=p.name, daemon=True
            )
            for p in system.processes
        ]
        for t in threads:
            t.start()

        actions = 0
        try:
            while True:
                # Quiesce: every process is either finished or parked at
                # its next action request.
                for slot in slots:
                    slot.parked.wait()
                failed = [s for s in slots if s.error is not None]
                if failed:
                    slot = min(failed, key=lambda s: s.rank)
                    raise wrap_process_failure(
                        slot.rank, slot.error
                    ) from slot.error
                live = [s for s in slots if not s.finished]
                if not live:
                    break
                enabled = self._enabled(slots)
                if not enabled:
                    self._raise_deadlock(state, slots)
                if (
                    self._max_actions is not None
                    and actions >= self._max_actions
                ):
                    raise ScheduleError(
                        f"exceeded max_actions={self._max_actions}; "
                        "system may not terminate"
                    )
                self.policy.observe_state(state.stores, state.channels)
                rank = self.policy.choose(enabled)
                if rank not in [a.rank for a in enabled]:
                    raise ScheduleError(
                        f"policy chose rank {rank}, not among enabled "
                        f"{[a.rank for a in enabled]}"
                    )
                actions += 1
                slot = slots[rank]
                slot.parked.clear()
                slot.go.set()
        except BaseException:
            self._abort_all(slots)
            for t in threads:
                t.join(timeout=5.0)
            raise

        for t in threads:
            t.join()
        causal = None
        if recorders is not None:
            from repro.obs.causal import merge_causal_events

            causal = merge_causal_events(
                {r.rank: r.payload() for r in recorders},
                system.nprocs,
                engine=self.name,
            )
        return state.result(self.name, causal)
