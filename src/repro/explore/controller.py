"""The schedule controller: record and steer every ready-set decision.

A :class:`ScheduleController` is a
:class:`~repro.runtime.schedulers.SchedulingPolicy` that fuses the
three ingredients the explorer needs from one controlled run:

* **steering** — follow a forced ``prefix`` of ranks exactly (the path
  to a branch point), then hand over to a ``tail`` policy (min-rank for
  DFS determinism, a seeded random policy for walks);
* **recording** — log, at every decision, the chosen rank and the full
  enabled set of :class:`~repro.runtime.schedulers.PendingAction`s, so
  the search can branch at every untaken alternative;
* **fingerprinting** — via the engine's ``observe_state`` hook, hash
  the scheduler-visible state (stores + channel queues) right before
  each decision, so DFS can prune branch nodes whose state it has
  already expanded.

One controller drives one run; construct a fresh one per execution (the
engine calls ``reset()``, but the logs are cheapest to reason about
when never reused).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ScheduleError
from repro.explore.fingerprint import state_fingerprint
from repro.runtime.schedulers import (
    MinRankPolicy,
    PendingAction,
    SchedulingPolicy,
)

__all__ = ["ScheduleController"]


class ScheduleController(SchedulingPolicy):
    """Prefix-steered, recording, optionally fingerprinting policy."""

    def __init__(
        self,
        prefix: Sequence[int] = (),
        tail: SchedulingPolicy | None = None,
        fingerprint: bool = False,
    ):
        self._prefix = list(prefix)
        self._tail = tail or MinRankPolicy()
        self._fingerprint = fingerprint
        self._pos = 0
        self._pending_fp: str | None = None
        #: per decision: (chosen rank, tuple of enabled PendingActions)
        self.log: list[tuple[int, tuple[PendingAction, ...]]] = []
        #: per decision: state fingerprint just before it (None when off)
        self.fingerprints: list[str | None] = []

    def reset(self) -> None:
        self._pos = 0
        self._pending_fp = None
        self._tail.reset()
        self.log = []
        self.fingerprints = []

    def observe_state(self, stores, channels) -> None:
        if self._fingerprint:
            self._pending_fp = state_fingerprint(stores, channels)
        self._tail.observe_state(stores, channels)

    def choose(self, enabled: list[PendingAction]) -> int:
        if self._pos < len(self._prefix):
            rank = self._prefix[self._pos]
            if rank not in [a.rank for a in enabled]:
                raise ScheduleError(
                    f"explorer prefix names rank {rank} at step "
                    f"{self._pos} but it is not enabled "
                    f"(enabled: {[a.rank for a in enabled]})"
                )
        else:
            rank = self._tail.choose(enabled)
        self._pos += 1
        self.log.append((rank, tuple(enabled)))
        self.fingerprints.append(self._pending_fp)
        self._pending_fp = None
        return rank

    @property
    def schedule(self) -> list[int]:
        """The rank sequence actually executed so far."""
        return [rank for rank, _ in self.log]
