"""Search strategies over the maximal-interleaving space.

Two strategies drive the :class:`~repro.explore.controller
.ScheduleController` through a system's schedule space:

* :func:`explore_dfs` — depth-bounded depth-first search, branching at
  every untaken enabled action of every recorded decision (the
  stateless re-execution scheme of :mod:`repro.theory.enumerate`),
  pruned two ways: **sleep sets** (an alternative that merely commutes
  with an already-explored sibling is never scheduled —
  :func:`repro.theory.por.independent_actions`) and **state
  fingerprints** (a branch node whose scheduler-visible state was
  already expanded is not expanded again — converging prefixes are
  explored once);
* :func:`explore_walk` — seeded random walks, one fresh
  :class:`~repro.runtime.schedulers.RandomPolicy` seed per run,
  deduplicated by schedule until the requested number of *distinct*
  schedules is visited.  No pruning, no per-decision hashing: the
  cheap, scalable sampler for systems (e.g. the FDTD programs) whose
  stores are too large to fingerprint at every step.

Both return an :class:`~repro.explore.report.ExplorationReport` whose
``violations`` list holds every schedule that broke the Theorem 1
contract, each already minimised to its shortest failing prefix.
:func:`fault_sweep_engine` is the off-cooperative counterpart: it runs
a fault plan against a real process engine (multiprocess/socket, real
``SIGKILL`` kills, real-time delays) and classifies every outcome.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.explore.controller import ScheduleController
from repro.explore.faults import FaultedPolicy, FaultPlan, apply_faults
from repro.explore.report import (
    ExplorationReport,
    ScheduleOutcome,
    Violation,
    minimize_prefix,
    run_controlled,
)
from repro.runtime.schedulers import PendingAction, RandomPolicy
from repro.runtime.system import System
from repro.theory.determinacy import state_digest
from repro.theory.por import independent_actions

__all__ = [
    "explore_dfs",
    "explore_walk",
    "fault_sweep_engine",
]

SystemFactory = Callable[[], System]


def _as_factory(system) -> SystemFactory:
    """Accept a System or a zero-argument factory.

    Factories matter for *impure* systems (the racy fixture's shared
    closure state): each run must see a fresh instance or re-execution
    would not be reproducible.  Conforming systems are reusable and may
    be passed directly.
    """
    if isinstance(system, System):
        return lambda: system
    if callable(system):
        return system
    raise TypeError(f"expected System or factory, got {type(system)!r}")


def _run_once(
    factory: SystemFactory,
    plan: FaultPlan,
    prefix: Sequence[int],
    tail=None,
    fingerprint: bool = False,
    max_steps: int | None = None,
) -> tuple[ScheduleOutcome, ScheduleController]:
    controller = ScheduleController(prefix, tail=tail, fingerprint=fingerprint)
    policy = (
        FaultedPolicy(controller, plan.delays) if plan.delays else controller
    )
    system = factory()
    if plan.kills:
        # Simulated kills: bodies raise InjectedKill at the planned
        # action.  Delays need no body wrapping here — the policy mask
        # above models them at the scheduler.
        system = apply_faults(system, plan)
    outcome = run_controlled(system, policy, controller, max_steps)
    return outcome, controller


def _baseline_digest(
    factory: SystemFactory, max_steps: int | None
) -> str | None:
    """Digest of the deterministic fault-free min-rank run (the
    reference all other schedules must match), or None if even that run
    fails (the violation machinery then reports the failure itself)."""
    outcome, _ = _run_once(
        factory, FaultPlan(), (), max_steps=max_steps
    )
    return outcome.digest


def _measure_frontier(
    report: ExplorationReport, factory: SystemFactory, max_steps: int | None
) -> None:
    """Width of the Foata layer-0 frontier from one traced run."""
    from repro.errors import ReproError
    from repro.runtime.engine_cooperative import CooperativeEngine
    from repro.theory.foata import frontier

    try:
        run = CooperativeEngine(trace=True, max_actions=max_steps).run(
            factory()
        )
        report.frontier_width = len(frontier(run.trace))
    except ReproError:
        # Systems whose deterministic run already fails have no
        # reference trace; coverage is reported as n/a.
        report.frontier_width = 0


def _classify_violations(
    report: ExplorationReport,
    bad_outcomes: list[ScheduleOutcome],
    factory: SystemFactory,
    plan: FaultPlan,
    max_steps: int | None,
    minimize: bool = True,
) -> None:
    """Turn contract-breaking outcomes into minimised violations."""
    expected = report.baseline_digest

    def run_one(prefix: list[int]) -> ScheduleOutcome:
        outcome, _ = _run_once(factory, plan, prefix, max_steps=max_steps)
        report.runs += 1
        return outcome

    def failed(outcome: ScheduleOutcome) -> bool:
        if outcome.kind == "ok":
            return outcome.digest != expected
        if outcome.kind == "crash" and plan.kills:
            return False  # a clean injected-kill failure is allowed
        return True

    kind_of = {
        "ok": "nondeterminate",
        "deadlock": "deadlock",
        "crash": "crash",
        "bound": "hang-bound",
    }
    for outcome in bad_outcomes:
        schedule = list(outcome.schedule)
        if minimize:
            prefix, witness = minimize_prefix(run_one, schedule, failed)
        else:
            prefix, witness = schedule, outcome
        report.violations.append(
            Violation(
                kind=kind_of[outcome.kind],
                target=report.target,
                strategy=report.strategy,
                schedule=schedule,
                prefix=prefix,
                expected_digest=expected,
                got_digest=witness.digest,
                detail=witness.detail or outcome.detail,
                faults=plan.to_dict() if plan else None,
            )
        )


def _is_contract_break(
    outcome: ScheduleOutcome, expected: str | None, plan: FaultPlan
) -> bool:
    if outcome.kind == "ok":
        return expected is not None and outcome.digest != expected
    if outcome.kind == "crash":
        # Under a kill plan a clean ProcessFailedError is an allowed
        # outcome; any crash without a kill plan breaks the contract.
        return not plan.kills
    return True  # deadlock or bound hit


def explore_dfs(
    system,
    *,
    max_schedules: int = 500,
    max_depth: int | None = None,
    max_steps: int | None = None,
    fingerprints: bool = True,
    sleep_sets: bool = True,
    plan: FaultPlan | None = None,
    target: str = "system",
    max_violations: int = 4,
    minimize: bool = True,
) -> ExplorationReport:
    """Depth-bounded DFS with sleep-set and fingerprint pruning.

    ``max_depth`` bounds the decision index at which new branches are
    opened (runs still complete past it); ``max_steps`` bounds each
    run's total actions (hang conviction); ``max_schedules`` bounds the
    whole search.
    """
    factory = _as_factory(system)
    plan = plan or FaultPlan()
    report = ExplorationReport(
        target=target, strategy="dfs", faults=plan.describe()
    )
    report.baseline_digest = _baseline_digest(factory, max_steps)
    report.runs += 1
    _measure_frontier(report, factory, max_steps)

    expanded_fps: set[str] = set()
    seen_schedules: set[tuple[int, ...]] = set()
    bad: list[ScheduleOutcome] = []
    # Each frame: (forced prefix, sleep set at the first free decision).
    stack: list[tuple[list[int], frozenset[PendingAction]]] = [
        ([], frozenset())
    ]
    while stack and report.schedules < max_schedules:
        prefix, sleep = stack.pop()
        outcome, controller = _run_once(
            factory, plan, prefix, fingerprint=fingerprints,
            max_steps=max_steps,
        )
        report.runs += 1
        if outcome.schedule not in seen_schedules:
            seen_schedules.add(outcome.schedule)
            report.record(outcome)
            if (
                _is_contract_break(outcome, report.baseline_digest, plan)
                and len(bad) < max_violations
            ):
                bad.append(outcome)

        log = controller.log
        fps = controller.fingerprints
        limit = (
            len(log) if max_depth is None else min(len(log), max_depth)
        )
        schedule = controller.schedule
        cur_sleep = sleep
        for i in range(len(prefix), limit):
            chosen, enabled = log[i]
            chosen_action = next(a for a in enabled if a.rank == chosen)
            fp = fps[i]
            expand = True
            if fingerprints and fp is not None:
                report.states_fingerprinted += 1
                if fp in expanded_fps:
                    report.pruned_fingerprint += 1
                    expand = False
                else:
                    expanded_fps.add(fp)
            if expand:
                sleeping_ranks = {a.rank for a in cur_sleep}
                explored: list[PendingAction] = [chosen_action]
                for alt in enabled:
                    if alt.rank == chosen:
                        continue
                    if sleep_sets and alt.rank in sleeping_ranks:
                        report.pruned_sleep += 1
                        continue
                    child_sleep = frozenset(
                        s
                        for s in set(cur_sleep) | set(explored)
                        if independent_actions(s, alt)
                    )
                    stack.append((schedule[:i] + [alt.rank], child_sleep))
                    explored.append(alt)
            cur_sleep = frozenset(
                s for s in cur_sleep if independent_actions(s, chosen_action)
            )

    _classify_violations(report, bad, factory, plan, max_steps, minimize)
    report.finish()
    return report


def explore_walk(
    system,
    *,
    n_schedules: int = 500,
    seed: int = 0,
    max_steps: int | None = None,
    plan: FaultPlan | None = None,
    target: str = "system",
    max_violations: int = 4,
    minimize: bool = True,
    attempts_factor: int = 4,
) -> ExplorationReport:
    """Seeded random walks until ``n_schedules`` *distinct* schedules.

    Each attempt runs the whole system under a fresh seed; duplicate
    schedules don't count toward the target.  Bounded at
    ``attempts_factor * n_schedules`` attempts, so a system with fewer
    distinct maximal interleavings than requested still terminates.
    """
    factory = _as_factory(system)
    plan = plan or FaultPlan()
    report = ExplorationReport(
        target=target, strategy="walk", faults=plan.describe()
    )
    report.baseline_digest = _baseline_digest(factory, max_steps)
    report.runs += 1
    _measure_frontier(report, factory, max_steps)

    seen_schedules: set[tuple[int, ...]] = set()
    bad: list[ScheduleOutcome] = []
    attempts = 0
    max_attempts = max(1, attempts_factor) * n_schedules
    while report.schedules < n_schedules and attempts < max_attempts:
        tail = RandomPolicy(seed + attempts)
        attempts += 1
        outcome, _ = _run_once(
            factory, plan, (), tail=tail, max_steps=max_steps
        )
        report.runs += 1
        if outcome.schedule in seen_schedules:
            continue
        seen_schedules.add(outcome.schedule)
        report.record(outcome)
        if (
            _is_contract_break(outcome, report.baseline_digest, plan)
            and len(bad) < max_violations
        ):
            bad.append(outcome)

    _classify_violations(report, bad, factory, plan, max_steps, minimize)
    report.finish()
    return report


def fault_sweep_engine(
    system,
    plan: FaultPlan,
    engine,
    runs: int = 3,
    baseline_digest: str | None = None,
    target: str = "system",
) -> list[ScheduleOutcome]:
    """Run a fault plan against a real process engine.

    Kill faults become genuine ``SIGKILL``s (the worker for that rank
    dies mid-run; the engine's crash reaping must surface a clean
    :class:`~repro.errors.ProcessFailedError`); delay faults become
    real-time sender-side sleeps.  Each outcome is classified exactly
    like a cooperative one; crash outcomes are annotated with the
    plan's step/fault-id when the wire lost them (a SIGKILLed worker
    reports nothing, so provenance comes from the plan, which is the
    only party that knows it).  The first failure the engine surfaces
    may belong to a *peer* of the victim — a reader failing fast with
    "writer terminated" — rather than the victim's own crash record;
    that is still the clean-failure outcome the contract demands, and
    the annotation is added only when the reported rank matches a
    planned kill.

    ``engine`` is an engine *name* (``"multiprocess"`` / ``"socket"``)
    or an engine instance.  Under a kill plan pass the name: the sweep
    then builds a fresh engine per run, because a ``SIGKILL`` can take
    the engine's worker infrastructure (a loopback daemon hosting the
    rank) down with it — reusing one engine across kill runs is only
    safe for engines that respawn workers per ``run()``.
    """
    from repro.errors import ProcessFailedError

    factory = _as_factory(system)
    outcomes: list[ScheduleOutcome] = []
    for _ in range(runs):
        faulted_system = apply_faults(
            factory(), plan, real_kill=True, real_delay=True
        )
        if isinstance(engine, str):
            from repro.runtime import make_engine

            run_engine, owned = make_engine(engine), True
        else:
            run_engine, owned = engine, False
        try:
            result = run_engine.run(faulted_system)
        except ProcessFailedError as exc:
            kill = plan.kill_for(exc.rank)
            outcomes.append(
                ScheduleOutcome(
                    kind="crash",
                    schedule=(),
                    detail=repr(exc.original),
                    rank=exc.rank,
                    step=exc.step
                    if exc.step is not None
                    else (kill.step if kill else None),
                    fault_id=exc.fault_id
                    if exc.fault_id is not None
                    else (kill.fault_id if kill else None),
                )
            )
            continue
        finally:
            if owned:
                close = getattr(run_engine, "close", None)
                if close is not None:
                    close()
        digest = state_digest(result)
        kind = "ok"
        detail = ""
        if baseline_digest is not None and digest != baseline_digest:
            kind = "bound"  # corrupted result: flagged as contract break
            detail = (
                f"final state diverged under {plan.describe()}: "
                f"{digest[:12]} != {baseline_digest[:12]}"
            )
        outcomes.append(
            ScheduleOutcome(
                kind=kind, schedule=(), digest=digest, detail=detail
            )
        )
    return outcomes
