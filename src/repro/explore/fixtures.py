"""Named exploration targets: the systems the explorer drives.

Each target is registered as a zero-argument **factory** returning a
fresh :class:`~repro.runtime.system.System`.  Factories (not cached
instances) matter because the deliberately-racy fixtures carry shared
closure state — the very thing Theorem 1 forbids — which must be reset
between re-executions or the replayed schedules would not reproduce.

The registry serves two callers: the ``python -m repro explore`` CLI
(``--target`` names resolve here) and violation-artifact replay
(:func:`repro.explore.report.replay_artifact` rebuilds the system from
the artifact's recorded target name).

Targets:

======================  =====================================================
``racy``                MRSW store shared *without* a channel — one writer
                        bumping a closure-shared cell, two readers peeking at
                        it.  Violates the no-shared-variables hypothesis;
                        bounded search must convict it (nondeterminate).
``exchange2``           Two ranks exchanging values over a channel pair.
``ring3``               Three ranks passing an accumulating token round a
                        ring, with independent local steps.
``fanin``               Two producers feeding one consumer over separate
                        channels (SRSW; determinate by Theorem 1).
``prodcons``            Producer/consumer stream with interleaved compute.
``pipeline``            The pipeline archetype's hand-written streaming form
                        (3 stages x 6 items).
``dc``                  Divide-and-conquer mergesort at 8 leaves.
``e1`` / ``e1-overlap`` Experiment 1's FDTD program (Version A) on a small
                        grid over a 2x2x1 process mesh plus host, without /
                        with the compute-communication overlap refinement.
======================  =====================================================
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.runtime.process import ProcessSpec
from repro.runtime.system import System

__all__ = [
    "build_target",
    "list_targets",
    "racy_store_system",
    "exchange2_system",
    "ring3_system",
    "fanin_system",
    "prodcons_system",
]


# ---------------------------------------------------------------------------
# Racy fixture: the system the explorer must convict
# ---------------------------------------------------------------------------


def racy_store_system(bumps: int = 2) -> System:
    """One writer and two readers sharing a store cell with NO channel.

    The writer bumps a closure-shared counter across ``bumps``
    scheduler-visible steps; each reader records the value it happens to
    observe after one step of its own.  The readers' final stores
    depend on where the scheduler interleaved them relative to the
    writer — a model violation (shared variable) that bounded DFS
    convicts by finding two schedules with different final digests.

    Always call this factory per run: the shared cell lives in the
    closure, so a reused instance would leak state across re-executions.
    """
    shared = {"x": 0}

    def writer(ctx):
        for _ in range(bumps):
            ctx.step("bump")
            shared["x"] += 1

    def reader(ctx):
        ctx.step("peek")
        ctx.store["seen"] = shared["x"]

    return System(
        [
            ProcessSpec(0, writer, name="writer"),
            ProcessSpec(1, reader, name="reader1"),
            ProcessSpec(2, reader, name="reader2"),
        ]
    )


# ---------------------------------------------------------------------------
# Conforming toy systems (determinate by Theorem 1)
# ---------------------------------------------------------------------------


def exchange2_system() -> System:
    """Two ranks exchange values over an SRSW channel pair."""

    def body(ctx):
        out = "c01" if ctx.rank == 0 else "c10"
        inn = "c10" if ctx.rank == 0 else "c01"
        ctx.step("local")
        ctx.send(out, 10 * (ctx.rank + 1))
        ctx.store["peer"] = ctx.recv(inn)

    system = System([ProcessSpec(0, body), ProcessSpec(1, body)])
    system.add_channel("c01", 0, 1)
    system.add_channel("c10", 1, 0)
    return system


def ring3_system() -> System:
    """A token accumulates rank ids round a 3-ring.

    The independent ``init`` steps give the scheduler genuine choices
    at every layer, so the interleaving space is wide while the final
    state stays schedule-independent.
    """

    def body(ctx):
        nxt = f"ring{ctx.rank}"
        prv = f"ring{(ctx.rank - 1) % 3}"
        ctx.step("init")
        if ctx.rank == 0:
            ctx.send(nxt, 1)
            ctx.store["token"] = ctx.recv(prv)
        else:
            token = ctx.recv(prv)
            ctx.store["seen"] = token
            ctx.send(nxt, token + ctx.rank)

    system = System([ProcessSpec(r, body) for r in range(3)])
    for r in range(3):
        system.add_channel(f"ring{r}", r, (r + 1) % 3)
    return system


def fanin_system(n_items: int = 2) -> System:
    """Two producers feed one consumer over separate SRSW channels."""

    def producer(ctx):
        for i in range(n_items):
            ctx.step("make")
            ctx.send(f"in{ctx.rank}", 100 * ctx.rank + i)

    def consumer(ctx):
        got = []
        for i in range(n_items):
            got.append(ctx.recv("in0"))
            got.append(ctx.recv("in1"))
        ctx.store["got"] = got

    system = System(
        [
            ProcessSpec(0, producer),
            ProcessSpec(1, producer),
            ProcessSpec(2, consumer),
        ]
    )
    system.add_channel("in0", 0, 2)
    system.add_channel("in1", 1, 2)
    return system


def prodcons_system(n_items: int = 3) -> System:
    """Producer/consumer stream with interleaved local compute."""

    def producer(ctx):
        for i in range(n_items):
            ctx.step("produce")
            ctx.send("stream", i * i)

    def consumer(ctx):
        total = 0
        for _ in range(n_items):
            total += ctx.recv("stream")
            ctx.step("consume")
        ctx.store["total"] = total

    system = System([ProcessSpec(0, producer), ProcessSpec(1, consumer)])
    system.add_channel("stream", 0, 1)
    return system


# ---------------------------------------------------------------------------
# Archetype-scale targets
# ---------------------------------------------------------------------------


def pipeline_target() -> System:
    from repro.archetypes.pipeline import pipeline_system

    stages = [
        lambda x: x + 1.0,
        lambda x: x * 2.0,
        lambda x: x - 3.0,
    ]
    return pipeline_system(stages, np.arange(6, dtype=np.float64))


def dc_target() -> System:
    from repro.archetypes.divide_conquer import DivideConquerBuilder

    problem = np.random.default_rng(7).normal(size=16)
    builder = DivideConquerBuilder(
        problem,
        solve=lambda x: np.sort(x),
        merge=lambda a, b: np.sort(np.concatenate([a, b])),
        nprocs=8,
    )
    return builder.to_parallel()


def e1_target(overlap: bool = False) -> System:
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        PointSource,
        YeeGrid,
        build_parallel_fdtd,
    )

    config = FDTDConfig(
        grid=YeeGrid(shape=(6, 5, 4)),
        steps=2,
        sources=[
            PointSource("ez", (3, 2, 2), GaussianPulse(delay=4, spread=2))
        ],
    )
    par = build_parallel_fdtd(config, (2, 2, 1), version="A", overlap=overlap)
    return par.to_parallel()


_TARGETS: dict[str, tuple[str, Callable[[], System]]] = {
    "racy": (
        "MRSW store shared without a channel (must be convicted)",
        racy_store_system,
    ),
    "exchange2": ("two-rank value exchange", exchange2_system),
    "ring3": ("3-rank accumulating token ring", ring3_system),
    "fanin": ("two producers, one consumer", fanin_system),
    "prodcons": ("producer/consumer stream", prodcons_system),
    "pipeline": ("3-stage x 6-item streaming pipeline", pipeline_target),
    "dc": ("8-leaf divide-and-conquer mergesort", dc_target),
    "e1": (
        "experiment 1 FDTD, 2x2x1 mesh + host, small grid",
        e1_target,
    ),
    "e1-overlap": (
        "experiment 1 FDTD with compute/communication overlap",
        lambda: e1_target(overlap=True),
    ),
}


def list_targets() -> dict[str, str]:
    """Target name -> one-line description."""
    return {name: desc for name, (desc, _) in _TARGETS.items()}


def build_target(name: str) -> Callable[[], System]:
    """The registered zero-argument system factory for ``name``."""
    try:
        return _TARGETS[name][1]
    except KeyError:
        raise ReproError(
            f"unknown exploration target {name!r} "
            f"(known: {', '.join(sorted(_TARGETS))})"
        ) from None
