"""repro.explore — systematic schedule exploration and fault injection.

Turns Theorem 1 from a statement proved once into an invariant tested
continuously: the explorer drives real systems (the FDTD experiments,
the pipeline and divide-and-conquer archetypes, toy fixtures) through
the space of maximal interleavings via the cooperative engine's
scheduling hook, checks every explored schedule for the determinacy
contract — bitwise-identical final state, or under a fault plan either
that state or a clean failure — and renders any violation as a minimal
replayable schedule prefix.

Layers (see docs/EXPLORATION.md):

* :mod:`~repro.explore.controller` — record/steer every ready-set
  decision; :mod:`~repro.explore.fingerprint` — state hashing for
  stateful pruning;
* :mod:`~repro.explore.strategies` — depth-bounded DFS (sleep-set +
  fingerprint pruned) and seeded random walks, plus real-engine fault
  sweeps;
* :mod:`~repro.explore.faults` — declarative kill/delay fault plans,
  applied as planted exceptions or genuine ``SIGKILL``s;
* :mod:`~repro.explore.report` — outcomes, exploration reports
  (exported through :mod:`repro.obs`), violation artifacts and replay;
* :mod:`~repro.explore.fixtures` — the named target registry,
  including the deliberately-racy fixture the search must convict.
"""

from repro.explore.controller import ScheduleController
from repro.explore.faults import (
    DelayFault,
    FaultedPolicy,
    FaultPlan,
    InjectedKill,
    KillFault,
    apply_faults,
    parse_fault_plan,
)
from repro.explore.fingerprint import state_fingerprint
from repro.explore.fixtures import build_target, list_targets
from repro.explore.report import (
    ExplorationReport,
    ScheduleOutcome,
    Violation,
    load_artifact,
    minimize_prefix,
    replay_artifact,
    run_controlled,
    save_artifact,
)
from repro.explore.strategies import (
    explore_dfs,
    explore_walk,
    fault_sweep_engine,
)

__all__ = [
    "ScheduleController",
    "state_fingerprint",
    "KillFault",
    "DelayFault",
    "FaultPlan",
    "InjectedKill",
    "FaultedPolicy",
    "apply_faults",
    "parse_fault_plan",
    "ScheduleOutcome",
    "ExplorationReport",
    "Violation",
    "run_controlled",
    "minimize_prefix",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
    "explore_dfs",
    "explore_walk",
    "fault_sweep_engine",
    "build_target",
    "list_targets",
]
