"""``python -m repro explore`` — drive the schedule-space explorer.

Modes:

* **explore** (default) — run DFS or random-walk exploration of one or
  more named targets on the cooperative engine, print the report,
  export ``explore.*`` metrics, and dump a replayable JSON artifact for
  every violation found;
* **sweep** (``--engine multiprocess|socket`` + ``--faults``) — run a
  fault plan against a real process engine (kills become genuine
  ``SIGKILL``s), asserting every run ends bitwise-identical or with a
  clean :class:`~repro.errors.ProcessFailedError`;
* **replay** (``--replay FILE``) — re-execute a violation artifact's
  minimal failing prefix deterministically.

Exit status: 0 when every explored target upheld the contract (or,
under ``--expect-violation``, when the expected violation WAS found and
its artifact replays), 1 on contract failure, 2 on usage errors.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

__all__ = ["run_explore"]

_USAGE = """\
usage: python -m repro explore [options]

  --target NAME[,NAME...]   targets to explore (see --list; default ring3)
  --strategy dfs|walk       search strategy (default dfs)
  --schedules N             distinct schedules per target (default 200)
  --max-steps N             per-run action bound (hang conviction)
  --max-depth N             DFS: deepest decision index to branch at
  --seed N                  walk: base RNG seed (default 0)
  --faults SPEC             kill:RANK@STEP,delay:CHANNEL#INDEX[~HOLD],...
  --no-fingerprints         DFS: disable state-fingerprint pruning
  --no-sleep-sets           DFS: disable sleep-set (POR) pruning
  --engine NAME             multiprocess|socket: real-fault sweep mode
  --runs N                  sweep: repetitions per engine (default 3)
  --replay FILE             re-execute a violation artifact and exit
  --expect-violation        exit 0 iff a violation was found (racy CI)
  --artifact-dir DIR        where violation artifacts go
                            (default artifacts/explore)
  --json FILE               write the full report(s) as JSON
  --list                    list known targets and exit
"""


def _parse_args(args: list[str]) -> dict | str | None:
    """Parsed options, ``"help"`` after printing usage, or ``None`` on
    a usage error."""
    opts = {
        "targets": ["ring3"],
        "strategy": "dfs",
        "schedules": 200,
        "max_steps": None,
        "max_depth": None,
        "seed": 0,
        "faults": "",
        "fingerprints": True,
        "sleep_sets": True,
        "engine": None,
        "runs": 3,
        "replay": None,
        "expect_violation": False,
        "artifact_dir": "artifacts/explore",
        "json": None,
        "list": False,
    }
    it = iter(args)
    for flag in it:
        try:
            if flag == "--target":
                opts["targets"] = [
                    t for t in next(it).split(",") if t
                ]
            elif flag == "--strategy":
                opts["strategy"] = next(it)
            elif flag == "--schedules":
                opts["schedules"] = int(next(it))
            elif flag == "--max-steps":
                opts["max_steps"] = int(next(it))
            elif flag == "--max-depth":
                opts["max_depth"] = int(next(it))
            elif flag == "--seed":
                opts["seed"] = int(next(it))
            elif flag == "--faults":
                opts["faults"] = next(it)
            elif flag == "--no-fingerprints":
                opts["fingerprints"] = False
            elif flag == "--no-sleep-sets":
                opts["sleep_sets"] = False
            elif flag == "--engine":
                opts["engine"] = next(it)
            elif flag == "--runs":
                opts["runs"] = int(next(it))
            elif flag == "--replay":
                opts["replay"] = next(it)
            elif flag == "--expect-violation":
                opts["expect_violation"] = True
            elif flag == "--artifact-dir":
                opts["artifact_dir"] = next(it)
            elif flag == "--json":
                opts["json"] = next(it)
            elif flag == "--list":
                opts["list"] = True
            elif flag in ("-h", "--help"):
                print(_USAGE)
                return "help"
            else:
                print(f"unknown explore option {flag!r}")
                print(_USAGE)
                return None
        except (StopIteration, ValueError):
            print(f"bad or incomplete explore option {flag!r}")
            return None
    if opts["strategy"] not in ("dfs", "walk"):
        print(f"unknown strategy {opts['strategy']!r} (dfs or walk)")
        return None
    return opts


def _replay(path: str, max_steps: int | None) -> int:
    from repro.explore.report import load_artifact, replay_artifact

    violation = load_artifact(path)
    print(f"replaying {violation.describe()}")
    reproduced, outcome = replay_artifact(violation, max_steps=max_steps)
    print(f"  outcome: {outcome.describe()}")
    print(f"  reproduced: {'yes' if reproduced else 'NO'}")
    return 0 if reproduced else 1


def _sweep(opts: dict, plan) -> int:
    from repro.explore.fixtures import build_target
    from repro.explore.strategies import fault_sweep_engine
    from repro.runtime.engine_cooperative import CooperativeEngine
    from repro.theory.determinacy import state_digest

    if not plan:
        print("--engine sweep mode needs --faults")
        return 2
    bad = 0
    for target in opts["targets"]:
        factory = build_target(target)
        baseline = state_digest(CooperativeEngine().run(factory()))
        # Engine name, not instance: a fresh engine per run survives
        # SIGKILLed workers taking their daemon down with them.
        outcomes = fault_sweep_engine(
            factory,
            plan,
            opts["engine"],
            runs=opts["runs"],
            baseline_digest=baseline,
            target=target,
        )
        print(
            f"sweep[{opts['engine']}] {target}: {plan.describe()} "
            f"x{opts['runs']}"
        )
        for outcome in outcomes:
            print(f"  {outcome.describe()}")
            if not (
                outcome.kind == "ok"
                or (outcome.kind == "crash" and plan.kills)
            ):
                bad += 1
        clean = sum(1 for o in outcomes if o.kind == "crash")
        identical = sum(1 for o in outcomes if o.kind == "ok")
        print(
            f"  {identical} identical final state(s), "
            f"{clean} clean failure(s), "
            f"{len(outcomes) - clean - identical} contract break(s)"
        )
    return 1 if bad else 0


def run_explore(args: list[str]) -> int:
    opts = _parse_args(args)
    if opts == "help":
        return 0
    if opts is None:
        return 2

    if opts["list"]:
        from repro.explore.fixtures import list_targets

        for name, desc in sorted(list_targets().items()):
            print(f"  {name:12s} {desc}")
        return 0

    if opts["replay"]:
        return _replay(opts["replay"], opts["max_steps"])

    from repro.explore.faults import FaultPlan, parse_fault_plan

    try:
        plan = (
            parse_fault_plan(opts["faults"])
            if opts["faults"]
            else FaultPlan()
        )
    except ReproError as exc:
        print(str(exc))
        return 2

    if opts["engine"] and opts["engine"] != "cooperative":
        return _sweep(opts, plan)

    from repro.explore.fixtures import build_target
    from repro.explore.report import save_artifact
    from repro.explore.strategies import explore_dfs, explore_walk

    reports = []
    any_violation = False
    for target in opts["targets"]:
        factory = build_target(target)
        if opts["strategy"] == "dfs":
            report = explore_dfs(
                factory,
                max_schedules=opts["schedules"],
                max_depth=opts["max_depth"],
                max_steps=opts["max_steps"],
                fingerprints=opts["fingerprints"],
                sleep_sets=opts["sleep_sets"],
                plan=plan,
                target=target,
            )
        else:
            report = explore_walk(
                factory,
                n_schedules=opts["schedules"],
                seed=opts["seed"],
                max_steps=opts["max_steps"],
                plan=plan,
                target=target,
            )
        report.export_metrics()
        print(report.summary())
        reports.append(report)
        for i, violation in enumerate(report.violations):
            any_violation = True
            path = (
                Path(opts["artifact_dir"])
                / f"{target}-{report.strategy}-{violation.kind}-{i}.json"
            )
            save_artifact(violation, path)
            print(f"  artifact: {path}")

    if opts["json"]:
        path = Path(opts["json"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps([r.to_dict() for r in reports], indent=2) + "\n"
        )
        print(f"report JSON: {path}")

    if opts["expect_violation"]:
        if not any_violation:
            print("expected a violation but every target held")
            return 1
        from repro.explore.report import load_artifact, replay_artifact

        # The conviction must also replay deterministically.
        for report in reports:
            for i, violation in enumerate(report.violations):
                path = (
                    Path(opts["artifact_dir"])
                    / f"{violation.target}-{report.strategy}"
                    f"-{violation.kind}-{i}.json"
                )
                reproduced, outcome = replay_artifact(
                    load_artifact(path), max_steps=opts["max_steps"]
                )
                print(
                    f"  replay {path.name}: {outcome.describe()} "
                    f"reproduced={'yes' if reproduced else 'NO'}"
                )
                if not reproduced:
                    return 1
        return 0
    return 1 if any_violation else 0
