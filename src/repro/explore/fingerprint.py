"""State fingerprinting for schedule-space pruning.

A scheduler-visible *state* of a cooperative run is the pair (all
address spaces, all channel queues): that is exactly the data Theorem 1
quantifies over, and two run prefixes that reach the same state have
identical futures under identical scheduling decisions.  The explorer
therefore hashes this pair at every decision point and prunes a branch
node whose state it has already expanded — stateful model checking on
top of the stateless re-execution substrate.

The fingerprint is a sha256 over the canonical byte encoding of
:mod:`repro.theory.determinacy` (the same canonicalisation behind
``state_digest``), covering per-rank stores plus, per channel, the
cumulative send/receive counters and the queued values oldest-first.
The counters matter: two states with equal queues but different history
lengths differ in how many actions each rank still has ahead, so they
must not be merged.

Soundness caveat (documented, deliberate): variables a body keeps in
Python locals rather than its store are invisible to the fingerprint,
so pruning is exact only for bodies whose scheduler-relevant state
lives in stores and channels — true of every system built by this
library's refinement pipeline, which round-trips all state through
:class:`~repro.refinement.store.AddressSpace` stores.  The explorer
exposes a switch to disable pruning for foreign bodies.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.theory.determinacy import _canonical_bytes

__all__ = ["state_fingerprint"]


def state_fingerprint(
    stores: list[dict[str, Any]],
    channels: Mapping[str, Any],
) -> str:
    """Canonical hex digest of a mid-run scheduler-visible state."""
    out: list[bytes] = []
    for store in stores:
        _canonical_bytes(store, out)
    for name in sorted(channels):
        ch = channels[name]
        out.append(name.encode())
        out.append(f"{ch.sends}:{ch.receives}".encode())
        _canonical_bytes(list(ch.snapshot()), out)
    return hashlib.sha256(b"\x00".join(out)).hexdigest()
