"""Declarative fault injection: kills and delivery delays.

Theorem 1 promises determinacy over *every* maximal interleaving; the
fault plans here stress the two ways a real deployment leaves that
space and the one way it doesn't:

* **kill faults** (:class:`KillFault`) — rank ``r`` dies before its
  ``k``-th scheduler-visible action.  Inside the cooperative/threaded
  engines the kill is a planted :class:`InjectedKill` exception; against
  the multiprocess/socket engines (``real_kill=True``) it is a genuine
  ``SIGKILL`` of the worker process, exercising the crash-reaping path
  end to end.  The contract under a kill plan: every explored schedule
  yields either the bitwise-identical fault-free final state (the
  victim had already finished its actions) or a clean
  :class:`~repro.errors.ProcessFailedError` carrying rank + step +
  fault id — never a hang, never a corrupted result.
* **delay faults** (:class:`DelayFault`) — the ``i``-th delivery on a
  channel is held back.  A delay *within slack* is just another legal
  interleaving, so Theorem 1 predicts bitwise-identical results; under
  the cooperative engine the hold is a scheduling mask
  (:class:`FaultedPolicy` refuses to grant the reader's receive for
  ``hold`` decisions), and under the process engines it is a real-time
  sender-side sleep (``real_delay=True``) indistinguishable from
  OS-scheduler or TCP-slack jitter.

:func:`apply_faults` rewrites a system with fault-wrapped bodies; the
wrapper (:class:`FaultingBody`) is a module-level class so it crosses
the spawn/socket pickling boundary, and the planted exception stamps
``inject_step`` / ``fault_id`` attributes that every engine's
:func:`~repro.errors.wrap_process_failure` copies onto the raised
:class:`~repro.errors.ProcessFailedError`.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.runtime.process import ProcessSpec
from repro.runtime.schedulers import PendingAction, SchedulingPolicy
from repro.runtime.system import System

__all__ = [
    "KillFault",
    "DelayFault",
    "FaultPlan",
    "InjectedKill",
    "FaultingBody",
    "FaultedPolicy",
    "apply_faults",
    "parse_fault_plan",
]


class InjectedKill(ReproError):
    """The planted death of a process body (simulated kill fault).

    Carries ``inject_step`` and ``fault_id`` so the engine-level
    :class:`~repro.errors.ProcessFailedError` reports full fault
    provenance, including across the pipe/socket wire.
    """

    def __init__(self, rank: int, step: int, fault_id: str):
        super().__init__(
            f"injected kill of rank {rank} before its action {step} "
            f"({fault_id})"
        )
        self.rank = rank
        self.inject_step = step
        self.fault_id = fault_id

    def __reduce__(self):
        return (InjectedKill, (self.rank, self.inject_step, self.fault_id))


@dataclass(frozen=True)
class KillFault:
    """Kill ``rank`` immediately before its ``step``-th action (0-based,
    counting that rank's sends + receives + steps).  A rank that
    finishes earlier never triggers the fault — the run then completes
    with the fault-free final state, which is the expected benign
    outcome."""

    rank: int
    step: int

    @property
    def fault_id(self) -> str:
        return f"kill:{self.rank}@{self.step}"


@dataclass(frozen=True)
class DelayFault:
    """Hold back the ``index``-th delivery (0-based receive sequence) on
    ``channel``.  ``hold`` is the number of scheduling decisions the
    cooperative engine masks the grant for; ``delay_s`` is the
    real-time sender-side sleep used on the process engines."""

    channel: str
    index: int
    hold: int = 4
    delay_s: float = 0.05

    @property
    def fault_id(self) -> str:
        return f"delay:{self.channel}#{self.index}"


@dataclass(frozen=True)
class FaultPlan:
    """A declarative set of faults applied to one run."""

    kills: tuple[KillFault, ...] = ()
    delays: tuple[DelayFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.kills or self.delays)

    def describe(self) -> str:
        ids = [f.fault_id for f in self.kills + self.delays]
        return ",".join(ids) if ids else "none"

    def kill_for(self, rank: int) -> KillFault | None:
        for fault in self.kills:
            if fault.rank == rank:
                return fault
        return None

    def to_dict(self) -> dict:
        return {
            "kills": [
                {"rank": f.rank, "step": f.step} for f in self.kills
            ],
            "delays": [
                {
                    "channel": f.channel,
                    "index": f.index,
                    "hold": f.hold,
                    "delay_s": f.delay_s,
                }
                for f in self.delays
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            kills=tuple(
                KillFault(int(k["rank"]), int(k["step"]))
                for k in data.get("kills", ())
            ),
            delays=tuple(
                DelayFault(
                    str(d["channel"]),
                    int(d["index"]),
                    int(d.get("hold", 4)),
                    float(d.get("delay_s", 0.05)),
                )
                for d in data.get("delays", ())
            ),
        )


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a CLI fault spec: comma-separated ``kill:RANK@STEP`` and
    ``delay:CHANNEL#INDEX[~HOLD]`` entries, e.g.
    ``kill:1@3,delay:c0#0~6``."""
    kills: list[KillFault] = []
    delays: list[DelayFault] = []
    for part in filter(None, (p.strip() for p in spec.split(","))):
        kind, _, rest = part.partition(":")
        try:
            if kind == "kill":
                rank, _, step = rest.partition("@")
                kills.append(KillFault(int(rank), int(step)))
            elif kind == "delay":
                channel, _, idx = rest.partition("#")
                if not channel or not idx:
                    raise ValueError(part)
                hold = 4
                if "~" in idx:
                    idx, _, hold_s = idx.partition("~")
                    hold = int(hold_s)
                delays.append(DelayFault(channel, int(idx), hold))
            else:
                raise ValueError(part)
        except ValueError as exc:
            raise ReproError(
                f"bad fault spec {part!r} (expected kill:RANK@STEP or "
                "delay:CHANNEL#INDEX[~HOLD])"
            ) from exc
    return FaultPlan(kills=tuple(kills), delays=tuple(delays))


class _FaultContext:
    """Context proxy that counts a rank's actions and fires its faults.

    Wraps the engine-provided :class:`~repro.runtime.context
    .ProcessContext`, forwarding everything while (a) raising/executing
    the kill fault before the configured action index and (b) sleeping
    before delayed sends when real-time delays are requested.
    """

    def __init__(
        self,
        inner,
        kill: KillFault | None,
        delays: dict[tuple[str, int], DelayFault],
        real_kill: bool,
        real_delay: bool,
    ):
        self._inner = inner
        self._kill = kill
        self._delays = delays
        self._real_kill = real_kill
        self._real_delay = real_delay
        self._count = 0
        self._send_seq: dict[str, int] = {}

    def _tick(self) -> None:
        if self._kill is not None and self._count == self._kill.step:
            if self._real_kill:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedKill(
                self._inner.rank, self._kill.step, self._kill.fault_id
            )
        self._count += 1

    def send(self, channel, value) -> None:
        self._tick()
        name = channel if isinstance(channel, str) else channel.name
        seq = self._send_seq.get(name, 0)
        self._send_seq[name] = seq + 1
        fault = self._delays.get((name, seq))
        if fault is not None and self._real_delay:
            time.sleep(fault.delay_s)
        self._inner.send(channel, value)

    def recv(self, channel) -> Any:
        self._tick()
        return self._inner.recv(channel)

    def step(self, label: str = "compute") -> None:
        self._tick()
        self._inner.step(label)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class FaultingBody:
    """Picklable body wrapper applying one rank's share of a fault plan.

    A module-level class (not a closure) so it pickles by reference
    across the multiprocess/socket engines' spawn boundary; the wrapped
    ``body`` itself travels by value through the closure pickler.
    """

    def __init__(
        self,
        body,
        kill: KillFault | None,
        delays: tuple[DelayFault, ...],
        real_kill: bool,
        real_delay: bool,
    ):
        self.body = body
        self.kill = kill
        self.delays = delays
        self.real_kill = real_kill
        self.real_delay = real_delay

    def __call__(self, ctx):
        proxy = _FaultContext(
            ctx,
            self.kill,
            {(d.channel, d.index): d for d in self.delays},
            self.real_kill,
            self.real_delay,
        )
        return self.body(proxy)


def apply_faults(
    system: System,
    plan: FaultPlan,
    real_kill: bool = False,
    real_delay: bool = False,
) -> System:
    """A new system whose bodies execute under ``plan``.

    ``real_kill=True`` turns kill faults into genuine ``SIGKILL``s of
    the executing process — only meaningful on the multiprocess/socket
    engines, where each rank is its own OS process.  ``real_delay=True``
    turns delay faults into sender-side real-time sleeps (process
    engines); leave it off under the cooperative engine, where delays
    are scheduling masks applied by :class:`FaultedPolicy` instead.
    """
    for fault in plan.kills:
        if not 0 <= fault.rank < system.nprocs:
            raise ReproError(
                f"{fault.fault_id}: rank {fault.rank} does not exist "
                f"(nprocs={system.nprocs})"
            )
    names = {spec.name for spec in system.channel_specs}
    for fault in plan.delays:
        if fault.channel not in names:
            raise ReproError(
                f"{fault.fault_id}: channel {fault.channel!r} does not "
                f"exist (channels: {sorted(names)})"
            )
    writer_of = {spec.name: spec.writer for spec in system.channel_specs}
    processes = []
    for p in system.processes:
        delays = tuple(
            d for d in plan.delays if writer_of[d.channel] == p.rank
        )
        kill = plan.kill_for(p.rank)
        body = p.body
        if kill is not None or (delays and real_delay):
            body = FaultingBody(p.body, kill, delays, real_kill, real_delay)
        processes.append(
            ProcessSpec(p.rank, body, store=p.store, name=p.name)
        )
    return System(processes, system.channel_specs)


class FaultedPolicy(SchedulingPolicy):
    """Cooperative-engine delay faults: mask the delayed delivery.

    Wraps ``inner``; when the reader's receive of a delayed delivery is
    enabled, it is withheld from ``inner`` for up to ``hold`` scheduling
    decisions.  Two safety rules keep the masked run a legal maximal
    interleaving (so Theorem 1 still applies verbatim): the mask never
    empties the enabled set (a delay is within-slack, not a block), and
    it expires after ``hold`` decisions regardless.
    """

    def __init__(self, inner: SchedulingPolicy, delays):
        self.inner = inner
        self._delays = {(d.channel, d.index): d for d in delays}
        self._held: dict[tuple[str, int], int] = {}
        self._channels = {}

    def reset(self) -> None:
        self.inner.reset()
        self._held = {}
        self._channels = {}

    def observe_state(self, stores, channels) -> None:
        self._channels = channels
        self.inner.observe_state(stores, channels)

    def choose(self, enabled: list[PendingAction]) -> int:
        keep: list[PendingAction] = []
        dropped: list[tuple[str, int]] = []
        for action in enabled:
            if action.kind == "recv" and action.channel is not None:
                ch = self._channels.get(action.channel)
                if ch is not None:
                    key = (action.channel, ch.receives)
                    fault = self._delays.get(key)
                    if (
                        fault is not None
                        and self._held.get(key, 0) < fault.hold
                    ):
                        dropped.append(key)
                        continue
            keep.append(action)
        if not keep:
            keep = list(enabled)
        else:
            for key in dropped:
                self._held[key] = self._held.get(key, 0) + 1
        return self.inner.choose(keep)
