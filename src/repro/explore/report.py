"""Exploration outcomes, reports, and replayable violation artifacts.

Every controlled run is reduced to a :class:`ScheduleOutcome` — the
schedule executed plus one of four terminal kinds:

* ``ok`` — completed; carries the final-state digest;
* ``deadlock`` — raised :class:`~repro.errors.DeadlockError`; carries
  the structured cycle report's description;
* ``crash`` — raised :class:`~repro.errors.ProcessFailedError`; carries
  rank and, for injected faults, step + fault id;
* ``bound`` — hit the ``max_steps`` action bound (the explorer's
  no-hang guarantee: a run that cannot terminate is convicted, not
  waited on).

An :class:`ExplorationReport` aggregates outcomes with search-pruning
statistics and Foata-frontier coverage; any outcome that breaks the
Theorem 1 contract becomes a :class:`Violation` with a **minimal
failing schedule prefix**: the shortest forced prefix whose
deterministic (min-rank) completion still fails.  Violations serialise
to JSON artifacts that ``python -m repro explore --replay`` re-executes
deterministically.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import (
    DeadlockError,
    ProcessFailedError,
    ScheduleError,
)
from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.schedulers import SchedulingPolicy
from repro.runtime.system import System
from repro.theory.determinacy import state_digest

__all__ = [
    "ScheduleOutcome",
    "Violation",
    "ExplorationReport",
    "run_controlled",
    "minimize_prefix",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
]


@dataclass
class ScheduleOutcome:
    """One controlled run, classified."""

    kind: str  # 'ok' | 'deadlock' | 'crash' | 'bound'
    schedule: tuple[int, ...]
    digest: str | None = None
    detail: str = ""
    rank: int | None = None
    step: int | None = None
    fault_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    def describe(self) -> str:
        if self.kind == "ok":
            return f"ok digest={(self.digest or '')[:12]}"
        bits = [self.kind]
        if self.rank is not None:
            bits.append(f"rank={self.rank}")
        if self.fault_id is not None:
            bits.append(f"fault={self.fault_id}")
        if self.detail:
            bits.append(self.detail)
        return " ".join(bits)


def run_controlled(
    system: System,
    policy: SchedulingPolicy,
    controller,
    max_steps: int | None = None,
) -> ScheduleOutcome:
    """Execute one run under ``policy`` and classify the outcome.

    ``controller`` is the :class:`~repro.explore.controller
    .ScheduleController` whose log names the schedule (``policy`` is
    either the controller itself or a fault wrapper around it).
    """
    try:
        run = CooperativeEngine(
            policy, trace=False, max_actions=max_steps
        ).run(system)
    except DeadlockError as exc:
        report = getattr(exc.result, "deadlock", None)
        return ScheduleOutcome(
            kind="deadlock",
            schedule=tuple(controller.schedule),
            detail=report.describe() if report is not None else str(exc),
        )
    except ProcessFailedError as exc:
        return ScheduleOutcome(
            kind="crash",
            schedule=tuple(controller.schedule),
            detail=repr(exc.original),
            rank=exc.rank,
            step=exc.step,
            fault_id=exc.fault_id,
        )
    except ScheduleError as exc:
        return ScheduleOutcome(
            kind="bound",
            schedule=tuple(controller.schedule),
            detail=str(exc),
        )
    return ScheduleOutcome(
        kind="ok",
        schedule=tuple(controller.schedule),
        digest=state_digest(run),
    )


@dataclass
class Violation:
    """A schedule on which the Theorem 1 contract failed, replayably."""

    kind: str  # 'nondeterminate' | 'deadlock' | 'crash' | 'hang-bound'
    target: str
    strategy: str
    schedule: list[int]
    #: minimal forced prefix whose deterministic completion still fails
    prefix: list[int]
    expected_digest: str | None
    got_digest: str | None = None
    detail: str = ""
    faults: dict | None = None

    def to_dict(self) -> dict:
        return {
            "format": "repro.explore.violation/v1",
            "kind": self.kind,
            "target": self.target,
            "strategy": self.strategy,
            "schedule": list(self.schedule),
            "prefix": list(self.prefix),
            "expected_digest": self.expected_digest,
            "got_digest": self.got_digest,
            "detail": self.detail,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            kind=data["kind"],
            target=data["target"],
            strategy=data.get("strategy", "?"),
            schedule=[int(r) for r in data["schedule"]],
            prefix=[int(r) for r in data["prefix"]],
            expected_digest=data.get("expected_digest"),
            got_digest=data.get("got_digest"),
            detail=data.get("detail", ""),
            faults=data.get("faults"),
        )

    def describe(self) -> str:
        return (
            f"{self.kind} on {self.target}: minimal prefix "
            f"{self.prefix} (of a {len(self.schedule)}-action "
            f"schedule) — {self.detail or 'final state diverges'}"
        )


def minimize_prefix(
    run_one: Callable[[list[int]], ScheduleOutcome],
    schedule: Sequence[int],
    failed: Callable[[ScheduleOutcome], bool],
) -> tuple[list[int], ScheduleOutcome]:
    """Shortest prefix of ``schedule`` whose deterministic completion
    still fails.

    ``run_one(prefix)`` re-executes the system forced through ``prefix``
    and completed min-rank; ``failed`` judges the outcome.  Linear scan
    from the empty prefix: the first failing length is minimal in the
    forced-prefix sense (shorter prefixes provably complete cleanly
    under the deterministic tail).  The full schedule reproduces the
    original failure, so the scan always terminates with a witness.
    """
    for cut in range(len(schedule) + 1):
        prefix = list(schedule[:cut])
        outcome = run_one(prefix)
        if failed(outcome):
            return prefix, outcome
    return list(schedule), run_one(list(schedule))


@dataclass
class ExplorationReport:
    """Aggregated statistics of one exploration."""

    target: str
    strategy: str
    faults: str = "none"
    schedules: int = 0  # distinct complete schedules visited
    runs: int = 0  # engine executions (including replays/minimisation)
    pruned_sleep: int = 0
    pruned_fingerprint: int = 0
    states_fingerprinted: int = 0
    digests: dict[str, int] = field(default_factory=dict)
    deadlocks: int = 0
    crashes: int = 0
    bounds: int = 0
    #: distinct first-action ranks over all visited schedules
    frontier_first: set[int] = field(default_factory=set)
    #: width of the Foata layer-0 frontier (0 = not computed)
    frontier_width: int = 0
    violations: list[Violation] = field(default_factory=list)
    baseline_digest: str | None = None
    wall_s: float = 0.0
    _started: float = field(default_factory=time.perf_counter, repr=False)

    def record(self, outcome: ScheduleOutcome) -> None:
        """Fold one *distinct* schedule's outcome into the stats."""
        self.schedules += 1
        if outcome.schedule:
            self.frontier_first.add(outcome.schedule[0])
        if outcome.kind == "ok" and outcome.digest is not None:
            self.digests[outcome.digest] = (
                self.digests.get(outcome.digest, 0) + 1
            )
        elif outcome.kind == "deadlock":
            self.deadlocks += 1
        elif outcome.kind == "crash":
            self.crashes += 1
        elif outcome.kind == "bound":
            self.bounds += 1

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._started

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def frontier_coverage(self) -> float | None:
        """Distinct first actions / Foata frontier width, in [0, 1]."""
        if not self.frontier_width:
            return None
        return min(1.0, len(self.frontier_first) / self.frontier_width)

    def summary(self) -> str:
        cov = self.frontier_coverage
        lines = [
            f"explore[{self.strategy}] {self.target}: "
            f"{self.schedules} schedules "
            f"({self.runs} runs, {self.wall_s:.2f}s), "
            f"{len(self.digests)} distinct final state(s), "
            f"faults={self.faults}",
            f"  pruned: {self.pruned_sleep} sleep-set, "
            f"{self.pruned_fingerprint} fingerprint "
            f"({self.states_fingerprinted} states hashed); "
            f"deadlocks={self.deadlocks} crashes={self.crashes} "
            f"bound-hits={self.bounds}",
            "  frontier coverage: "
            + (
                f"{len(self.frontier_first)}/{self.frontier_width} "
                f"({cov:.0%})"
                if cov is not None
                else "n/a"
            ),
        ]
        if self.violations:
            lines.append(f"  VIOLATIONS: {len(self.violations)}")
            for violation in self.violations:
                lines.append(f"    {violation.describe()}")
        else:
            lines.append(
                "  contract holds on every explored schedule"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "strategy": self.strategy,
            "faults": self.faults,
            "schedules": self.schedules,
            "runs": self.runs,
            "pruned_sleep": self.pruned_sleep,
            "pruned_fingerprint": self.pruned_fingerprint,
            "states_fingerprinted": self.states_fingerprinted,
            "distinct_digests": len(self.digests),
            "deadlocks": self.deadlocks,
            "crashes": self.crashes,
            "bound_hits": self.bounds,
            "frontier_first": sorted(self.frontier_first),
            "frontier_width": self.frontier_width,
            "frontier_coverage": self.frontier_coverage,
            "baseline_digest": self.baseline_digest,
            "violations": [v.to_dict() for v in self.violations],
            "wall_s": round(self.wall_s, 4),
        }

    def export_metrics(self, registry=None):
        """Publish the exploration stats through :mod:`repro.obs`.

        Fills (and returns) a
        :class:`~repro.obs.metrics.MetricsRegistry` with
        ``explore.*`` counters/gauges — the same registry surface every
        other subsystem reports through, so dashboards and the JSONL
        exporters pick exploration runs up unchanged.
        """
        from repro.obs import MetricsRegistry

        registry = registry or MetricsRegistry()
        registry.counter("explore.schedules").inc(self.schedules)
        registry.counter("explore.runs").inc(self.runs)
        registry.counter("explore.pruned_sleep").inc(self.pruned_sleep)
        registry.counter("explore.pruned_fingerprint").inc(
            self.pruned_fingerprint
        )
        registry.counter("explore.deadlocks").inc(self.deadlocks)
        registry.counter("explore.crashes").inc(self.crashes)
        registry.counter("explore.violations").inc(len(self.violations))
        registry.gauge("explore.distinct_states").set(len(self.digests))
        coverage = self.frontier_coverage
        if coverage is not None:
            registry.gauge("explore.frontier_coverage").set(coverage)
        return registry


# ---------------------------------------------------------------------------
# Violation artifacts: dump / load / replay
# ---------------------------------------------------------------------------


def save_artifact(violation: Violation, path: str | Path) -> Path:
    """Write a violation as a replayable JSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(violation.to_dict(), indent=2) + "\n")
    return path


def load_artifact(path: str | Path) -> Violation:
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro.explore.violation/v1":
        raise ValueError(
            f"{path}: not a repro.explore violation artifact"
        )
    return Violation.from_dict(data)


def replay_artifact(
    violation: Violation, max_steps: int | None = None
) -> tuple[bool, ScheduleOutcome]:
    """Re-execute a violation's minimal prefix deterministically.

    Rebuilds the named target (and its recorded fault plan, if any),
    forces the minimal prefix, completes min-rank, and reports whether
    the failure reproduced: for ``nondeterminate`` violations, a final
    state that differs from the expected digest; for the other kinds, a
    matching terminal outcome.
    """
    from repro.explore.controller import ScheduleController
    from repro.explore.faults import FaultedPolicy, FaultPlan, apply_faults
    from repro.explore.fixtures import build_target

    system = build_target(violation.target)()
    plan = (
        FaultPlan.from_dict(violation.faults)
        if violation.faults
        else FaultPlan()
    )
    if plan:
        system = apply_faults(system, plan)
    controller = ScheduleController(violation.prefix)
    policy = (
        FaultedPolicy(controller, plan.delays) if plan.delays else controller
    )
    outcome = run_controlled(system, policy, controller, max_steps)
    if violation.kind == "nondeterminate":
        reproduced = (
            outcome.kind != "ok"
            or outcome.digest != violation.expected_digest
        )
    else:
        kind_map = {"hang-bound": "bound"}
        reproduced = outcome.kind == kind_map.get(
            violation.kind, violation.kind
        )
    return reproduced, outcome
