"""``python -m repro`` — run the paper-reproduction experiments."""

from repro.cli import main

raise SystemExit(main())
