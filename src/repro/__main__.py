"""``python -m repro`` — run the paper-reproduction experiments.

The ``__main__`` guard is load-bearing: the multiprocess engine's
``spawn`` workers re-import the parent's main module under the name
``__mp_main__``, and must not re-enter the CLI when they do.
"""

if __name__ == "__main__":
    from repro.cli import main

    raise SystemExit(main())
