"""Floating-point summation analysis.

The paper's far-field experiment failed to reproduce sequential results
because the parallelization re-ordered a large double sum, and
"floating-point arithmetic is not truly associative"; footnote 2 adds
that the summands "ranged over many orders of magnitude, so it is not
surprising that the result of the summation was markedly affected by
the order of summation".

This package quantifies both observations (experiment E2) and supplies
the "more sophisticated strategy" the paper did not pursue —
compensated (Kahan/Neumaier) summation, which makes the parallel
reduction agree with the sequential sum to within one rounding of the
exact value, restoring reproducibility without fixing the order.
"""

from repro.numerics.summation import (
    exact_sum,
    kahan_sum,
    naive_sum,
    neumaier_sum,
    pairwise_sum,
    partitioned_sum,
    partitioned_kahan_sum,
    sorted_sum,
)
from repro.numerics.associativity import (
    DynamicRange,
    ReorderingReport,
    dynamic_range,
    reordering_report,
    wide_dynamic_range_values,
)

__all__ = [
    "naive_sum",
    "pairwise_sum",
    "kahan_sum",
    "neumaier_sum",
    "sorted_sum",
    "partitioned_sum",
    "partitioned_kahan_sum",
    "exact_sum",
    "dynamic_range",
    "DynamicRange",
    "reordering_report",
    "ReorderingReport",
    "wide_dynamic_range_values",
]
