"""Summation algorithms with controlled evaluation order.

Every function here takes a 1-D array of float64 summands and returns a
float64 (except :func:`exact_sum`, the correctly-rounded reference).
The point is *order control*: :func:`partitioned_sum` reproduces exactly
what the paper's parallelization did to the far-field double sum —
contiguous per-process partial sums combined in process order — so the
sequential-vs-parallel discrepancy can be studied in isolation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "naive_sum",
    "pairwise_sum",
    "kahan_sum",
    "neumaier_sum",
    "sorted_sum",
    "partitioned_sum",
    "partitioned_kahan_sum",
    "exact_sum",
]


def _as1d(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64).ravel()
    return arr


def exact_sum(values) -> float:
    """Correctly-rounded sum (``math.fsum``): the ground truth."""
    return math.fsum(_as1d(values).tolist())


def naive_sum(values) -> float:
    """Left-to-right recursive summation — the sequential program's
    natural order."""
    acc = np.float64(0.0)
    for v in _as1d(values):
        acc = acc + v
    return float(acc)


def pairwise_sum(values) -> float:
    """Balanced pairwise (cascade) summation — O(eps log n) error."""
    arr = _as1d(values)

    def rec(a: np.ndarray) -> np.float64:
        n = len(a)
        if n == 0:
            return np.float64(0.0)
        if n == 1:
            return np.float64(a[0])
        mid = n // 2
        return rec(a[:mid]) + rec(a[mid:])

    return float(rec(arr))


def kahan_sum(values) -> float:
    """Kahan compensated summation — O(eps) error independent of n
    (for sums without catastrophic intermediate cancellation)."""
    acc = np.float64(0.0)
    comp = np.float64(0.0)
    for v in _as1d(values):
        y = v - comp
        t = acc + y
        comp = (t - acc) - y
        acc = t
    return float(acc)


def neumaier_sum(values) -> float:
    """Neumaier's improved Kahan variant (robust when a summand exceeds
    the running total)."""
    arr = _as1d(values)
    if len(arr) == 0:
        return 0.0
    acc = np.float64(arr[0])
    comp = np.float64(0.0)
    for v in arr[1:]:
        t = acc + v
        if abs(acc) >= abs(v):
            comp += (acc - t) + v
        else:
            comp += (v - t) + acc
        acc = t
    return float(acc + comp)


def sorted_sum(values, ascending_magnitude: bool = True) -> float:
    """Naive summation after sorting by |value| (ascending magnitude is
    the classically better order)."""
    arr = _as1d(values)
    order = np.argsort(np.abs(arr))
    if not ascending_magnitude:
        order = order[::-1]
    return naive_sum(arr[order])


def _partition_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    base, rem = divmod(n, parts)
    bounds = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < rem else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def partitioned_sum(values, parts: int) -> float:
    """The parallel reduction's order: contiguous blocks summed
    left-to-right locally, partials combined in block (process) order.

    ``partitioned_sum(x, 1) == naive_sum(x)`` exactly; for ``parts > 1``
    the result is a pure reordering of the same additions — equal as a
    real-number sum, not necessarily as floats.
    """
    arr = _as1d(values)
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    partials = [
        naive_sum(arr[a:b]) for a, b in _partition_bounds(len(arr), parts)
    ]
    return naive_sum(partials)


def partitioned_kahan_sum(values, parts: int) -> float:
    """The 'more sophisticated strategy': compensated local sums and a
    compensated combine.  Near-exact regardless of the partitioning,
    hence reproducible across process counts."""
    arr = _as1d(values)
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    partials = [
        kahan_sum(arr[a:b]) for a, b in _partition_bounds(len(arr), parts)
    ]
    return kahan_sum(partials)
