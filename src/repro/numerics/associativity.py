"""Reordering-error measurement (experiment E2's analysis half).

Tools to quantify the two observations of the paper's section 4.5:

* :func:`dynamic_range` — footnote 2's diagnosis: the far-field
  summands "ranged over many orders of magnitude";
* :func:`reordering_report` — the finding itself: summing the same
  values in per-process-partial order gives results that differ from
  the sequential order, by an amount that grows with the dynamic range
  and the condition number of the sum; compensated summation collapses
  the differences to (at most) one ulp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.summation import (
    exact_sum,
    naive_sum,
    partitioned_kahan_sum,
    partitioned_sum,
)
from repro.util import rng_from

__all__ = [
    "DynamicRange",
    "dynamic_range",
    "ReorderingReport",
    "reordering_report",
    "wide_dynamic_range_values",
]


@dataclass(frozen=True)
class DynamicRange:
    """Magnitude statistics of a set of summands."""

    smallest: float  # smallest nonzero |value|
    largest: float
    orders_of_magnitude: float  # log10(largest / smallest)
    condition: float  # sum|x| / |sum x| — sensitivity to reordering

    def describe(self) -> str:
        return (
            f"|values| in [{self.smallest:.3e}, {self.largest:.3e}] "
            f"({self.orders_of_magnitude:.1f} orders of magnitude), "
            f"condition number {self.condition:.3e}"
        )


def dynamic_range(values) -> DynamicRange:
    """Magnitude spread and condition number of a summand set."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    nonzero = np.abs(arr[arr != 0.0])
    if len(nonzero) == 0:
        return DynamicRange(0.0, 0.0, 0.0, 0.0)
    smallest = float(nonzero.min())
    largest = float(nonzero.max())
    total = exact_sum(arr)
    abs_total = float(np.sum(nonzero))
    condition = abs_total / abs(total) if total != 0.0 else float("inf")
    return DynamicRange(
        smallest=smallest,
        largest=largest,
        orders_of_magnitude=float(np.log10(largest / smallest)),
        condition=condition,
    )


@dataclass
class ReorderingReport:
    """Sequential-vs-partitioned summation across process counts."""

    exact: float
    sequential: float
    by_parts: dict[int, float] = field(default_factory=dict)
    by_parts_kahan: dict[int, float] = field(default_factory=dict)
    range_info: DynamicRange | None = None

    def rel_error(self, value: float) -> float:
        scale = abs(self.exact) if self.exact != 0.0 else 1.0
        return abs(value - self.exact) / scale

    def max_reordering_discrepancy(self) -> float:
        """Largest |partitioned - sequential| over process counts,
        relative to the exact sum."""
        scale = abs(self.exact) if self.exact != 0.0 else 1.0
        return max(
            (abs(v - self.sequential) / scale for v in self.by_parts.values()),
            default=0.0,
        )

    def max_kahan_discrepancy(self) -> float:
        scale = abs(self.exact) if self.exact != 0.0 else 1.0
        vals = list(self.by_parts_kahan.values())
        return max(
            (abs(a - b) / scale for a in vals for b in vals), default=0.0
        )

    def describe(self) -> str:
        lines = []
        if self.range_info is not None:
            lines.append(self.range_info.describe())
        lines.append(f"exact sum        : {self.exact:+.17e}")
        lines.append(
            f"sequential order : {self.sequential:+.17e} "
            f"(rel err {self.rel_error(self.sequential):.2e})"
        )
        for parts in sorted(self.by_parts):
            v = self.by_parts[parts]
            delta = v - self.sequential
            lines.append(
                f"P={parts:<3d} partials   : {v:+.17e} "
                f"(vs sequential {delta:+.2e}, rel err {self.rel_error(v):.2e})"
            )
        for parts in sorted(self.by_parts_kahan):
            v = self.by_parts_kahan[parts]
            lines.append(
                f"P={parts:<3d} compensated: {v:+.17e} "
                f"(rel err {self.rel_error(v):.2e})"
            )
        return "\n".join(lines)


def reordering_report(values, parts_list=(1, 2, 4, 8, 16)) -> ReorderingReport:
    """Compare sequential, partitioned, and compensated summation."""
    report = ReorderingReport(
        exact=exact_sum(values),
        sequential=naive_sum(values),
        range_info=dynamic_range(values),
    )
    for parts in parts_list:
        report.by_parts[parts] = partitioned_sum(values, parts)
        report.by_parts_kahan[parts] = partitioned_kahan_sum(values, parts)
    return report


def wide_dynamic_range_values(
    n: int = 4096, orders: float = 12.0, seed: int | None = 0
) -> np.ndarray:
    """Synthetic summands spanning ``orders`` orders of magnitude with
    mixed signs — a controlled stand-in for the far-field summands of
    footnote 2."""
    rng = rng_from(seed)
    exponents = rng.uniform(-orders / 2.0, orders / 2.0, size=n)
    signs = rng.choice([-1.0, 1.0], size=n)
    mantissas = rng.uniform(1.0, 10.0, size=n)
    return signs * mantissas * 10.0**exponents
