"""Parallelization plans — section 4.4 step 1-2 as a data structure.

Before any code is transformed, the methodology has the developer
decide, guided by the archetype's documentation:

1. which variables are **distributed** (partitioned among grid
   processes) and which **duplicated** (a synchronised copy in every
   process); which distributed variables carry a **ghost boundary**;
2. which parts of the computation run in the **host** process and which
   in the **grid** processes; which grid computation is distributed
   over the data and which duplicated; and which parts differ by
   process (e.g. physical-boundary cells).

A :class:`ParallelizationPlan` records those decisions and validates
their consistency (ghosts only on distributed variables, host
computations only when a host exists, every referenced variable
classified).  The FDTD parallelizations build their plans explicitly,
so the plan doubles as executable documentation — and experiment E7
counts its entries as part of the effort metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PlanError

__all__ = [
    "VariableClass",
    "Placement",
    "ComputationClass",
    "VariableSpec",
    "ComputationSpec",
    "ParallelizationPlan",
]


class VariableClass(enum.Enum):
    """How a variable's storage is mapped onto processes."""

    DISTRIBUTED = "distributed"  # partitioned into local sections
    DUPLICATED = "duplicated"  # synchronised copy everywhere


class Placement(enum.Enum):
    """Where a computation runs."""

    HOST = "host"
    GRID = "grid"


class ComputationClass(enum.Enum):
    """How a grid computation is divided among grid processes."""

    DISTRIBUTED = "distributed"  # each process computes its section
    DUPLICATED = "duplicated"  # every process computes the same thing


@dataclass(frozen=True)
class VariableSpec:
    """Classification of one program variable."""

    name: str
    vclass: VariableClass
    ghosted: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.ghosted and self.vclass is not VariableClass.DISTRIBUTED:
            raise PlanError(
                f"variable {self.name!r}: only distributed variables can "
                "carry a ghost boundary"
            )


@dataclass(frozen=True)
class ComputationSpec:
    """Classification of one piece of the computation."""

    name: str
    placement: Placement
    cclass: ComputationClass = ComputationClass.DISTRIBUTED
    boundary_special: bool = False  # computed differently at grid edges
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.placement is Placement.HOST and self.cclass is (
            ComputationClass.DISTRIBUTED
        ):
            raise PlanError(
                f"computation {self.name!r}: host computations cannot be "
                "distributed (there is one host)"
            )


@dataclass
class ParallelizationPlan:
    """The complete variable + computation classification for a program."""

    name: str
    archetype: str = "mesh"
    uses_host: bool = True
    variables: dict[str, VariableSpec] = field(default_factory=dict)
    computations: list[ComputationSpec] = field(default_factory=list)

    # -- builder ---------------------------------------------------------------

    def distribute(
        self, name: str, ghosted: bool = False, description: str = ""
    ) -> "ParallelizationPlan":
        self._add_var(
            VariableSpec(name, VariableClass.DISTRIBUTED, ghosted, description)
        )
        return self

    def duplicate(self, name: str, description: str = "") -> "ParallelizationPlan":
        self._add_var(
            VariableSpec(name, VariableClass.DUPLICATED, False, description)
        )
        return self

    def computation(self, spec: ComputationSpec) -> "ParallelizationPlan":
        if spec.placement is Placement.HOST and not self.uses_host:
            raise PlanError(
                f"computation {spec.name!r} placed on host, but plan "
                f"{self.name!r} has no host process"
            )
        self.computations.append(spec)
        return self

    def _add_var(self, spec: VariableSpec) -> None:
        if spec.name in self.variables:
            raise PlanError(f"variable {spec.name!r} classified twice")
        self.variables[spec.name] = spec

    # -- queries ---------------------------------------------------------------

    def distributed_variables(self) -> list[str]:
        return [
            n
            for n, v in self.variables.items()
            if v.vclass is VariableClass.DISTRIBUTED
        ]

    def duplicated_variables(self) -> list[str]:
        return [
            n
            for n, v in self.variables.items()
            if v.vclass is VariableClass.DUPLICATED
        ]

    def ghosted_variables(self) -> list[str]:
        return [n for n, v in self.variables.items() if v.ghosted]

    def is_distributed(self, name: str) -> bool:
        return self.variables[name].vclass is VariableClass.DISTRIBUTED

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Consistency of the whole plan.

        * every variable a computation reads or writes is classified;
        * a duplicated-computation step must not write a distributed
          variable (each process would write only its section — that is
          a distributed computation);
        * a host-placed step must not touch ghosted variables (ghosts
          exist only in grid processes).
        """
        for comp in self.computations:
            for var in (*comp.reads, *comp.writes):
                if var not in self.variables:
                    raise PlanError(
                        f"computation {comp.name!r} references unclassified "
                        f"variable {var!r}"
                    )
            if comp.placement is Placement.GRID and comp.cclass is (
                ComputationClass.DUPLICATED
            ):
                for var in comp.writes:
                    if self.is_distributed(var):
                        raise PlanError(
                            f"duplicated computation {comp.name!r} writes "
                            f"distributed variable {var!r}"
                        )
            if comp.placement is Placement.HOST:
                for var in (*comp.reads, *comp.writes):
                    if self.variables[var].ghosted:
                        raise PlanError(
                            f"host computation {comp.name!r} touches ghosted "
                            f"variable {var!r}"
                        )

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"parallelization plan {self.name!r} "
            f"(archetype {self.archetype!r}, "
            f"{'host + grid' if self.uses_host else 'grid only'}):"
        ]
        lines.append("  variables:")
        for name, v in sorted(self.variables.items()):
            ghost = " +ghost" if v.ghosted else ""
            lines.append(f"    {name}: {v.vclass.value}{ghost}")
        lines.append("  computations:")
        for c in self.computations:
            special = " [boundary-special]" if c.boundary_special else ""
            lines.append(
                f"    {c.name}: {c.placement.value}/{c.cclass.value}{special}"
            )
        return "\n".join(lines)
