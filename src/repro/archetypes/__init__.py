"""Parallel programming archetypes (paper sections 2.1 and 4.2).

An archetype captures the commonality of a class of programs: a
computational pattern, a parallelization strategy, and the dataflow /
communication structure those two imply.  Concretely, an archetype in
this package offers three things:

* **guidelines** — a machine-checkable
  :class:`~repro.archetypes.plan.ParallelizationPlan` classifying each
  variable (distributed vs duplicated, ghosted or not) and each piece
  of computation (host vs grid, distributed vs duplicated) — the
  paper's section 4.4 step 1-2 as a data structure;
* **transformations** — builders that assemble the stages of a
  sequential simulated-parallel program for the class
  (:mod:`~repro.archetypes.mesh.skeleton`);
* **a communication library** — the class's data-exchange operations
  (boundary exchange, broadcast, reduction, host redistribution),
  available both as checked
  :class:`~repro.refinement.dataexchange.DataExchange` objects for the
  simulated world and, mechanically, as message-passing code through
  :func:`~repro.refinement.transform.to_parallel_system`.

The one archetype the paper's experiments use — and the one implemented
in full here — is the **mesh archetype** (:mod:`repro.archetypes.mesh`).
"""

from repro.archetypes.base import Archetype, ArchetypeOperation, get_archetype
from repro.archetypes.plan import (
    ComputationClass,
    ComputationSpec,
    ParallelizationPlan,
    Placement,
    VariableClass,
    VariableSpec,
)

__all__ = [
    "Archetype",
    "ArchetypeOperation",
    "get_archetype",
    "ParallelizationPlan",
    "VariableSpec",
    "VariableClass",
    "ComputationSpec",
    "ComputationClass",
    "Placement",
]
