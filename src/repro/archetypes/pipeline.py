"""The pipeline archetype — a second archetype, per the paper's future work.

The paper closes: "much work remains to be done identifying and
developing additional archetypes".  This module develops one, with the
same deliverables the mesh archetype has:

* **computational pattern** — a stream of M items flows through S
  stages; stage ``s`` applies a pure, deterministic transform
  ``f_s(item)``; the program's output is
  ``f_{S-1}(... f_0(item_i) ...)`` for every item, in order;
* **parallelization strategy** — one process per stage; stage ``s``
  works on item ``i`` while stage ``s-1`` works on item ``i+1``
  (software pipelining); dataflow is a linear chain, so the
  communication structure is one channel per adjacent stage pair;
* **transformations** — :class:`PipelineProgramBuilder` produces the
  sequential simulated-parallel version: the schedule is unrolled into
  ``M + S - 1`` rounds, each an (active-stages-only) local block
  followed by a shift data-exchange ``stage[s+1].inbox :=
  stage[s].outbox``; the message-passing version then falls out of
  :func:`~repro.refinement.transform.to_parallel_system` — and because
  each process only takes part in the exchanges it touches, the
  transformed program *pipelines for free*: stage 0 races ahead of
  stage 1 exactly as a hand-written pipeline would;
* **communication library** — for hand-written process bodies,
  :func:`pipeline_system` builds the streaming form directly on
  channels.

A small throughput/latency model (:func:`model_pipeline_time`) supports
the archetype's ablation: when does a pipeline beat running the stages
fused on one process?
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.archetypes.base import Archetype, ArchetypeOperation, register_archetype
from repro.errors import ArchetypeError
from repro.refinement.dataexchange import DataExchange, VarRef
from repro.refinement.program import LocalBlock, SimulatedParallelProgram
from repro.refinement.store import AddressSpace
from repro.refinement.transform import to_parallel_system
from repro.runtime.process import ProcessSpec
from repro.runtime.system import System

__all__ = [
    "PIPELINE_ARCHETYPE",
    "PipelineProgramBuilder",
    "pipeline_system",
    "model_pipeline_time",
]

StageFn = Callable[[np.ndarray], np.ndarray]

PIPELINE_ARCHETYPE = register_archetype(
    Archetype(
        name="pipeline",
        description=(
            "a stream of items flowing through a linear chain of "
            "deterministic transformation stages, one process per stage"
        ),
        operations=[
            ArchetypeOperation(
                "stage_transform",
                "local",
                "apply one stage's pure function to its current item",
            ),
            ArchetypeOperation(
                "shift",
                "exchange",
                "move every in-flight item one stage down the chain",
            ),
        ],
        guidelines=(
            "pipeline archetype guidelines:\n"
            "1. Factor the per-item computation into stages of similar\n"
            "   cost (the slowest stage bounds throughput).\n"
            "2. Stages must be pure functions of their input item.\n"
            "3. Unroll the schedule: in round t, stage s processes item\n"
            "   t - s; rounds alternate stage transforms with one shift\n"
            "   exchange.\n"
            "4. Transform mechanically (Theorem 1); the message-passing\n"
            "   program pipelines automatically."
        ),
    )
)


class PipelineProgramBuilder:
    """Build the simulated-parallel form of a stage pipeline.

    Parameters
    ----------
    stages:
        The per-stage transforms, in order.  Each maps an item array to
        an item array of the same shape (shape changes between stages
        are allowed via ``item_shapes``).
    items:
        The input stream, shape ``(M, *item_shape)``.
    item_shapes:
        Optional per-boundary item shapes: entry ``s`` is the shape of
        items *leaving* stage ``s``.  Defaults to the input item shape
        throughout.
    """

    def __init__(
        self,
        stages: Sequence[StageFn],
        items: np.ndarray,
        item_shapes: Sequence[tuple[int, ...]] | None = None,
        name: str = "pipeline",
    ):
        if len(stages) < 1:
            raise ArchetypeError("a pipeline needs at least one stage")
        items = np.asarray(items, dtype=np.float64)
        if items.ndim < 1 or len(items) < 1:
            raise ArchetypeError("the input stream must hold at least one item")
        self.stages = list(stages)
        self.items = items
        self.nstages = len(stages)
        self.nitems = len(items)
        in_shape = items.shape[1:]
        if item_shapes is None:
            item_shapes = [in_shape] * self.nstages
        if len(item_shapes) != self.nstages:
            raise ArchetypeError(
                f"item_shapes needs one entry per stage "
                f"({self.nstages}), got {len(item_shapes)}"
            )
        self.out_shapes = [tuple(s) for s in item_shapes]
        self.in_shapes = [in_shape] + self.out_shapes[:-1]
        self.name = name

    # -- reference ---------------------------------------------------------------

    def sequential_reference(self) -> np.ndarray:
        """The original sequential program: full composition per item."""
        out = []
        for item in self.items:
            value = item.copy()
            for fn in self.stages:
                value = np.asarray(fn(value), dtype=np.float64)
            out.append(value)
        return np.stack(out)

    # -- the simulated-parallel program ----------------------------------------------

    def initial_stores(self) -> list[dict]:
        stores: list[dict] = []
        for s in range(self.nstages):
            store: dict = {
                "inbox": np.zeros(self.in_shapes[s]),
                "outbox": np.zeros(self.out_shapes[s]),
            }
            if s == 0:
                store["stream"] = self.items.copy()
            if s == self.nstages - 1:
                store["results"] = np.zeros(
                    (self.nitems, *self.out_shapes[-1])
                )
            stores.append(store)
        return stores

    def _active(self, round_index: int) -> list[int]:
        """Stages holding an item in this round."""
        return [
            s
            for s in range(self.nstages)
            if 0 <= round_index - s < self.nitems
        ]

    def build(self) -> SimulatedParallelProgram:
        prog = SimulatedParallelProgram(self.nstages, name=self.name)
        last = self.nstages - 1
        for t in range(self.nitems + self.nstages - 1):
            active = self._active(t)

            def make_fn(s: int, item_index: int):
                fn = self.stages[s]

                def run(store: AddressSpace) -> None:
                    source = (
                        store["stream"][item_index] if s == 0 else store["inbox"]
                    )
                    value = np.asarray(fn(source.copy()), dtype=np.float64)
                    if s == last:
                        store["results"][item_index] = value
                    else:
                        store.write_region("outbox", None, value)

                return run

            fns = {s: make_fn(s, t - s) for s in active}
            prog.stages.append(LocalBlock(fns, name=f"round{t}"))

            shifting = [s for s in active if s < last]
            if shifting:
                exchange = DataExchange(
                    name=f"shift{t}",
                    participants=frozenset(s + 1 for s in shifting),
                )
                for s in shifting:
                    exchange.assign(VarRef(s + 1, "inbox"), VarRef(s, "outbox"))
                prog.stages.append(exchange)
        return prog

    # -- execution ---------------------------------------------------------------

    def run_simulated(self) -> np.ndarray:
        """Run the simulated-parallel program; returns the result stream."""
        stores = [
            AddressSpace(s, owner=i)
            for i, s in enumerate(self.initial_stores())
        ]
        self.build().run(stores=stores)
        return np.asarray(stores[-1]["results"])

    def to_parallel(self) -> System:
        """The mechanical message-passing transform."""
        return to_parallel_system(
            self.build(), initial_stores=self.initial_stores()
        )

    @staticmethod
    def results_from(system_result) -> np.ndarray:
        """Extract the result stream from a finished parallel run."""
        return np.asarray(system_result.stores[-1]["results"])


def pipeline_system(
    stages: Sequence[StageFn], items: np.ndarray, name: str = "pipeline"
) -> System:
    """The hand-written streaming form: one process per stage, items
    flowing over one channel per adjacent pair (the archetype's
    'communication library' counterpart to the builder)."""
    items = np.asarray(items, dtype=np.float64)
    nstages = len(stages)
    nitems = len(items)

    def make_body(s: int):
        fn = stages[s]

        def body(ctx):
            results = []
            for i in range(nitems):
                if s == 0:
                    value = ctx.store["stream"][i].copy()
                else:
                    value = ctx.recv(f"pipe{s - 1}")
                value = np.asarray(fn(value), dtype=np.float64)
                if s == nstages - 1:
                    results.append(value)
                else:
                    ctx.send(f"pipe{s}", value)
            if results:
                ctx.store["results"] = np.stack(results)

        return body

    processes = []
    for s in range(nstages):
        store = {"stream": items.copy()} if s == 0 else {}
        processes.append(ProcessSpec(s, make_body(s), store=store))
    system = System(processes)
    for s in range(nstages - 1):
        system.add_channel(f"pipe{s}", s, s + 1)
    return system


def model_pipeline_time(
    stage_times: Sequence[float],
    nitems: int,
    latency: float = 0.0,
) -> tuple[float, float]:
    """(pipelined, fused) makespan under the standard pipeline model.

    Pipelined: fill latency (sum of stage times + per-hop message
    latency) plus ``(M - 1)`` times the bottleneck stage.  Fused: one
    process applies all stages to all items.
    """
    if nitems < 1 or not stage_times:
        raise ArchetypeError("need at least one item and one stage")
    fill = sum(stage_times) + latency * (len(stage_times) - 1)
    bottleneck = max(stage_times) + latency
    pipelined = fill + (nitems - 1) * bottleneck
    fused = nitems * sum(stage_times)
    return pipelined, fused
