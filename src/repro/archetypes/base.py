"""The archetype abstraction and registry.

An :class:`Archetype` is deliberately mostly *description*: what makes
an archetype useful is its guidelines and its operation library, both
of which are ordinary code elsewhere (the mesh ones live in
:mod:`repro.archetypes.mesh`).  The base class records the pattern —
which operations the class's programs are built from — so tools and
documentation can enumerate them, and so an application can assert
"this program fits archetype X" in a checkable way (every exchange it
performs must be an instance of one of X's operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchetypeError

__all__ = ["ArchetypeOperation", "Archetype", "register_archetype", "get_archetype"]


@dataclass(frozen=True)
class ArchetypeOperation:
    """One communication/computation pattern an archetype offers.

    ``kind`` classifies the dataflow: ``"local"`` (no communication),
    ``"exchange"`` (point-to-point between neighbours), ``"collective"``
    (all processes), or ``"redistribution"`` (host <-> grid).
    """

    name: str
    kind: str
    description: str

    def __post_init__(self) -> None:
        if self.kind not in ("local", "exchange", "collective", "redistribution"):
            raise ArchetypeError(f"unknown operation kind {self.kind!r}")


@dataclass
class Archetype:
    """A named program class: computational pattern + operations.

    Instances are registered at import time; applications look their
    archetype up with :func:`get_archetype` and build programs with the
    archetype's own skeleton/library modules.
    """

    name: str
    description: str
    operations: list[ArchetypeOperation] = field(default_factory=list)
    guidelines: str = ""

    def operation(self, name: str) -> ArchetypeOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise ArchetypeError(
            f"archetype {self.name!r} has no operation {name!r}; "
            f"available: {[op.name for op in self.operations]}"
        )

    def operation_names(self) -> list[str]:
        return [op.name for op in self.operations]

    def describe(self) -> str:
        lines = [f"archetype {self.name!r}: {self.description}"]
        for op in self.operations:
            lines.append(f"  [{op.kind}] {op.name}: {op.description}")
        return "\n".join(lines)


_REGISTRY: dict[str, Archetype] = {}


def register_archetype(archetype: Archetype) -> Archetype:
    """Register an archetype under its name (idempotent re-register of
    an identical object is allowed)."""
    existing = _REGISTRY.get(archetype.name)
    if existing is not None and existing is not archetype:
        raise ArchetypeError(f"archetype {archetype.name!r} already registered")
    _REGISTRY[archetype.name] = archetype
    return archetype


def get_archetype(name: str) -> Archetype:
    """Look up a registered archetype (importing built-ins lazily)."""
    if name not in _REGISTRY and name == "mesh":
        import repro.archetypes.mesh  # noqa: F401 - registers itself
    if name not in _REGISTRY and name == "pipeline":
        import repro.archetypes.pipeline  # noqa: F401 - registers itself
    if name not in _REGISTRY and name == "divide-conquer":
        import repro.archetypes.divide_conquer  # noqa: F401 - registers itself
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ArchetypeError(
            f"unknown archetype {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
