"""Block decomposition of N-dimensional grids onto process grids.

The mesh archetype's data-distribution scheme (paper section 4.2)
partitions the data grid into "regular contiguous subgrids (local
sections)" distributed among processes.  This module provides:

* :func:`choose_process_grid` — pick a process-grid shape for P
  processes over a given data grid, minimising communication surface;
* :class:`ProcessGrid` — rank <-> Cartesian-coordinate mapping and
  (non-periodic) neighbour lookup;
* :class:`BlockDecomposition` — the index arithmetic: which global
  indices each rank owns, the shape of its ghosted local array, and
  the translation between global and local index spaces.

Conventions:

* block distribution along each axis: with extent ``n`` over ``p``
  parts, part ``k`` has size ``n//p + (1 if k < n%p else 0)`` and
  starts at ``k*(n//p) + min(k, n%p)`` — sizes differ by at most one;
* every rank's local array is its owned block surrounded by ``ghost``
  cells on *every* side (including physical boundaries, where the ghost
  ring holds boundary-condition data rather than neighbour copies) —
  uniform shape arithmetic, exactly how the Fortran mesh archetype
  skeleton lays out its arrays;
* ranks are C-order (last axis fastest) over the process grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.util import product

__all__ = [
    "choose_process_grid",
    "factorizations",
    "ProcessGrid",
    "BlockDecomposition",
    "block_bounds",
]


def block_bounds(n: int, p: int, k: int) -> tuple[int, int]:
    """Global [start, stop) of part ``k`` of ``n`` items over ``p`` parts."""
    if not 0 <= k < p:
        raise DecompositionError(f"part index {k} out of range for {p} parts")
    if n < p:
        raise DecompositionError(
            f"cannot distribute extent {n} over {p} parts with non-empty "
            "local sections"
        )
    base, rem = divmod(n, p)
    start = k * base + min(k, rem)
    stop = start + base + (1 if k < rem else 0)
    return start, stop


def factorizations(n: int, ndim: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``n`` into ``ndim`` positive factors."""
    if ndim == 1:
        return [(n,)]
    out = []
    for first in range(1, n + 1):
        if n % first == 0:
            for rest in factorizations(n // first, ndim - 1):
                out.append((first, *rest))
    return out


def choose_process_grid(
    nprocs: int, grid_shape: tuple[int, ...]
) -> tuple[int, ...]:
    """Process-grid shape for ``nprocs`` over ``grid_shape`` minimising
    the total boundary surface exchanged per sweep.

    For each candidate factorization, the cost is the number of grid
    points on inter-process faces:
    ``sum_over_axes (p_j - 1) * (grid volume / n_j)``.
    Ties break toward the most balanced (lexicographically smallest
    sorted-descending) shape, for determinism.
    """
    ndim = len(grid_shape)
    volume = product(grid_shape)
    best: tuple[float, tuple[int, ...], tuple[int, ...]] | None = None
    for shape in factorizations(nprocs, ndim):
        if any(p > n for p, n in zip(shape, grid_shape)):
            continue
        cost = sum(
            (p - 1) * (volume // n) for p, n in zip(shape, grid_shape)
        )
        key = (cost, tuple(sorted(shape, reverse=True)), shape)
        if best is None or key < best:
            best = key
    if best is None:
        raise DecompositionError(
            f"no factorization of {nprocs} processes fits grid {grid_shape}"
        )
    return best[2]


@dataclass(frozen=True)
class ProcessGrid:
    """A Cartesian grid of process ranks (C-order, non-periodic)."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(p < 1 for p in self.shape):
            raise DecompositionError(f"invalid process grid shape {self.shape}")

    @property
    def nprocs(self) -> int:
        return product(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise DecompositionError(
                f"rank {rank} out of range for {self.nprocs} processes"
            )
        return tuple(int(c) for c in np.unravel_index(rank, self.shape))

    def rank(self, coords: tuple[int, ...]) -> int:
        """Rank at Cartesian ``coords``."""
        if len(coords) != self.ndim or any(
            not 0 <= c < p for c, p in zip(coords, self.shape)
        ):
            raise DecompositionError(
                f"coords {coords} outside process grid {self.shape}"
            )
        return int(np.ravel_multi_index(coords, self.shape))

    def neighbor(self, rank: int, axis: int, direction: int) -> int | None:
        """Neighbouring rank one step along ``axis`` (``direction`` is
        -1 or +1); ``None`` at the physical boundary (non-periodic)."""
        if direction not in (-1, 1):
            raise DecompositionError(f"direction must be +-1, got {direction}")
        coords = list(self.coords(rank))
        coords[axis] += direction
        if not 0 <= coords[axis] < self.shape[axis]:
            return None
        return self.rank(tuple(coords))

    def all_ranks(self) -> list[int]:
        return list(range(self.nprocs))

    def boundary_ranks(self, axis: int, side: int) -> list[int]:
        """Ranks whose block touches the physical boundary of ``axis``
        on ``side`` (-1: low, +1: high)."""
        want = 0 if side == -1 else self.shape[axis] - 1
        return [
            r for r in self.all_ranks() if self.coords(r)[axis] == want
        ]


class BlockDecomposition:
    """Block decomposition of one data grid over one process grid."""

    def __init__(
        self,
        grid_shape: tuple[int, ...],
        pgrid: ProcessGrid | tuple[int, ...],
        ghost: int = 1,
    ):
        if isinstance(pgrid, tuple):
            pgrid = ProcessGrid(pgrid)
        if len(grid_shape) != pgrid.ndim:
            raise DecompositionError(
                f"grid {grid_shape} and process grid {pgrid.shape} have "
                "different dimensionality"
            )
        if ghost < 0:
            raise DecompositionError(f"ghost width must be >= 0, got {ghost}")
        # Validate every axis admits non-empty blocks; also require each
        # local extent >= ghost so a face exchange is well-defined.
        for n, p in zip(grid_shape, pgrid.shape):
            if n < p:
                raise DecompositionError(
                    f"axis extent {n} < process count {p}"
                )
            if ghost > 0 and (n // p) < ghost:
                raise DecompositionError(
                    f"smallest block ({n // p}) thinner than ghost width "
                    f"({ghost}); boundary exchange would be ill-defined"
                )
        self.grid_shape = tuple(grid_shape)
        self.pgrid = pgrid
        self.ghost = ghost

    # -- basic facts -------------------------------------------------------------

    @property
    def nprocs(self) -> int:
        return self.pgrid.nprocs

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    def owned_bounds(self, rank: int) -> list[tuple[int, int]]:
        """Per-axis global [start, stop) owned by ``rank``."""
        coords = self.pgrid.coords(rank)
        return [
            block_bounds(n, p, c)
            for n, p, c in zip(self.grid_shape, self.pgrid.shape, coords)
        ]

    def owned_slices(self, rank: int) -> tuple[slice, ...]:
        """Slices into the *global* array selecting ``rank``'s block."""
        return tuple(slice(a, b) for a, b in self.owned_bounds(rank))

    def owned_shape(self, rank: int) -> tuple[int, ...]:
        return tuple(b - a for a, b in self.owned_bounds(rank))

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Shape of the ghosted local array."""
        g = self.ghost
        return tuple(s + 2 * g for s in self.owned_shape(rank))

    def interior_slices(self, rank: int) -> tuple[slice, ...]:
        """Slices into the *local* (ghosted) array selecting the owned
        region."""
        g = self.ghost
        return tuple(slice(g, g + s) for s in self.owned_shape(rank))

    # -- index translation ---------------------------------------------------------

    def global_to_local(
        self, rank: int, index: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Local (ghosted) index of a global index owned by ``rank``."""
        bounds = self.owned_bounds(rank)
        out = []
        for axis, ((a, b), i) in enumerate(zip(bounds, index)):
            if not a <= i < b:
                raise DecompositionError(
                    f"global index {index} not owned by rank {rank} "
                    f"(axis {axis} owns [{a},{b}))"
                )
            out.append(i - a + self.ghost)
        return tuple(out)

    def local_to_global(
        self, rank: int, index: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Global index of a local *interior* index."""
        bounds = self.owned_bounds(rank)
        out = []
        for axis, ((a, b), i) in enumerate(zip(bounds, index)):
            j = i - self.ghost
            if not 0 <= j < b - a:
                raise DecompositionError(
                    f"local index {index} of rank {rank} is not interior "
                    f"(axis {axis})"
                )
            out.append(a + j)
        return tuple(out)

    def owner_of(self, index: tuple[int, ...]) -> int:
        """Rank owning a global index."""
        coords = []
        for axis, (n, p, i) in enumerate(
            zip(self.grid_shape, self.pgrid.shape, index)
        ):
            if not 0 <= i < n:
                raise DecompositionError(
                    f"global index {index} outside grid {self.grid_shape}"
                )
            # Invert the block map.
            base, rem = divmod(n, p)
            # Parts 0..rem-1 have size base+1, covering [0, rem*(base+1)).
            if i < rem * (base + 1):
                coords.append(i // (base + 1))
            else:
                coords.append(rem + (i - rem * (base + 1)) // base)
        return self.pgrid.rank(tuple(coords))

    # -- physical boundary ------------------------------------------------------------

    def touches_boundary(self, rank: int, axis: int, side: int) -> bool:
        """Does ``rank``'s block touch the physical grid boundary on
        ``side`` (-1 low / +1 high) of ``axis``?"""
        coords = self.pgrid.coords(rank)
        if side == -1:
            return coords[axis] == 0
        return coords[axis] == self.pgrid.shape[axis] - 1

    # -- sanity / coverage --------------------------------------------------------------

    def verify_partition(self) -> None:
        """Assert the blocks exactly tile the grid (disjoint cover).

        O(grid volume) — used by tests and by callers that want a belt
        with their braces; the index arithmetic makes it true by
        construction."""
        cover = np.zeros(self.grid_shape, dtype=np.int32)
        for rank in range(self.nprocs):
            cover[self.owned_slices(rank)] += 1
        if not np.all(cover == 1):
            raise DecompositionError(
                "blocks do not exactly tile the grid "
                f"(min cover {cover.min()}, max {cover.max()})"
            )

    def describe(self) -> str:
        lines = [
            f"block decomposition: grid {self.grid_shape} over process "
            f"grid {self.pgrid.shape}, ghost={self.ghost}"
        ]
        for rank in range(self.nprocs):
            bounds = self.owned_bounds(rank)
            spans = " x ".join(f"[{a},{b})" for a, b in bounds)
            lines.append(
                f"  rank {rank} {self.pgrid.coords(rank)}: {spans} "
                f"local {self.local_shape(rank)}"
            )
        return "\n".join(lines)

    def all_faces(self) -> list[tuple[int, int, int, int]]:
        """All inter-process faces as ``(rank, axis, direction, neighbor)``
        tuples (each face appears twice, once per side)."""
        out = []
        for rank in range(self.nprocs):
            for axis in range(self.ndim):
                for direction in (-1, 1):
                    nb = self.pgrid.neighbor(rank, axis, direction)
                    if nb is not None:
                        out.append((rank, axis, direction, nb))
        return out
