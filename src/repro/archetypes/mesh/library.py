"""The mesh archetype object: registration and operation inventory.

This is the descriptive half of the archetype — the pattern's
operations, as the paper's section 4.2 enumerates them — wired into the
archetype registry.  The executable half is the rest of this package:
:mod:`~repro.archetypes.mesh.skeleton` (code skeleton),
:mod:`~repro.archetypes.mesh.exchange` /
:mod:`~repro.archetypes.mesh.reduction` /
:mod:`~repro.archetypes.mesh.gio` (communication library), and
:mod:`~repro.archetypes.mesh.decomposition` (data distribution).
"""

from __future__ import annotations

from repro.archetypes.base import Archetype, ArchetypeOperation, register_archetype

__all__ = ["MESH_ARCHETYPE"]

_GUIDELINES = """\
mesh archetype parallelization guidelines (after Massingill, TR CS-96-25):

1. Classify variables: grids operated on pointwise are DISTRIBUTED
   (block local sections, one per grid process); grids read with
   neighbouring-point stencils additionally carry a GHOST boundary;
   constants, loop controls and reduction results are DUPLICATED, with
   copy consistency re-established by broadcast after any single-process
   update.
2. Classify computation: file I/O and global bookkeeping on the HOST;
   grid operations DISTRIBUTED over grid processes (each computes its
   local section, concurrently); cheap global control DUPLICATED.
   Identify computations that differ at physical grid boundaries.
3. Restructure into alternating local-computation blocks and
   data-exchange operations; every exchange must be one of this
   archetype's operations below.
4. Insert archetype library calls: boundary exchange before each stencil
   sweep; reduction (local partial + combine) for grid-to-scalar
   operations, provided the combining operator may be treated as
   associative; distribute/collect around file reads/writes.
5. Transform mechanically to message passing (Theorem 1): per exchange,
   all sends before any receive; combine messages per (sender,
   receiver) pair.
"""

MESH_ARCHETYPE = register_archetype(
    Archetype(
        name="mesh",
        description=(
            "computations over 1-3-D grids structured as grid operations "
            "(pointwise, optionally reading neighbouring points), "
            "reductions, and file I/O, parallelized by block data "
            "distribution with ghost boundaries"
        ),
        operations=[
            ArchetypeOperation(
                "grid_op",
                "local",
                "apply the same operation at every grid point, reading "
                "the point and (optionally) its neighbours; inputs and "
                "outputs must be disjoint variable sets when neighbours "
                "are read",
            ),
            ArchetypeOperation(
                "boundary_exchange",
                "exchange",
                "refresh ghost strips from neighbouring local sections",
            ),
            ArchetypeOperation(
                "reduction",
                "collective",
                "combine all grid values to one value: local partial per "
                "process, then all-to-one/one-to-all or recursive doubling",
            ),
            ArchetypeOperation(
                "broadcast",
                "collective",
                "re-establish copy consistency of duplicated globals "
                "after a single-process update",
            ),
            ArchetypeOperation(
                "distribute",
                "redistribution",
                "host -> grid redistribution after a file read",
            ),
            ArchetypeOperation(
                "collect",
                "redistribution",
                "grid -> host redistribution before a file write",
            ),
        ],
        guidelines=_GUIDELINES,
    )
)
