"""Ghost-boundary region arithmetic.

Each distributed array is stored locally as its owned block surrounded
by a ``ghost``-cell-wide ring holding "shadow copies of boundary values
from neighbouring processes' local sections" (paper section 4.2).  A
boundary-exchange refreshes the shadows; this module computes the exact
regions involved:

* :func:`owned_face_region` — the strip of *owned* cells a rank sends
  to the neighbour on a given face;
* :func:`ghost_face_region` — the strip of *ghost* cells a rank
  receives into from that neighbour.

Only faces are exchanged (not edge/corner diagonals): along every
non-face axis the strips span the owned interior.  That suffices for
any face-stencil computation — the FDTD updates among them — and gives
the pleasant property that all send strips and all ghost strips of one
exchange are pairwise disjoint, so the exchange satisfies data-exchange
restriction (i) *by construction* (and validation re-checks it).
"""

from __future__ import annotations

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.errors import DecompositionError

__all__ = ["owned_face_region", "ghost_face_region", "face_region_shape"]


def _check(decomp: BlockDecomposition, axis: int, side: int) -> None:
    if not 0 <= axis < decomp.ndim:
        raise DecompositionError(f"axis {axis} out of range")
    if side not in (-1, 1):
        raise DecompositionError(f"side must be +-1, got {side}")
    if decomp.ghost < 1:
        raise DecompositionError("face regions need ghost width >= 1")


def owned_face_region(
    decomp: BlockDecomposition,
    rank: int,
    axis: int,
    side: int,
    full_span_below: bool = False,
) -> tuple[slice, ...]:
    """Local-array region of the owned cells adjacent to a face.

    ``side=-1`` is the low face, ``side=+1`` the high face.  The strip
    is ``ghost`` cells deep along ``axis`` and spans the owned interior
    along every other axis — unless ``full_span_below`` is set, in
    which case axes *before* ``axis`` span the full local extent (ghost
    cells included).  That is the dimension-ordered corner-filling
    variant: by the time the axis-``a`` exchange runs, the strips it
    ships already contain the fresh ghost values received in the
    earlier-axis exchanges, so after all axes the ghost *corners* are
    valid too (required by deep-ghost redundant computation).
    """
    _check(decomp, axis, side)
    g = decomp.ghost
    shape = decomp.owned_shape(rank)
    region = []
    for a, extent in enumerate(shape):
        if a != axis:
            if full_span_below and a < axis:
                region.append(slice(0, extent + 2 * g))
            else:
                region.append(slice(g, g + extent))
        elif side == -1:
            region.append(slice(g, 2 * g))
        else:
            region.append(slice(g + extent - g, g + extent))
    return tuple(region)


def ghost_face_region(
    decomp: BlockDecomposition,
    rank: int,
    axis: int,
    side: int,
    full_span_below: bool = False,
) -> tuple[slice, ...]:
    """Local-array region of the ghost cells beyond a face.

    ``full_span_below`` as in :func:`owned_face_region`.
    """
    _check(decomp, axis, side)
    g = decomp.ghost
    shape = decomp.owned_shape(rank)
    region = []
    for a, extent in enumerate(shape):
        if a != axis:
            if full_span_below and a < axis:
                region.append(slice(0, extent + 2 * g))
            else:
                region.append(slice(g, g + extent))
        elif side == -1:
            region.append(slice(0, g))
        else:
            region.append(slice(g + extent, g + extent + g))
    return tuple(region)


def face_region_shape(
    decomp: BlockDecomposition, rank: int, axis: int
) -> tuple[int, ...]:
    """Shape of a face strip of ``rank`` perpendicular to ``axis``."""
    shape = list(decomp.owned_shape(rank))
    shape[axis] = decomp.ghost
    return tuple(shape)
