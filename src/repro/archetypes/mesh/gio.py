"""Host <-> grid redistribution (file I/O support).

The mesh archetype's file I/O strategy (paper section 4.2) designates a
host process that owns global copies of distributed arrays: "a read
operation requires that the host process read the data from the file
and then redistribute it to the other (grid) processes, while a write
operation requires that the data first be redistributed from the grid
processes to the host process and then written to the file."

Conventions used throughout this package:

* grid processes occupy partitions ``0 .. G-1``, matching decomposition
  ranks one-to-one;
* the host, when present, is partition ``G`` (the last);
* on the host, a distributed variable ``v`` is stored as the *global*
  array; on grid rank ``r`` it is the ghosted local array.
"""

from __future__ import annotations

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.refinement.dataexchange import DataExchange, VarRef

__all__ = ["distribute_stage", "collect_stage"]


def distribute_stage(
    decomp: BlockDecomposition,
    var: str,
    host: int,
    host_var: str | None = None,
) -> DataExchange:
    """Host -> grid: each rank's interior := its owned block of the
    host's global array.  (Ghosts are left untouched; a boundary
    exchange refreshes them before any stencil runs.)

    ``host_var`` names the global array on the host when it differs
    from the grid-side name (default: same name).
    """
    src_name = host_var or var
    op = DataExchange(
        name=f"distribute:{var}",
        participants=frozenset(range(decomp.nprocs)),
    )
    for rank in range(decomp.nprocs):
        op.assign(
            VarRef(rank, var, decomp.interior_slices(rank)),
            VarRef(host, src_name, decomp.owned_slices(rank)),
        )
    return op


def collect_stage(
    decomp: BlockDecomposition,
    var: str,
    host: int,
    host_var: str | None = None,
) -> DataExchange:
    """Grid -> host: the host's global array := every rank's interior.

    Only the host receives; participants = {host}.
    """
    dst_name = host_var or var
    op = DataExchange(
        name=f"collect:{var}", participants=frozenset({host})
    )
    for rank in range(decomp.nprocs):
        op.assign(
            VarRef(host, dst_name, decomp.owned_slices(rank)),
            VarRef(rank, var, decomp.interior_slices(rank)),
        )
    return op
