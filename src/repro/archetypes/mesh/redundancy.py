"""Deep ghosts with redundant computation: exchange every g sweeps.

A classic mesh-archetype optimisation the paper's latency numbers
motivate: on a network where each message costs ~1.5 ms, exchanging every
sweep is wasteful.  With a ghost ring ``g`` cells deep, one exchange
validates the ghosts to depth ``g``; each subsequent sweep may then
*redundantly compute* one ring of its neighbours' cells instead of
receiving them, shrinking the valid ghost depth by one per sweep —
so a single exchange supports ``g`` sweeps.

Correctness is exact, not approximate: a redundantly computed ghost
cell executes the *same* floating-point operations on the *same*
operand values as the owning rank's computation of that cell, so the
owned regions stay bitwise identical to the exchange-every-sweep
schedule (and hence to the sequential program).  The price is
redundant flops (one extra ring per skipped exchange) and a deeper
ghost strip per message; :func:`redundant_comm_volume` quantifies the
trade for the cost model, and ablation A4 measures it.

Scope: pure stencil sweeps (uniform update over the grid interior,
e.g. heat/Jacobi).  Computations with interior special cases at points
other than the physical boundary (sources, scatterer-dependent
coefficients *are* fine — coefficients are replicated into ghosts;
point sources are not) need the every-sweep schedule.
"""

from __future__ import annotations

from typing import Callable

from typing import TYPE_CHECKING

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.archetypes.mesh.skeleton import MeshProgramBuilder
from repro.errors import ArchetypeError
from repro.refinement.store import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perfmodel.costmodel import CommVolume

__all__ = [
    "extended_sweep_region",
    "add_redundant_sweeps",
    "redundant_comm_volume",
]


def extended_sweep_region(
    decomp: BlockDecomposition,
    rank: int,
    substep: int,
    interior_trim: int = 0,
) -> tuple[slice, ...]:
    """Local region a rank updates at ``substep`` sweeps after an exchange.

    Extends the owned region ``g - 1 - substep`` cells into the ghost
    ring on faces with a neighbour (never across the physical boundary,
    where the update region is additionally trimmed by
    ``interior_trim`` — e.g. 1 for a Dirichlet-style stencil whose
    boundary cells are fixed).
    """
    g = decomp.ghost
    if not 0 <= substep < g:
        raise ArchetypeError(
            f"substep {substep} out of range for ghost width {g}"
        )
    extend = g - 1 - substep
    region: list[slice] = []
    for axis, extent in enumerate(decomp.owned_shape(rank)):
        lo = g
        hi = g + extent
        if decomp.pgrid.neighbor(rank, axis, -1) is not None:
            lo -= extend
        elif interior_trim:
            lo += interior_trim
        if decomp.pgrid.neighbor(rank, axis, 1) is not None:
            hi += extend
        elif interior_trim:
            hi -= interior_trim
        if hi - lo < 1:
            raise ArchetypeError(
                f"rank {rank}: extended region empty on axis {axis}; "
                "block too small for this ghost width"
            )
        region.append(slice(lo, hi))
    return tuple(region)


def add_redundant_sweeps(
    builder: MeshProgramBuilder,
    var: str,
    sweep: Callable[[AddressSpace, int, tuple[slice, ...]], None],
    nsweeps: int,
    name: str = "sweep",
) -> MeshProgramBuilder:
    """Append ``nsweeps`` stencil sweeps exchanging only every ``g`` sweeps.

    ``sweep(store, rank, region)`` must update exactly ``region`` of
    ``var`` (reading at most one cell beyond it), the contract that
    makes redundant ghost computation exact.  The exchange cadence is
    the builder's decomposition ghost width.
    """
    decomp = builder.decomp
    g = decomp.ghost
    if g < 1:
        raise ArchetypeError("redundant sweeps need ghost width >= 1")

    for index in range(nsweeps):
        substep = index % g
        if substep == 0:
            builder.exchange_boundaries(var, corners=g > 1)

        def bound(store: AddressSpace, rank: int, _s=substep) -> None:
            region = extended_sweep_region(decomp, rank, _s)
            sweep(store, rank, region)

        builder.grid_spmd(bound, name=f"{name}{index}")
    return builder


def redundant_comm_volume(
    decomp: BlockDecomposition, nvars: int, word_bytes: int, nsweeps: int
) -> tuple["CommVolume", int]:
    """(total traffic, exchange count) for ``nsweeps`` under the
    exchange-every-``g`` schedule.

    Each exchange ships strips ``g`` deep; there are
    ``ceil(nsweeps / g)`` of them — versus ``nsweeps`` one-deep
    exchanges for the standard schedule.
    """
    # Imported here, not at module top: the cost model itself imports
    # the mesh decomposition, and this is the one arrow pointing back.
    from repro.perfmodel.costmodel import CommVolume, exchange_comm_volume

    g = decomp.ghost
    exchanges = -(-nsweeps // g)
    single = exchange_comm_volume(decomp, nvars, word_bytes)
    total = CommVolume(
        total_messages=single.total_messages * exchanges,
        total_bytes=single.total_bytes * exchanges,
        max_rank_messages=single.max_rank_messages * exchanges,
        max_rank_bytes=single.max_rank_bytes * exchanges,
    )
    return total, exchanges
