"""Scatter / gather between global arrays and ghosted local sections.

These are *sequential* helpers: they build the per-rank ghosted local
arrays from a global array and reassemble a global array from local
sections.  They serve three masters:

* constructing initial stores for simulated-parallel programs and for
  transformed process systems;
* the reference implementations the host-redistribution exchange
  (:mod:`~repro.archetypes.mesh.gio`) is tested against;
* result assembly when comparing a parallel run's distributed fields
  against the sequential code's global fields (bitwise, per the
  methodology).
"""

from __future__ import annotations

import numpy as np

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.errors import DecompositionError

__all__ = ["scatter_array", "gather_array", "local_like", "fill_ghosts_from_global"]


def local_like(
    decomp: BlockDecomposition, rank: int, dtype=np.float64, fill: float = 0.0
) -> np.ndarray:
    """A fresh ghosted local array for ``rank`` (ghost cells included)."""
    return np.full(decomp.local_shape(rank), fill, dtype=dtype)


def scatter_array(
    decomp: BlockDecomposition,
    global_array: np.ndarray,
    fill_ghosts: bool = False,
) -> list[np.ndarray]:
    """Split a global array into ghosted local arrays, one per rank.

    Ghost cells are zero unless ``fill_ghosts`` is set, in which case
    interior ghosts are filled from the global array (as a completed
    boundary exchange would leave them); ghosts beyond the physical
    boundary always stay zero.
    """
    if tuple(global_array.shape) != decomp.grid_shape:
        raise DecompositionError(
            f"global array shape {global_array.shape} != grid "
            f"{decomp.grid_shape}"
        )
    locals_: list[np.ndarray] = []
    g = decomp.ghost
    for rank in range(decomp.nprocs):
        local = local_like(decomp, rank, dtype=global_array.dtype)
        local[decomp.interior_slices(rank)] = global_array[
            decomp.owned_slices(rank)
        ]
        if fill_ghosts and g > 0:
            bounds = decomp.owned_bounds(rank)
            # Source region in global coordinates: the owned block
            # extended by up to ``g`` cells wherever the grid allows.
            src = tuple(
                slice(max(a - g, 0), min(b + g, n))
                for (a, b), n in zip(bounds, decomp.grid_shape)
            )
            # Matching destination region in the local array.
            dst = tuple(
                slice(g - (a - max(a - g, 0)), g + (b - a) + (min(b + g, n) - b))
                for (a, b), n in zip(bounds, decomp.grid_shape)
            )
            local[dst] = global_array[src]
        locals_.append(local)
    return locals_


def gather_array(
    decomp: BlockDecomposition, locals_: list[np.ndarray]
) -> np.ndarray:
    """Reassemble a global array from ghosted local arrays."""
    if len(locals_) != decomp.nprocs:
        raise DecompositionError(
            f"expected {decomp.nprocs} local arrays, got {len(locals_)}"
        )
    out = np.zeros(decomp.grid_shape, dtype=locals_[0].dtype)
    for rank, local in enumerate(locals_):
        expected = decomp.local_shape(rank)
        if tuple(local.shape) != expected:
            raise DecompositionError(
                f"rank {rank} local array shape {local.shape} != {expected}"
            )
        out[decomp.owned_slices(rank)] = local[decomp.interior_slices(rank)]
    return out


def fill_ghosts_from_global(
    decomp: BlockDecomposition,
    rank: int,
    local: np.ndarray,
    global_array: np.ndarray,
) -> None:
    """Overwrite ``rank``'s interior ghost cells from a global array —
    the sequential specification of one rank's boundary-exchange
    result, used to cross-check the exchange operations."""
    g = decomp.ghost
    if g == 0:
        return
    bounds = decomp.owned_bounds(rank)
    src = tuple(
        slice(max(a - g, 0), min(b + g, n))
        for (a, b), n in zip(bounds, decomp.grid_shape)
    )
    dst = tuple(
        slice(g - (a - max(a - g, 0)), g + (b - a) + (min(b + g, n) - b))
        for (a, b), n in zip(bounds, decomp.grid_shape)
    )
    local[dst] = global_array[src]
