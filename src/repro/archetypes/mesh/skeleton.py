"""The mesh-archetype code skeleton.

The Fortran mesh archetype the paper used shipped "a code skeleton and
an archetype-specific library of communication routines"; applications
dropped their local computations into the skeleton and called the
library for every exchange.  :class:`MeshProgramBuilder` is that
skeleton: callers declare their variables (distributed / duplicated /
host-only / grid-only), append stages (grid computation, host blocks,
boundary exchanges, host redistribution, reductions), and obtain

* the **sequential simulated-parallel program**
  (:meth:`MeshProgramBuilder.build`), runnable and debuggable
  sequentially, and
* its mechanical **message-passing version**
  (:meth:`MeshProgramBuilder.to_parallel`),

with all the data-exchange restrictions checked on the way.

Process layout (see :mod:`~repro.archetypes.mesh.gio`): grid processes
are partitions ``0..G-1`` (decomposition ranks), the optional host is
partition ``G``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.archetypes.mesh.distributed_grid import scatter_array
from repro.archetypes.mesh.exchange import (
    boundary_exchange_multi_op,
    boundary_exchange_op,
    boundary_exchange_ops_with_corners,
    boundary_exchange_split,
)
from repro.archetypes.mesh.gio import collect_stage, distribute_stage
from repro.archetypes.mesh.reduction import (
    broadcast_stage,
    combine_block,
    gather_stage,
    partials_buffer,
)
from repro.errors import ArchetypeError
from repro.refinement.program import LocalBlock, SimulatedParallelProgram
from repro.refinement.store import AddressSpace
from repro.refinement.transform import to_parallel_system
from repro.runtime.system import System
from repro.util import deep_copy_value

__all__ = ["MeshProgramBuilder"]


class _Decl:
    """One variable declaration: how each partition initialises it."""

    def __init__(self, kind: str, payload: Any):
        self.kind = kind  # distributed | duplicated | host_only | grid_only
        self.payload = payload


class MeshProgramBuilder:
    """Declarative builder for mesh-archetype simulated programs."""

    def __init__(
        self,
        decomp: BlockDecomposition,
        use_host: bool = True,
        name: str = "mesh-program",
    ):
        self.decomp = decomp
        self.grid_size = decomp.nprocs
        self.host: int | None = self.grid_size if use_host else None
        self.nprocs = self.grid_size + (1 if use_host else 0)
        self.name = name
        self._decls: dict[str, _Decl] = {}
        self._stages: list = []
        #: end halves of split exchanges awaiting end_exchange_boundaries
        self._pending_ends: dict[int, Any] = {}

    # -- declarations ---------------------------------------------------------------

    def _declare(self, name: str, decl: _Decl) -> None:
        if name in self._decls:
            raise ArchetypeError(f"variable {name!r} declared twice")
        self._decls[name] = decl

    def declare_distributed(
        self, name: str, global_init: np.ndarray | None = None
    ) -> "MeshProgramBuilder":
        """A distributed (ghosted) grid array.

        Grid rank ``r`` holds the ghosted local section; the host (when
        present) holds the global array.  ``global_init`` defaults to
        zeros over the decomposition's grid shape.
        """
        if global_init is None:
            global_init = np.zeros(self.decomp.grid_shape)
        elif tuple(global_init.shape) != self.decomp.grid_shape:
            raise ArchetypeError(
                f"{name!r}: global init shape {global_init.shape} != grid "
                f"{self.decomp.grid_shape}"
            )
        self._declare(name, _Decl("distributed", np.asarray(global_init)))
        return self

    def declare_duplicated(self, name: str, value: Any) -> "MeshProgramBuilder":
        """A duplicated variable: every partition (host included) holds a
        synchronised copy."""
        self._declare(name, _Decl("duplicated", value))
        return self

    def declare_host_only(self, name: str, value: Any) -> "MeshProgramBuilder":
        if self.host is None:
            raise ArchetypeError("no host process in this layout")
        self._declare(name, _Decl("host_only", value))
        return self

    def declare_grid_only(
        self, name: str, value: Any | Callable[[int], Any]
    ) -> "MeshProgramBuilder":
        """A grid-process scratch variable; ``value`` may be a factory
        ``rank -> value`` for per-rank shapes."""
        self._declare(name, _Decl("grid_only", value))
        return self

    def _grid_only_value(self, name: str, rank: int) -> Any:
        decl = self._decls[name]
        value = decl.payload
        return value(rank) if callable(value) else deep_copy_value(value)

    # -- stages ---------------------------------------------------------------

    def grid_spmd(
        self, fn: Callable[[AddressSpace, int], None], name: str = ""
    ) -> "MeshProgramBuilder":
        """A local block running ``fn(store, grid_rank)`` on every grid
        process (host idle)."""

        def bind(rank: int):
            def bound(store, _fn=fn, _rank=rank):
                _fn(store, _rank)

            return bound

        fns = {r: bind(r) for r in range(self.grid_size)}
        self._stages.append(LocalBlock(fns, name or f"grid{len(self._stages)}"))
        return self

    def host_block(
        self, fn: Callable[[AddressSpace], None], name: str = ""
    ) -> "MeshProgramBuilder":
        """A local block running only on the host."""
        if self.host is None:
            raise ArchetypeError("no host process in this layout")
        self._stages.append(
            LocalBlock({self.host: fn}, name or f"host{len(self._stages)}")
        )
        return self

    def exchange_boundaries(
        self, *variables: str, corners: bool = False, batch: bool = False
    ) -> "MeshProgramBuilder":
        """Boundary-exchange stages for one or more distributed arrays.

        ``corners=True`` uses the dimension-ordered corner-filling
        variant (one exchange per axis) required by deep-ghost
        redundant computation; the default face-only exchange suffices
        for face-stencil sweeps.

        ``batch=True`` emits one *combined* exchange stage for all the
        variables instead of one stage per variable: same assignments,
        same values, but the refined message-passing form coalesces a
        rank's per-face sends to each neighbour into a single message
        (and wire frame).  Per-variable message counts change, so the
        communication cost model and ``stats`` agreement checks assume
        the unbatched form; batching is opt-in for throughput runs.
        Ignored for ``corners=True`` (the corner variant needs its
        per-axis ordering).
        """
        if batch and not corners and len(variables) > 1:
            for var in variables:
                self._check_kind(var, "distributed")
            op = boundary_exchange_multi_op(self.decomp, variables)
            if op.assignments:
                self._stages.append(op)
            return self
        for var in variables:
            self._check_kind(var, "distributed")
            if corners:
                self._stages.extend(
                    boundary_exchange_ops_with_corners(self.decomp, var)
                )
            else:
                op = boundary_exchange_op(self.decomp, var)
                if op.assignments:
                    self._stages.append(op)
        return self

    def begin_exchange_boundaries(self, *variables: str):
        """The *begin* half of a split (overlapped) boundary exchange.

        Emits the send side of one combined exchange for ``variables``
        and returns a handle for :meth:`end_exchange_boundaries`.  The
        stages appended between begin and end run while the ghost
        frames are in flight; they must not touch the exchanged strips
        or ghosts (the shell/interior split of
        :func:`repro.apps.fdtd.update.split_local_update_regions`
        guarantees this for mesh sweeps).  Returns ``None`` when the
        decomposition has no inter-rank faces; pass it to
        :meth:`end_exchange_boundaries` anyway — both halves skip
        uniformly, and the program degenerates to the unsplit form.
        """
        for var in variables:
            self._check_kind(var, "distributed")
        begin, end = boundary_exchange_split(self.decomp, variables)
        if begin is None:
            return None
        self._stages.append(begin)
        self._pending_ends[id(begin)] = end
        return begin

    def end_exchange_boundaries(self, begin) -> "MeshProgramBuilder":
        """The *end* half of a split boundary exchange: receive into the
        ghost strips.  ``begin`` is the handle from
        :meth:`begin_exchange_boundaries` (``None`` is a no-op)."""
        if begin is None:
            return self
        end = self._pending_ends.pop(id(begin), None)
        if end is None:
            raise ArchetypeError(
                "end_exchange_boundaries: unknown or already-ended begin "
                f"handle {begin.name!r}"
            )
        self._stages.append(end)
        return self

    def distribute(self, *variables: str) -> "MeshProgramBuilder":
        """Host -> grid redistribution of distributed arrays."""
        self._need_host()
        for var in variables:
            self._check_kind(var, "distributed")
            self._stages.append(distribute_stage(self.decomp, var, self.host))
        return self

    def collect(self, *variables: str) -> "MeshProgramBuilder":
        """Grid -> host redistribution of distributed arrays."""
        self._need_host()
        for var in variables:
            self._check_kind(var, "distributed")
            self._stages.append(collect_stage(self.decomp, var, self.host))
        return self

    def read_file(self, var: str, path) -> "MeshProgramBuilder":
        """Archetype file *input*: "the host process read[s] the data
        from the file and then redistribute[s] it to the other (grid)
        processes" (paper §4.2).

        The host block loads a ``.npy`` file into its global copy of
        ``var``; a distribute stage then scatters it.  The file is read
        at *run* time (each execution re-reads it), so the same built
        program can process different inputs.
        """
        self._need_host()
        self._check_kind(var, "distributed")
        path = str(path)
        shape = self.decomp.grid_shape

        def load(store: AddressSpace, _p=path, _v=var, _s=shape) -> None:
            data = np.load(_p)
            if tuple(data.shape) != _s:
                raise ArchetypeError(
                    f"file {_p!r} holds shape {data.shape}, grid is {_s}"
                )
            store.write_region(_v, None, data.astype(np.float64))

        self.host_block(load, name=f"read:{var}")
        return self.distribute(var)

    def write_file(self, var: str, path) -> "MeshProgramBuilder":
        """Archetype file *output*: "the data [is] first ... redistributed
        from the grid processes to the host process and then written to
        the file" (paper §4.2).  Collect stage, then a host block saving
        the global array as ``.npy``."""
        self._need_host()
        self._check_kind(var, "distributed")
        self.collect(var)
        path = str(path)

        def save(store: AddressSpace, _p=path, _v=var) -> None:
            np.save(_p, np.asarray(store[_v]))

        return self.host_block(save, name=f"write:{var}")

    def broadcast_global(self, src_var: str, dst_var: str) -> "MeshProgramBuilder":
        """Broadcast a host/root variable into every grid process —
        the archetype's 'broadcast of global data' (copy-consistency
        re-establishment for duplicated variables)."""
        root = self.host if self.host is not None else 0
        self._stages.append(
            broadcast_stage(range(self.grid_size), src_var, dst_var, root)
        )
        return self

    def reduce(
        self,
        src_var: str,
        result_var: str,
        example: Any,
        op: Callable[[Any, Any], Any] | None = None,
        broadcast_to: str | None = None,
        mode: str = "fold",
    ) -> "MeshProgramBuilder":
        """Reduction of a per-grid-rank partial into the root.

        ``src_var`` must be declared on grid ranks; ``example`` is a
        prototype of one partial (its shape sizes the gather buffer).
        The buffer and ``result_var`` are auto-declared on the root;
        ``broadcast_to``, when given, is auto-declared on grid ranks and
        receives the combined value everywhere.
        """
        root = self.host if self.host is not None else 0
        # Keyed by the result variable: the same source may be reduced
        # many times (e.g. a periodic convergence check).
        buf_var = f"_redbuf_{result_var}"
        buf_init = partials_buffer(self.grid_size, example)
        result_init = np.zeros_like(np.asarray(example, dtype=np.float64))
        if self.host is not None:
            self._declare(buf_var, _Decl("host_only", buf_init))
            if result_var not in self._decls:
                self._declare(result_var, _Decl("host_only", result_init))
        else:
            # Root is grid rank 0: declare per-rank (rank 0 real, others
            # tiny placeholders so stores stay uniform).
            self._declare(
                buf_var,
                _Decl(
                    "grid_only",
                    lambda r, _b=buf_init: _b.copy() if r == 0 else np.zeros(0),
                ),
            )
            if result_var not in self._decls:
                self._declare(
                    result_var,
                    _Decl(
                        "grid_only",
                        lambda r, _z=result_init: _z.copy(),
                    ),
                )
        self._stages.append(
            gather_stage(range(self.grid_size), src_var, buf_var, root)
        )
        self._stages.append(
            combine_block(
                buf_var, result_var, self.grid_size, root, op, mode=mode
            )
        )
        if broadcast_to is not None:
            if broadcast_to not in self._decls:
                self._declare(
                    broadcast_to,
                    _Decl("grid_only", lambda r, _z=result_init: _z.copy()),
                )
            self._stages.append(
                broadcast_stage(
                    range(self.grid_size), result_var, broadcast_to, root
                )
            )
        return self

    # -- outputs ---------------------------------------------------------------

    def initial_stores(self) -> list[dict[str, Any]]:
        """Per-partition initial stores from the declarations."""
        stores: list[dict[str, Any]] = [{} for _ in range(self.nprocs)]
        for name, decl in self._decls.items():
            if decl.kind == "distributed":
                locals_ = scatter_array(self.decomp, decl.payload)
                for rank in range(self.grid_size):
                    stores[rank][name] = locals_[rank]
                if self.host is not None:
                    stores[self.host][name] = decl.payload.copy()
            elif decl.kind == "duplicated":
                for rank in range(self.nprocs):
                    stores[rank][name] = deep_copy_value(decl.payload)
            elif decl.kind == "host_only":
                stores[self.host][name] = deep_copy_value(decl.payload)
            elif decl.kind == "grid_only":
                for rank in range(self.grid_size):
                    stores[rank][name] = self._grid_only_value(name, rank)
        return stores

    def build(self) -> SimulatedParallelProgram:
        """The simulated-parallel program (validated)."""
        program = SimulatedParallelProgram(
            self.nprocs, list(self._stages), name=self.name
        )
        program.validate()
        return program

    def run_simulated(self) -> list[AddressSpace]:
        """Build and run the simulated-parallel program sequentially."""
        stores = [
            AddressSpace(s, owner=i)
            for i, s in enumerate(self.initial_stores())
        ]
        return self.build().run(stores=stores)

    def to_parallel(self) -> System:
        """Build and mechanically transform to a process system."""
        return to_parallel_system(
            self.build(), initial_stores=self.initial_stores()
        )

    # -- internals ---------------------------------------------------------------

    def _need_host(self) -> None:
        if self.host is None:
            raise ArchetypeError(
                "this layout has no host process; redistribution stages "
                "need one (use use_host=True)"
            )

    def _check_kind(self, var: str, kind: str) -> None:
        decl = self._decls.get(var)
        if decl is None:
            raise ArchetypeError(f"variable {var!r} not declared")
        if decl.kind != kind:
            raise ArchetypeError(
                f"variable {var!r} is {decl.kind}, stage needs {kind}"
            )
