"""Reduction support for the mesh archetype.

The paper lists two implementations of reduction (section 4.2): the
all-to-one/one-to-all pattern and recursive doubling.  For the
*simulated-parallel program* form, reductions decompose into ordinary
stages:

1. (caller's job) a local block computing each rank's partial result;
2. a **gather exchange** collecting every partial into a buffer on the
   root — ``root.buf[k] := P_k.partial``;
3. a **combine block** on the root folding the buffer *in rank order*
   (fixed order: deterministic floating point);
4. optionally a **broadcast exchange** ``P_k.result := root.result``.

Reordering real summands is exactly what broke the paper's far-field
results, so the combine step's fixed rank order is load-bearing: it
makes the reduction deterministic *given* the decomposition, while
still differing (legitimately) from the sequential program's order —
the phenomenon experiment E2 measures.

The direct message-passing counterparts (all-to-one, one-to-all,
recursive doubling over a communicator) live in
:mod:`repro.runtime.collectives`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ArchetypeError
from repro.refinement.dataexchange import DataExchange, VarRef
from repro.refinement.program import LocalBlock

__all__ = [
    "gather_stage",
    "combine_block",
    "broadcast_stage",
    "reduce_stages",
    "partials_buffer",
]


def partials_buffer(nranks: int, example: np.ndarray | float) -> np.ndarray:
    """Initial value for a root-side gather buffer: one slot per rank."""
    arr = np.asarray(example, dtype=np.float64)
    return np.zeros((nranks, *arr.shape), dtype=np.float64)


def gather_stage(
    ranks: Sequence[int],
    src_var: str,
    buf_var: str,
    root: int,
) -> DataExchange:
    """``root.buf[k] := ranks[k].src`` for every k (root's own entry is
    a local assignment).  Only the root receives, so the participant set
    is ``{root}`` (restriction (iii) narrowed, as documented)."""
    op = DataExchange(name=f"gather:{src_var}", participants=frozenset({root}))
    for k, rank in enumerate(ranks):
        op.assign(VarRef(root, buf_var, (k,)), VarRef(rank, src_var))
    return op


def neumaier_fold(buf: np.ndarray) -> np.ndarray:
    """Elementwise Neumaier (improved Kahan) summation over axis 0.

    The compensated-combine used by ``mode="kahan"``: each element of
    the result is the compensated sum of that element's per-rank
    partials, accurate to ~1 ulp of the exact value regardless of the
    number or order of partials — the "more sophisticated strategy" the
    paper notes it did not pursue for the far-field reduction.
    """
    buf = np.asarray(buf, dtype=np.float64)
    acc = buf[0].copy() if buf.ndim > 1 else np.float64(buf[0])
    comp = np.zeros_like(acc)
    for k in range(1, buf.shape[0]):
        v = buf[k]
        t = acc + v
        big = np.abs(acc) >= np.abs(v)
        comp = comp + np.where(big, (acc - t) + v, (v - t) + acc)
        acc = t
    return acc + comp


def combine_block(
    buf_var: str,
    result_var: str,
    nranks: int,
    root_local_index: int,
    op: Callable[[Any, Any], Any] | None = None,
    name: str = "",
    mode: str = "fold",
) -> LocalBlock:
    """Combine the gather buffer on the root.

    ``mode="fold"`` (default) folds in rank order with ``op`` (default
    addition) — deterministic for a given P, but a *reordering* of the
    original sequential sum, hence the far-field discrepancy.
    ``mode="kahan"`` ignores ``op`` and combines with elementwise
    compensated summation (:func:`neumaier_fold`), which is accurate to
    the last bit or two of the exact sum and therefore nearly
    independent of P.
    """
    if mode not in ("fold", "kahan"):
        raise ArchetypeError(f"unknown combine mode {mode!r}")
    if mode == "kahan" and op is not None:
        raise ArchetypeError("mode='kahan' is addition-only; drop op")
    combine = op or (lambda a, b: a + b)

    def fold(store) -> None:
        buf = store[buf_var]
        if mode == "kahan":
            acc = neumaier_fold(np.asarray(buf))
        else:
            acc = np.asarray(buf[0]).copy()
            for k in range(1, nranks):
                acc = combine(acc, buf[k])
        store.write_region(result_var, None, acc)

    return LocalBlock({root_local_index: fold}, name or f"combine:{result_var}")


def broadcast_stage(
    ranks: Sequence[int],
    src_var: str,
    dst_var: str,
    root: int,
) -> DataExchange:
    """``P_k.dst := root.src`` for every k, including the root itself.

    Requires ``dst_var != src_var`` (otherwise the root's target would
    overlap every other assignment's source, violating restriction (i));
    in exchange, every participant receives a value, satisfying
    restriction (iii) in full.
    """
    if dst_var == src_var:
        raise ArchetypeError(
            "broadcast_stage needs distinct source and destination "
            f"variables, got {src_var!r} for both (the root's local copy "
            "would violate data-exchange restriction (i))"
        )
    op = DataExchange(
        name=f"broadcast:{src_var}", participants=frozenset(ranks)
    )
    for rank in ranks:
        op.assign(VarRef(rank, dst_var), VarRef(root, src_var))
    return op


def reduce_stages(
    ranks: Sequence[int],
    src_var: str,
    result_var: str,
    buf_var: str,
    root: int,
    op: Callable[[Any, Any], Any] | None = None,
    broadcast_to: str | None = None,
    mode: str = "fold",
):
    """The full reduction pipeline as program stages.

    Returns ``[gather, combine]`` — plus a broadcast of the root's
    ``result_var`` into every rank's ``broadcast_to`` variable when
    requested.  The caller must provision ``buf_var`` on the root (use
    :func:`partials_buffer`) and ``result_var`` on the root (and
    ``broadcast_to`` everywhere, when used).
    """
    stages: list = [
        gather_stage(ranks, src_var, buf_var, root),
        combine_block(buf_var, result_var, len(ranks), root, op, mode=mode),
    ]
    if broadcast_to is not None:
        stages.append(broadcast_stage(ranks, result_var, broadcast_to, root))
    return stages
