"""Boundary-exchange operations.

The first and most important mesh-archetype communication operation:
refresh every rank's ghost strips with the neighbouring ranks' owned
boundary strips.  Provided in the two forms the methodology needs:

* :func:`boundary_exchange_op` — a checked
  :class:`~repro.refinement.dataexchange.DataExchange` for use inside a
  sequential simulated-parallel program (and, through
  :func:`~repro.refinement.transform.to_parallel_system`, mechanically
  as message passing);
* :func:`exchange_boundaries_msg` — a direct message-passing routine
  for hand-written process bodies using a
  :class:`~repro.runtime.communicator.Communicator` (the "archetype
  library routine" form, paper section 3.3): all sends posted first,
  then all receives, per the ordering Theorem 1's application
  prescribes.
"""

from __future__ import annotations

import numpy as np

from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.archetypes.mesh.ghost import ghost_face_region, owned_face_region
from repro.obs.observer import observer_of
from repro.refinement.dataexchange import DataExchange, VarRef
from repro.refinement.split import ExchangeBegin, ExchangeEnd, split_exchange
from repro.runtime.communicator import Communicator

__all__ = [
    "boundary_exchange_op",
    "boundary_exchange_multi_op",
    "boundary_exchange_split",
    "boundary_exchange_ops_with_corners",
    "exchange_boundaries_msg",
]


def boundary_exchange_op(
    decomp: BlockDecomposition,
    var: str,
    name: str = "",
    rank_offset: int = 0,
) -> DataExchange:
    """The boundary exchange for ``var`` as a data-exchange operation.

    For every inter-process face, one assignment copies the sender's
    owned strip into the receiver's ghost strip.  ``rank_offset`` shifts
    partition numbers (used when grid processes do not start at
    partition 0, e.g. in a layout with a separate host process).

    With a single process there are no faces: the returned operation is
    empty, with an empty participant set (a no-op stage).
    """
    op = DataExchange(name=name or f"exchange:{var}")
    receivers: set[int] = set()
    for rank, axis, direction, nb in decomp.all_faces():
        # ``rank`` receives into its ghost strip on side ``direction``
        # from neighbour ``nb``'s owned strip on the opposite side.
        dst = VarRef(
            rank + rank_offset,
            var,
            ghost_face_region(decomp, rank, axis, direction),
        )
        src = VarRef(
            nb + rank_offset,
            var,
            owned_face_region(decomp, nb, axis, -direction),
        )
        op.assign(dst, src)
        receivers.add(rank + rank_offset)
    op.participants = frozenset(receivers)
    return op


def boundary_exchange_multi_op(
    decomp: BlockDecomposition,
    variables,
    name: str = "",
    rank_offset: int = 0,
) -> DataExchange:
    """One *combined* boundary exchange covering several variables.

    Semantically identical to a sequence of per-variable
    :func:`boundary_exchange_op` stages — the assignment set is the
    union, and assignments to distinct variables (or distinct faces)
    never overlap, so restriction (i) holds and the copied values are
    bitwise the same.  The payoff is in the refined message-passing
    form: the transform groups assignments per (sender, receiver), so
    every variable's strip for a neighbour pair folds into **one**
    message — one wire frame where the per-variable form pays one per
    variable (paper §3's per-pair grouping, applied across fields).
    """
    variables = list(variables)
    op = DataExchange(name=name or "exchange:" + "+".join(variables))
    receivers: set[int] = set()
    for rank, axis, direction, nb in decomp.all_faces():
        for var in variables:
            dst = VarRef(
                rank + rank_offset,
                var,
                ghost_face_region(decomp, rank, axis, direction),
            )
            src = VarRef(
                nb + rank_offset,
                var,
                owned_face_region(decomp, nb, axis, -direction),
            )
            op.assign(dst, src)
        receivers.add(rank + rank_offset)
    op.participants = frozenset(receivers)
    return op


def boundary_exchange_split(
    decomp: BlockDecomposition,
    variables,
    name: str = "",
    rank_offset: int = 0,
) -> tuple[ExchangeBegin, ExchangeEnd] | tuple[None, None]:
    """The combined boundary exchange as a *split* begin/end stage pair
    — the mesh archetype's compute/communication overlap form.

    The operation is exactly :func:`boundary_exchange_multi_op` (one
    frame per neighbour pair); splitting changes only *when* each half
    runs.  The begin stage reads the owned strips and launches the
    sends; the caller then appends interior-only local blocks (which by
    construction touch neither the strips just read nor the ghost cells
    about to be written); the end stage receives into the ghost strips
    at the point of first use.  With a single process there are no
    faces and no stages: returns ``(None, None)`` so builders can skip
    the pair the same way they skip an empty exchange.
    """
    op = boundary_exchange_multi_op(
        decomp, variables, name=name, rank_offset=rank_offset
    )
    if not op.assignments:
        return None, None
    return split_exchange(op)


def boundary_exchange_ops_with_corners(
    decomp: BlockDecomposition,
    var: str,
    name: str = "",
    rank_offset: int = 0,
) -> list[DataExchange]:
    """Dimension-ordered exchanges that also fill ghost *corners*.

    One :class:`~repro.refinement.dataexchange.DataExchange` per axis,
    applied in axis order: the axis-``a`` strips span the full local
    extent along every earlier axis, so they carry the ghost values
    received in those earlier exchanges — after the last exchange every
    ghost cell (faces, edges and corners) holds its neighbour's value.
    This is the exchange deep-ghost redundant computation
    (:mod:`~repro.archetypes.mesh.redundancy`) requires; the plain
    face exchange (:func:`boundary_exchange_op`) suffices for
    face-stencil sweeps with exchange every step.
    """
    base = name or f"exchange+corners:{var}"
    ops: list[DataExchange] = []
    for axis in range(decomp.ndim):
        op = DataExchange(name=f"{base}[axis{axis}]")
        receivers: set[int] = set()
        for rank in range(decomp.nprocs):
            for direction in (-1, 1):
                nb = decomp.pgrid.neighbor(rank, axis, direction)
                if nb is None:
                    continue
                op.assign(
                    VarRef(
                        rank + rank_offset,
                        var,
                        ghost_face_region(
                            decomp, rank, axis, direction, full_span_below=True
                        ),
                    ),
                    VarRef(
                        nb + rank_offset,
                        var,
                        owned_face_region(
                            decomp, nb, axis, -direction, full_span_below=True
                        ),
                    ),
                )
                receivers.add(rank + rank_offset)
        op.participants = frozenset(receivers)
        if op.assignments:
            ops.append(op)
    return ops


def exchange_boundaries_msg(
    comm: Communicator,
    decomp: BlockDecomposition,
    grid_rank: int,
    local: np.ndarray,
    tag_base: int = 0,
    rank_offset: int = 0,
) -> None:
    """Message-passing boundary exchange for one rank's ghosted array.

    ``grid_rank`` is the rank within the decomposition;
    ``comm.rank`` must equal ``grid_rank + rank_offset``.  Tags encode
    (axis, direction) so the two messages that cross on one face cannot
    be confused; ``tag_base`` isolates successive exchanges.

    All sends are posted before any receive — the exchange can never
    self-block, in any interleaving.

    When the run is observed, the two phases appear as spans
    ``exchange:send`` and ``exchange:recv`` (category ``exchange``), so
    the timeline separates the copy-out/post cost from the wait for
    neighbours.
    """
    obs = observer_of(comm.ctx)
    # Phase 1: copy out and send every face strip.
    with obs.span(comm.rank, "exchange:send", cat="exchange"):
        for axis in range(decomp.ndim):
            for direction in (-1, 1):
                nb = decomp.pgrid.neighbor(grid_rank, axis, direction)
                if nb is None:
                    continue
                strip = local[
                    owned_face_region(decomp, grid_rank, axis, direction)
                ]
                tag = tag_base + 4 * axis + (0 if direction == -1 else 1)
                comm.send(strip.copy(), dest=nb + rank_offset, tag=tag)
    # Phase 2: receive every ghost strip.
    with obs.span(comm.rank, "exchange:recv", cat="exchange"):
        for axis in range(decomp.ndim):
            for direction in (-1, 1):
                nb = decomp.pgrid.neighbor(grid_rank, axis, direction)
                if nb is None:
                    continue
                # The neighbour sent toward us: it used direction
                # -direction, whose tag parity is
                # (0 if -direction == -1 else 1).
                tag = tag_base + 4 * axis + (0 if direction == 1 else 1)
                strip = comm.recv(source=nb + rank_offset, tag=tag)
                local[
                    ghost_face_region(decomp, grid_rank, axis, direction)
                ] = strip
