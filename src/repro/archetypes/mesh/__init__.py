"""The mesh archetype (paper section 4.2).

Computational pattern: operations over 1-3-D grids — pointwise /
stencil grid operations, reductions, and file I/O, with duplicated
global variables.  Parallelization strategy: block decomposition into
contiguous local sections with ghost boundaries, a host process for
I/O, and a small communication library (boundary exchange, broadcast,
reduction, host redistribution).

Importing this package registers the archetype under the name
``"mesh"`` (see :func:`repro.archetypes.get_archetype`).
"""

from repro.archetypes.mesh.decomposition import (
    BlockDecomposition,
    ProcessGrid,
    block_bounds,
    choose_process_grid,
    factorizations,
)
from repro.archetypes.mesh.ghost import (
    face_region_shape,
    ghost_face_region,
    owned_face_region,
)
from repro.archetypes.mesh.distributed_grid import (
    fill_ghosts_from_global,
    gather_array,
    local_like,
    scatter_array,
)
from repro.archetypes.mesh.exchange import (
    boundary_exchange_op,
    boundary_exchange_ops_with_corners,
    exchange_boundaries_msg,
)
from repro.archetypes.mesh.reduction import (
    broadcast_stage,
    combine_block,
    gather_stage,
    partials_buffer,
    reduce_stages,
)
from repro.archetypes.mesh.gio import collect_stage, distribute_stage
from repro.archetypes.mesh.skeleton import MeshProgramBuilder
from repro.archetypes.mesh.library import MESH_ARCHETYPE
from repro.archetypes.mesh.redundancy import (
    add_redundant_sweeps,
    extended_sweep_region,
    redundant_comm_volume,
)

__all__ = [
    "BlockDecomposition",
    "ProcessGrid",
    "block_bounds",
    "choose_process_grid",
    "factorizations",
    "owned_face_region",
    "ghost_face_region",
    "face_region_shape",
    "scatter_array",
    "gather_array",
    "local_like",
    "fill_ghosts_from_global",
    "boundary_exchange_op",
    "boundary_exchange_ops_with_corners",
    "exchange_boundaries_msg",
    "gather_stage",
    "combine_block",
    "broadcast_stage",
    "reduce_stages",
    "partials_buffer",
    "distribute_stage",
    "collect_stage",
    "MeshProgramBuilder",
    "MESH_ARCHETYPE",
    "add_redundant_sweeps",
    "extended_sweep_region",
    "redundant_comm_volume",
]
