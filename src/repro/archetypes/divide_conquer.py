"""The divide-and-conquer archetype.

The paper's own example of a *sequential* programming archetype is "the
familiar divide-and-conquer paradigm" (section 2.1); this module
develops its parallel counterpart, as the future-work programme asks
("identifying and developing additional archetypes").

* **computational pattern** — a problem solved by recursive splitting:
  ``solve(x) = merge(solve(left(x)), solve(right(x)))`` down to a base
  case;
* **parallelization strategy** — a fork-join binary tree over
  ``P = 2^k`` processes: at tree level ``l``, each active process
  splits its subproblem, keeps the left half and ships the right half
  to its partner (``rank + P / 2^(l+1)``); after ``k`` levels every
  process solves a leaf subproblem locally; results merge back up the
  same tree;
* **transformations** — :class:`DivideConquerBuilder` emits the
  simulated-parallel form: an alternating sequence of split blocks and
  *downsweep* exchanges, one solve block, then *upsweep* exchanges and
  merge blocks; result shapes at every level are inferred by a dry run
  on zero-filled dummies at build time, so all exchange regions are
  statically checkable;
* **a property worth noticing** — unlike the mesh reduction, the
  parallel merge tree has exactly the same combining *shape* as the
  sequential recursion, so divide-and-conquer reductions are bitwise
  reproducible even for non-associative floating-point merges: the
  archetype that avoids the paper's far-field pitfall by construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.archetypes.base import Archetype, ArchetypeOperation, register_archetype
from repro.errors import ArchetypeError
from repro.refinement.dataexchange import DataExchange, VarRef
from repro.refinement.program import LocalBlock, SimulatedParallelProgram
from repro.refinement.store import AddressSpace
from repro.refinement.transform import to_parallel_system
from repro.runtime.system import System

__all__ = [
    "DC_ARCHETYPE",
    "DivideConquerBuilder",
    "sequential_divide_conquer",
]

SolveFn = Callable[[np.ndarray], np.ndarray]
MergeFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

DC_ARCHETYPE = register_archetype(
    Archetype(
        name="divide-conquer",
        description=(
            "recursive problem splitting over a fork-join binary process "
            "tree: split down, solve leaves concurrently, merge up"
        ),
        operations=[
            ArchetypeOperation(
                "split", "local", "halve the current subproblem"
            ),
            ArchetypeOperation(
                "fork",
                "exchange",
                "ship the right half to the partner one tree level down",
            ),
            ArchetypeOperation(
                "solve", "local", "solve a leaf subproblem"
            ),
            ArchetypeOperation(
                "join",
                "exchange",
                "return the partner's result one tree level up",
            ),
            ArchetypeOperation(
                "merge", "local", "combine two child results"
            ),
        ],
        guidelines=(
            "divide-and-conquer archetype guidelines:\n"
            "1. The problem must split into halves of predictable shape\n"
            "   (P = 2^k processes; leaf size = n / P).\n"
            "2. solve and merge must be pure and deterministic; the\n"
            "   parallel merge tree then reproduces the sequential\n"
            "   recursion bit for bit, non-associative floats included.\n"
            "3. Downsweep: level l actives split and send right halves\n"
            "   to rank + P/2^(l+1); upsweep mirrors it."
        ),
    )
)


def sequential_divide_conquer(
    problem: np.ndarray,
    solve: SolveFn,
    merge: MergeFn,
    leaf_size: int,
) -> np.ndarray:
    """The original sequential program: the recursion itself."""
    problem = np.asarray(problem, dtype=np.float64)
    if len(problem) <= leaf_size:
        return np.asarray(solve(problem.copy()), dtype=np.float64)
    mid = len(problem) // 2
    left = sequential_divide_conquer(problem[:mid], solve, merge, leaf_size)
    right = sequential_divide_conquer(problem[mid:], solve, merge, leaf_size)
    return np.asarray(merge(left, right), dtype=np.float64)


class DivideConquerBuilder:
    """Build the simulated-parallel fork-join tree for ``P = 2^k``.

    Parameters
    ----------
    problem:
        1-D float array whose length is divisible by ``nprocs``.
    solve, merge:
        The leaf solver and the combiner; pure and deterministic.
    nprocs:
        A power of two.
    """

    def __init__(
        self,
        problem: np.ndarray,
        solve: SolveFn,
        merge: MergeFn,
        nprocs: int,
        name: str = "divide-conquer",
    ):
        problem = np.asarray(problem, dtype=np.float64)
        if problem.ndim != 1 or len(problem) == 0:
            raise ArchetypeError("problem must be a non-empty 1-D array")
        if nprocs < 1 or (nprocs & (nprocs - 1)) != 0:
            raise ArchetypeError(
                f"nprocs must be a power of two, got {nprocs}"
            )
        if len(problem) % nprocs != 0:
            raise ArchetypeError(
                f"problem length {len(problem)} not divisible by {nprocs}"
            )
        self.problem = problem
        self.solve = solve
        self.merge = merge
        self.nprocs = nprocs
        self.levels = int(np.log2(nprocs))
        self.name = name
        self.leaf_size = len(problem) // nprocs

        # Dry-run shape inference for the upsweep: result shape per level.
        dummy = np.zeros(self.leaf_size)
        shapes: list[tuple[int, ...]] = []
        value = np.asarray(self.solve(dummy), dtype=np.float64)
        shapes.append(value.shape)  # level k (leaves)
        for _ in range(self.levels):
            value = np.asarray(self.merge(value, value.copy()), dtype=np.float64)
            shapes.append(value.shape)
        # shapes[j] = result shape after j merges above the leaves.
        self._up_shapes = shapes

    # -- rank/tree helpers -------------------------------------------------------

    def _active(self, level: int) -> list[int]:
        """Ranks holding a subproblem at tree level ``level`` (0 = root)."""
        stride = self.nprocs >> level
        return list(range(0, self.nprocs, stride))

    def _partner(self, rank: int, level: int) -> int:
        """The rank receiving the right half at downsweep level ``level``."""
        return rank + (self.nprocs >> (level + 1))

    def _down_len(self, level: int) -> int:
        return len(self.problem) >> level

    def _up_shape(self, level: int) -> tuple[int, ...]:
        """Result shape held by a level-``level`` subtree root."""
        return self._up_shapes[self.levels - level]

    # -- stores ---------------------------------------------------------------

    def initial_stores(self) -> list[dict]:
        stores: list[dict] = [{} for _ in range(self.nprocs)]
        for rank in range(self.nprocs):
            store = stores[rank]
            for level in range(self.levels + 1):
                if rank in self._active(level):
                    store[f"down{level}"] = (
                        self.problem.copy()
                        if level == 0 and rank == 0
                        else np.zeros(self._down_len(level))
                    )
            for level in range(self.levels, -1, -1):
                if rank in self._active(level):
                    store[f"up{level}"] = np.zeros(self._up_shape(level))
            # receive buffer per upsweep level where this rank merges
            for level in range(self.levels):
                if rank in self._active(level):
                    store[f"join{level}"] = np.zeros(self._up_shape(level + 1))
        return stores

    # -- the program ------------------------------------------------------------

    def build(self) -> SimulatedParallelProgram:
        prog = SimulatedParallelProgram(self.nprocs, name=self.name)
        k = self.levels

        # Downsweep: split + fork per level.
        for level in range(k):
            actives = self._active(level)
            half = self._down_len(level) // 2

            def make_split(level=level, half=half):
                def split(store: AddressSpace) -> None:
                    current = store[f"down{level}"]
                    store[f"down{level + 1}"][...] = current[:half]

                return split

            prog.stages.append(
                LocalBlock(
                    {r: make_split() for r in actives}, name=f"split{level}"
                )
            )
            fork = DataExchange(
                name=f"fork{level}",
                participants=frozenset(
                    self._partner(r, level) for r in actives
                ),
            )
            for r in actives:
                fork.assign(
                    VarRef(self._partner(r, level), f"down{level + 1}"),
                    VarRef(r, f"down{level}", (slice(half, 2 * half),)),
                )
            prog.stages.append(fork)

        # Leaves: everyone solves.
        def make_solve():
            solve = self.solve

            def run(store: AddressSpace) -> None:
                result = np.asarray(
                    solve(store[f"down{k}"].copy()), dtype=np.float64
                )
                store[f"up{k}"][...] = result

            return run

        prog.stages.append(
            LocalBlock(
                {r: make_solve() for r in range(self.nprocs)}, name="solve"
            )
        )

        # Upsweep: join + merge per level, mirrored.
        for level in range(k - 1, -1, -1):
            actives = self._active(level)
            join = DataExchange(
                name=f"join{level}", participants=frozenset(actives)
            )
            for r in actives:
                join.assign(
                    VarRef(r, f"join{level}"),
                    VarRef(self._partner(r, level), f"up{level + 1}"),
                )
            prog.stages.append(join)

            def make_merge(level=level):
                merge = self.merge

                def run(store: AddressSpace) -> None:
                    combined = np.asarray(
                        merge(
                            store[f"up{level + 1}"].copy(),
                            store[f"join{level}"].copy(),
                        ),
                        dtype=np.float64,
                    )
                    store[f"up{level}"][...] = combined

                return run

            prog.stages.append(
                LocalBlock(
                    {r: make_merge() for r in actives}, name=f"merge{level}"
                )
            )
        return prog

    # -- execution ---------------------------------------------------------------

    def sequential_reference(self) -> np.ndarray:
        return sequential_divide_conquer(
            self.problem, self.solve, self.merge, self.leaf_size
        )

    def run_simulated(self) -> np.ndarray:
        stores = [
            AddressSpace(s, owner=i)
            for i, s in enumerate(self.initial_stores())
        ]
        self.build().run(stores=stores)
        return np.asarray(stores[0]["up0"])

    def to_parallel(self) -> System:
        return to_parallel_system(
            self.build(), initial_stores=self.initial_stores()
        )

    @staticmethod
    def result_from(system_result) -> np.ndarray:
        return np.asarray(system_result.stores[0]["up0"])
