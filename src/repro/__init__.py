"""repro — archetype-guided stepwise refinement of parallel programs.

A full reproduction of B. L. Massingill, *Experiments with Program
Parallelization Using Archetypes and Stepwise Refinement* (IPPS 1998):

* :mod:`repro.runtime` — the paper's parallel model: deterministic
  processes, SRSW channels with infinite slack, threaded ("real
  parallel") and cooperative ("simulated") execution engines, tagged
  communicators and collectives;
* :mod:`repro.theory` — Theorem 1 made executable: happens-before,
  constructive interleaving permutation, empirical determinacy,
  exhaustive enumeration, hypothesis-violation counterexamples;
* :mod:`repro.refinement` — sequential simulated-parallel programs
  (local blocks + checked data-exchange operations) and their
  mechanical transformation to message passing;
* :mod:`repro.archetypes` — the archetype framework and the full mesh
  archetype (block decomposition, ghost exchange, reductions, host
  I/O redistribution, program-builder skeleton);
* :mod:`repro.apps.fdtd` — the electromagnetics application: 3-D FDTD
  (Versions A and C, near field and far field) and its
  archetype-guided parallelization;
* :mod:`repro.numerics` — summation-order analysis (the far-field
  associativity finding, and its compensated-summation fix);
* :mod:`repro.perfmodel` — the machine-model substitution regenerating
  Table 1 and Figure 2 shapes.

Run the experiments with ``python -m repro <experiment>`` (see
``python -m repro --help``), and see DESIGN.md / EXPERIMENTS.md for the
system inventory and the paper-vs-measured record.
"""

__version__ = "1.0.0"

from repro import errors
from repro.errors import ReproError

__all__ = ["errors", "ReproError", "__version__"]
