"""Theorem 1 machinery.

The paper's Theorem 1: *given deterministic processes with no shared
variables except single-reader single-writer channels with infinite
slack, any two maximal interleavings starting in the same initial state
both terminate, in the same final state.*  Its proof permutes one
interleaving into the other without changing the final state.

This package makes the theorem and its proof technique executable:

* :mod:`~repro.theory.events` / :mod:`~repro.theory.happens_before` —
  traces and the dependence (happens-before) relation over them;
* :mod:`~repro.theory.permute` — the constructive permutation of the
  proof: transform one recorded interleaving into another by swapping
  adjacent *independent* actions;
* :mod:`~repro.theory.determinacy` — the empirical statement: run a
  system under many schedules (and under free-running threads) and
  check all final states coincide;
* :mod:`~repro.theory.enumerate` — exhaustive enumeration of *all*
  maximal interleavings of small systems;
* :mod:`~repro.theory.violations` — what breaks when each hypothesis is
  dropped (shared variables, multi-writer channels, nondeterministic
  bodies, finite slack).
"""

from repro.theory.events import Event, Trace, event_key, trace_keys
from repro.theory.happens_before import HappensBefore
from repro.theory.permute import permute_interleaving, PermutationCertificate
from repro.theory.determinacy import (
    DeterminacyReport,
    check_determinacy,
    state_digest,
)
from repro.theory.enumerate import (
    EnumerationResult,
    count_interleavings,
    count_trace_classes,
    enumerate_interleavings,
    run_prefix,
)
from repro.theory.foata import (
    FoataForm,
    foata_normal_form,
    frontier,
    parallelism_profile,
)
from repro.theory.por import (
    ReducedEnumeration,
    enumerate_reduced,
    independent_actions,
)

__all__ = [
    "Event",
    "Trace",
    "event_key",
    "trace_keys",
    "HappensBefore",
    "permute_interleaving",
    "PermutationCertificate",
    "DeterminacyReport",
    "check_determinacy",
    "state_digest",
    "EnumerationResult",
    "enumerate_interleavings",
    "count_interleavings",
    "count_trace_classes",
    "run_prefix",
    "FoataForm",
    "foata_normal_form",
    "frontier",
    "parallelism_profile",
    "ReducedEnumeration",
    "enumerate_reduced",
    "independent_actions",
]
