"""The constructive permutation at the heart of the Theorem 1 proof.

The proof of Theorem 1 (paper section 3.2) shows that any maximal
interleaving ``I'`` can be permuted, step by step, into any other
maximal interleaving ``I`` of the same processes from the same initial
state, without changing the final state.  Each step swaps two
*adjacent, independent* actions — independent meaning unrelated by the
happens-before relation, so the swap is invisible to every process.

:func:`permute_interleaving` performs that construction on two recorded
traces and returns a :class:`PermutationCertificate`: the explicit list
of adjacent transpositions, each verified independent against the
happens-before relation of the source trace.  The existence of the
certificate *is* the proof step; its length measures how different the
two schedules were.

The function requires the two traces to contain the same actions (same
per-process action sequences — Theorem 1 guarantees this for conforming
systems, and :func:`~repro.theory.events.check_same_action_sequences`
verifies it up front).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.trace import Trace
from repro.theory.events import check_same_action_sequences, trace_keys
from repro.theory.happens_before import HappensBefore

__all__ = ["PermutationCertificate", "permute_interleaving", "PermutationError"]


class PermutationError(ReproError):
    """The two traces are not permutations of one another, or a required
    swap would exchange dependent events (impossible for traces produced
    by a conforming system — seeing this means a hypothesis of Theorem 1
    is violated)."""


@dataclass
class PermutationCertificate:
    """Evidence that ``source`` can be permuted into ``target``.

    ``swaps`` lists adjacent transpositions as positions in the evolving
    sequence: ``(p, key_left, key_right)`` means the events at positions
    ``p`` and ``p+1`` (identified by their position-independent keys)
    were exchanged, and were verified independent.
    """

    source_schedule: list[int]
    target_schedule: list[int]
    swaps: list[tuple[int, tuple[int, int], tuple[int, int]]] = field(
        default_factory=list
    )

    @property
    def num_swaps(self) -> int:
        return len(self.swaps)

    def summary(self) -> str:
        return (
            f"permuted a {len(self.source_schedule)}-action interleaving "
            f"into another via {self.num_swaps} adjacent swaps of "
            "independent actions"
        )


def permute_interleaving(source: Trace, target: Trace) -> PermutationCertificate:
    """Permute ``source`` into ``target`` by adjacent independent swaps.

    Both traces must record complete executions of the same system from
    the same initial state.  Returns the certificate; raises
    :class:`PermutationError` if the traces are not action-equivalent or
    if a dependent swap would be required (which cannot happen for
    conforming systems — the happens-before relations of the two traces
    coincide, and bubbling by selection never inverts a dependence).
    """
    if len(source) != len(target):
        raise PermutationError(
            f"traces have different lengths ({len(source)} vs {len(target)}); "
            "not interleavings of the same actions"
        )
    if not check_same_action_sequences(source, target):
        raise PermutationError(
            "per-process action sequences differ between the traces; "
            "Theorem 1's hypotheses are violated (nondeterministic process "
            "or differing initial state?)"
        )

    hb = HappensBefore(source)
    src_keys = trace_keys(source)  # key at each source position
    tgt_keys = trace_keys(target)

    # Work on a mutable copy of the source order; each element is the
    # *source position* of the event (so independence can be queried on
    # the source happens-before relation).
    current: list[int] = list(range(len(source)))
    pos_of_key = {k: i for i, k in enumerate(src_keys)}
    swaps: list[tuple[int, tuple[int, int], tuple[int, int]]] = []

    for i, want_key in enumerate(tgt_keys):
        want_src_pos = pos_of_key[want_key]
        j = current.index(want_src_pos, i)
        # Bubble the wanted event left to position i, one adjacent swap
        # at a time.  Every event it passes must be independent of it:
        # if some passed event happened-before it, the target order
        # would not be a linear extension of happens-before, i.e. not a
        # legal interleaving of the same system.
        while j > i:
            left, right = current[j - 1], current[j]
            if not hb.independent(left, right):
                raise PermutationError(
                    f"required swap of dependent events at positions "
                    f"{j-1},{j} (source events {left} and {right}); the "
                    "target is not a legal interleaving of the source's "
                    "actions"
                )
            current[j - 1], current[j] = right, left
            swaps.append((j - 1, src_keys[right], src_keys[left]))
            j -= 1

    return PermutationCertificate(
        source_schedule=source.schedule(),
        target_schedule=target.schedule(),
        swaps=swaps,
    )
