"""Counterexample systems: Theorem 1 with a hypothesis removed.

Each builder returns a system (plus, where needed, an unsafe channel
variant) that satisfies *all but one* of Theorem 1's hypotheses, and
whose final state genuinely depends on the interleaving — demonstrating
that every hypothesis is load-bearing:

* :func:`shared_variable_system` — processes share a mutable variable
  (violates "no shared variables"): lost updates under some schedules;
* :func:`multi_writer_channel_system` — two writers on one channel
  (violates single-writer): the reader's view depends on send order;
* :func:`nondeterministic_body_system` — a body consults the channel
  *depth*, which is schedule-dependent state outside the model
  (violates determinism);
* :func:`finite_slack_system` — channels with bounded capacity
  (violates infinite slack): a legal-looking program fails under
  schedules that let the producer run ahead.

These are used by the negative tests and by experiment E5's report.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ChannelError
from repro.runtime.channel import Channel, ChannelSpec
from repro.runtime.process import ProcessSpec
from repro.runtime.system import System

__all__ = [
    "shared_variable_system",
    "multi_writer_channel_system",
    "nondeterministic_body_system",
    "finite_slack_system",
    "UnsafeMultiWriterChannel",
    "BoundedChannel",
]


# ---------------------------------------------------------------------------
# 1. Shared variables
# ---------------------------------------------------------------------------


def shared_variable_system(increments: int = 5) -> System:
    """Two processes incrementing one shared counter, non-atomically.

    The shared cell lives in a closure, deliberately bypassing the
    per-process stores.  Each increment is read-modify-write split
    across two scheduler-visible actions (``ctx.step`` park points), so
    cooperative schedules can interleave the read and the write of
    different processes — the classic lost-update race.  Final counter
    value ranges between ``increments + 1`` and ``2 * increments``
    depending on the schedule.
    """
    shared = {"counter": 0}

    def body(ctx):
        for _ in range(increments):
            ctx.step("read")
            observed = shared["counter"]
            ctx.step("write")
            shared["counter"] = observed + 1
        ctx.store["final"] = shared["counter"]

    # NOTE: both specs close over the same dict — exactly what the
    # model forbids and ProcessSpec.fresh_store cannot protect against.
    return System([ProcessSpec(0, body), ProcessSpec(1, body)])


# ---------------------------------------------------------------------------
# 2. Multi-writer channel
# ---------------------------------------------------------------------------


class _AnyRank:
    """Sentinel equal to every rank — lets an unsafe channel masquerade
    as writable by all processes when run state is wired up."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, int)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:  # pragma: no cover - never used as key
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<any rank>"


class UnsafeMultiWriterChannel(Channel):
    """A channel that skips writer-ownership checks (test rig only).

    Its ``writer`` compares equal to every rank, so system wiring hands
    an outgoing handle to *all* processes — precisely the single-writer
    violation the counterexample needs.
    """

    @property
    def writer(self):  # type: ignore[override]
        return _AnyRank()

    def send(self, value: Any, *, rank: int) -> int:
        # Re-implement without the ownership check.
        with self._lock:
            if self._closed:
                raise ChannelError(f"send on closed channel {self.name!r}")
            seq = self.sends
            self._queue.append(value)
            self.sends += 1
            self._nonempty.notify()
        return seq

    def close(self) -> None:
        # With two writers, the first to terminate must not close the
        # channel under the other; closing is disabled for the rig.
        pass


class _MultiWriterSystem(System):
    """System whose channels named ``mw*`` are multi-writer-unsafe."""

    def make_channel(self, spec: ChannelSpec) -> Channel:
        if spec.name.startswith("mw"):
            return UnsafeMultiWriterChannel(spec)
        return super().make_channel(spec)

    def add_multiwriter_channel(self, name: str, reader: int) -> None:
        # Registered with an arbitrary concrete writer to pass wiring
        # checks; the unsafe channel then accepts sends from anyone.
        self.add_channel_spec(ChannelSpec(name, (reader + 1) % self.nprocs, reader))


def multi_writer_channel_system() -> System:
    """Two writers race to the same channel; the reader records arrival
    order.  Final state = the order, which is schedule-dependent."""

    def writer(ctx):
        ctx.send("mw", f"from{ctx.rank}")

    def reader(ctx):
        ctx.store["order"] = [ctx.recv("mw"), ctx.recv("mw")]

    system = _MultiWriterSystem(
        [ProcessSpec(0, writer), ProcessSpec(1, writer), ProcessSpec(2, reader)]
    )
    system.add_multiwriter_channel("mw", reader=2)
    return system


# ---------------------------------------------------------------------------
# 3. Nondeterministic process body
# ---------------------------------------------------------------------------


def nondeterministic_body_system(n_messages: int = 4) -> System:
    """The consumer peeks at the channel *depth* — state the model does
    not allow a process to observe — and bases its result on it.

    A producer sends ``n_messages`` values; the consumer records how
    many were already queued before its first receive.  Under
    run-to-block scheduling the producer finishes first (depth = n);
    under round-robin the consumer starts early (depth small).
    """

    def producer(ctx):
        for i in range(n_messages):
            ctx.send("c", i)

    def consumer(ctx):
        ctx.step("peek")
        # Illegal move: inspecting queue depth is not receive semantics.
        depth = len(ctx.in_channel("c"))
        ctx.store["peeked_depth"] = depth
        for _ in range(n_messages):
            ctx.recv("c")

    system = System([ProcessSpec(0, producer), ProcessSpec(1, consumer)])
    system.add_channel("c", 0, 1)
    return system


# ---------------------------------------------------------------------------
# 4. Finite slack
# ---------------------------------------------------------------------------


class BoundedChannel(Channel):
    """A channel with finite capacity: send on a full queue *fails*.

    (In a blocking-send formulation the producer would block; either
    way the behaviour of the program becomes schedule-dependent, which
    is the point of the counterexample.)
    """

    CAPACITY = 2

    def send(self, value: Any, *, rank: int) -> int:
        with self._lock:
            if len(self._queue) >= self.CAPACITY:
                raise ChannelError(
                    f"channel {self.name!r} full (capacity "
                    f"{self.CAPACITY}); finite slack violated the model"
                )
        return super().send(value, rank=rank)


class _BoundedSystem(System):
    def make_channel(self, spec: ChannelSpec) -> Channel:
        if spec.name.startswith("bounded"):
            return BoundedChannel(spec)
        return super().make_channel(spec)


def finite_slack_system(n_messages: int = 6) -> System:
    """Producer/consumer over a capacity-2 channel.

    Under round-robin scheduling the consumer keeps pace and the run
    completes; under run-to-block the producer floods the channel and
    the run *fails* — termination itself becomes schedule-dependent,
    violating Theorem 1's conclusion.
    """

    def producer(ctx):
        for i in range(n_messages):
            ctx.send("bounded", i)

    def consumer(ctx):
        ctx.store["got"] = [ctx.recv("bounded") for _ in range(n_messages)]

    system = _BoundedSystem([ProcessSpec(0, producer), ProcessSpec(1, consumer)])
    system.add_channel("bounded", 0, 1)
    return system
