"""Empirical determinacy checking — Theorem 1 as an experiment.

Theorem 1 quantifies over *all* maximal interleavings; this module
samples them.  :func:`check_determinacy` executes a system under

* a battery of cooperative schedules (round-robin, run-to-block,
  sends-first, and many seeded random policies), and
* optionally the free-running threaded engine (several repetitions —
  each OS run is some fair interleaving we do not control),

then canonicalises each final state (stores + return values) to a
digest and reports whether all runs agreed.  For conforming systems the
report's ``determinate`` flag is True; the deliberately broken systems
of :mod:`repro.theory.violations` make it False.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.engine_threaded import ThreadedEngine
from repro.runtime.schedulers import (
    RandomPolicy,
    RoundRobinPolicy,
    RunToBlockPolicy,
    SchedulingPolicy,
    SendsFirstPolicy,
)
from repro.runtime.system import RunResult, System

__all__ = ["state_digest", "DeterminacyReport", "check_determinacy"]


def _canonical_bytes(value: Any, out: list[bytes]) -> None:
    """Serialise a store value into a canonical byte stream."""
    if isinstance(value, np.ndarray):
        out.append(b"A")
        out.append(str(value.dtype).encode())
        out.append(str(value.shape).encode())
        out.append(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (np.floating, float)):
        out.append(b"F")
        out.append(np.float64(value).tobytes())
    elif isinstance(value, (np.integer, int)):
        out.append(b"I")
        out.append(str(int(value)).encode())
    elif isinstance(value, str):
        out.append(b"S")
        out.append(value.encode())
    elif isinstance(value, bytes):
        out.append(b"B")
        out.append(value)
    elif value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"b1" if value else b"b0")
    elif isinstance(value, dict):
        out.append(b"D")
        for k in sorted(value, key=repr):
            out.append(repr(k).encode())
            _canonical_bytes(value[k], out)
    elif isinstance(value, (list, tuple)):
        out.append(b"L")
        out.append(str(len(value)).encode())
        for v in value:
            _canonical_bytes(v, out)
    else:
        out.append(b"R")
        out.append(repr(value).encode())


def state_digest(result: RunResult) -> str:
    """Canonical hex digest of a run's final state (stores + returns).

    Two runs have equal digests iff their final states are bitwise
    identical (up to the canonicalisation of container ordering).
    """
    out: list[bytes] = []
    for store in result.stores:
        _canonical_bytes(store, out)
    _canonical_bytes(list(result.returns), out)
    return hashlib.sha256(b"\x00".join(out)).hexdigest()


@dataclass
class DeterminacyReport:
    """Outcome of a determinacy experiment over one system."""

    runs: int = 0
    digests: dict[str, int] = field(default_factory=dict)  # digest -> count
    schedules_seen: int = 0
    distinct_schedules: int = 0
    errors: list[str] = field(default_factory=list)
    engine_breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def determinate(self) -> bool:
        """True iff every run terminated and produced the same state."""
        return not self.errors and len(self.digests) == 1

    def summary(self) -> str:
        verdict = "DETERMINATE" if self.determinate else "NOT determinate"
        lines = [
            f"{verdict}: {self.runs} runs, "
            f"{len(self.digests)} distinct final state(s), "
            f"{self.distinct_schedules}/{self.schedules_seen} distinct "
            "schedules observed",
        ]
        for digest, count in sorted(self.digests.items()):
            lines.append(f"  state {digest[:12]}…  x{count}")
        for err in self.errors:
            lines.append(f"  run failed: {err}")
        return "\n".join(lines)


def default_policies(n_random: int, seed0: int = 0) -> list[SchedulingPolicy]:
    """The standard cooperative-schedule battery."""
    policies: list[SchedulingPolicy] = [
        RoundRobinPolicy(),
        RunToBlockPolicy(),
        SendsFirstPolicy(),
    ]
    policies.extend(RandomPolicy(seed=seed0 + k) for k in range(n_random))
    return policies


def check_determinacy(
    system_factory: Callable[[], System] | System,
    n_random: int = 12,
    threaded_runs: int = 3,
    seed0: int = 0,
    policies: list[SchedulingPolicy] | None = None,
    max_actions: int | None = None,
) -> DeterminacyReport:
    """Run a system under many interleavings and compare final states.

    ``system_factory`` may be a ready :class:`System` (systems are
    reusable: engines build fresh run state each time) or a zero-arg
    callable producing one.

    A run that raises contributes an error entry instead of a digest;
    ``determinate`` is then False — non-termination under *some* legal
    schedule is itself a Theorem 1 violation.
    """
    factory = system_factory if callable(system_factory) else (lambda: system_factory)
    report = DeterminacyReport()
    schedules: set[tuple[int, ...]] = set()

    for policy in policies if policies is not None else default_policies(n_random, seed0):
        engine = CooperativeEngine(policy, trace=True, max_actions=max_actions)
        report.runs += 1
        report.engine_breakdown["cooperative"] = (
            report.engine_breakdown.get("cooperative", 0) + 1
        )
        try:
            result = engine.run(factory())
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.errors.append(f"{type(policy).__name__}: {exc}")
            continue
        digest = state_digest(result)
        report.digests[digest] = report.digests.get(digest, 0) + 1
        schedules.add(tuple(result.schedule))

    for k in range(threaded_runs):
        report.runs += 1
        report.engine_breakdown["threaded"] = (
            report.engine_breakdown.get("threaded", 0) + 1
        )
        try:
            result = ThreadedEngine().run(factory())
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.errors.append(f"threaded[{k}]: {exc}")
            continue
        digest = state_digest(result)
        report.digests[digest] = report.digests.get(digest, 0) + 1

    report.schedules_seen = len(schedules) and report.engine_breakdown.get(
        "cooperative", 0
    )
    report.distinct_schedules = len(schedules)
    return report
