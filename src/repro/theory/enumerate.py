"""Exhaustive enumeration of maximal interleavings.

Theorem 1 quantifies over *all* maximal interleavings.  For small
systems we can visit every one: the interleaving space is a tree whose
nodes are scheduler decisions (which enabled process acts next) and
whose leaves are completed executions.  The enumerator walks that tree
by depth-first search, re-executing the system along each path:

1. run once following a *prefix* of forced choices, recording at every
   post-prefix decision the full enabled set
   (:class:`~repro.runtime.schedulers.RecordingPolicy` around
   :class:`~repro.runtime.schedulers.PrefixPolicy`);
2. every recorded alternative not taken becomes a new prefix to
   explore.

Because each complete interleaving corresponds to a unique decision
sequence, every maximal interleaving is visited exactly once.  Each
leaf's final state is digested; Theorem 1 predicts exactly one digest.

Cost grows as the number of interleavings (times re-execution), so
this is for *small* systems — the empirical sampler in
:mod:`repro.theory.determinacy` covers larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.schedulers import (
    PrefixPolicy,
    RecordingPolicy,
    SchedulingPolicy,
)
from repro.runtime.system import RunResult, System
from repro.theory.determinacy import state_digest

__all__ = [
    "EnumerationResult",
    "enumerate_interleavings",
    "count_interleavings",
    "run_prefix",
]


def run_prefix(
    system: System,
    prefix: list[int],
    tail: SchedulingPolicy | None = None,
    trace: bool = False,
    max_actions: int | None = None,
) -> tuple[list[int], RunResult]:
    """One run forced through ``prefix``, completed by a deterministic
    tail (min-rank unless given); returns the full schedule and result.

    The stateless re-execution primitive shared by the enumerators here
    and the schedule explorer's prefix minimiser / replay
    (:mod:`repro.explore.report`): a recorded branch point is revisited
    by replaying the path to it, no engine checkpointing needed.
    """
    recorder = RecordingPolicy(PrefixPolicy(prefix, tail))
    run = CooperativeEngine(
        recorder, trace=trace, max_actions=max_actions
    ).run(system)
    return [choice for choice, _ in recorder.log], run


class EnumerationOverflow(ReproError):
    """More interleavings exist than the requested cap."""


@dataclass
class EnumerationResult:
    """All maximal interleavings of a system and their final states."""

    interleavings: int = 0
    digests: dict[str, int] = field(default_factory=dict)  # digest -> count
    schedules: list[tuple[int, ...]] = field(default_factory=list)
    #: longest / shortest schedule lengths (all equal for conforming
    #: systems — same actions, reordered)
    min_len: int = 0
    max_len: int = 0

    @property
    def determinate(self) -> bool:
        return len(self.digests) == 1

    def summary(self) -> str:
        return (
            f"{self.interleavings} maximal interleavings, "
            f"{len(self.digests)} distinct final state(s)"
        )


def enumerate_interleavings(
    system: System,
    max_interleavings: int = 10_000,
    keep_schedules: bool = True,
) -> EnumerationResult:
    """Visit every maximal interleaving of ``system``.

    Raises :class:`EnumerationOverflow` if more than
    ``max_interleavings`` complete interleavings exist.
    """
    result = EnumerationResult()
    stack: list[list[int]] = [[]]
    while stack:
        prefix = stack.pop()
        recorder = RecordingPolicy(PrefixPolicy(prefix))
        engine = CooperativeEngine(recorder, trace=True)
        run = engine.run(system)
        # Register this completed interleaving.
        result.interleavings += 1
        if result.interleavings > max_interleavings:
            raise EnumerationOverflow(
                f"more than {max_interleavings} interleavings"
            )
        digest = state_digest(run)
        result.digests[digest] = result.digests.get(digest, 0) + 1
        schedule = [choice for choice, _ in recorder.log]
        if keep_schedules:
            result.schedules.append(tuple(schedule))
        n = len(schedule)
        result.min_len = n if result.min_len == 0 else min(result.min_len, n)
        result.max_len = max(result.max_len, n)
        # Branch at every post-prefix decision: alternatives in the
        # enabled set that were not chosen.
        for i in range(len(prefix), len(recorder.log)):
            chosen, enabled = recorder.log[i]
            for alt in enabled:
                if alt != chosen:
                    stack.append(schedule[:i] + [alt])
    return result


def count_interleavings(system: System, max_interleavings: int = 10_000) -> int:
    """Number of maximal interleavings (without keeping schedules)."""
    return enumerate_interleavings(
        system, max_interleavings, keep_schedules=False
    ).interleavings


def count_trace_classes(system: System, max_interleavings: int = 10_000) -> int:
    """Number of Mazurkiewicz trace classes among all maximal
    interleavings — distinct Foata normal forms over the enumeration.

    For a conforming system this is **1**: all interleavings commute
    into each other (the content of Theorem 1's proof).  A value above
    1 means some pair of interleavings is *not* related by independent
    swaps — i.e. the system's actions themselves depend on the
    schedule, which only a hypothesis violation can cause.
    """
    from repro.runtime.schedulers import ReplayPolicy
    from repro.theory.foata import foata_normal_form

    result = enumerate_interleavings(system, max_interleavings)
    forms = set()
    for schedule in result.schedules:
        run = CooperativeEngine(ReplayPolicy(list(schedule)), trace=True).run(
            system
        )
        forms.add(foata_normal_form(run.trace))
    return len(forms)
