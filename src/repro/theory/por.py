"""Partial-order reduction: sleep-set enumeration of interleavings.

Plain enumeration (:mod:`repro.theory.enumerate`) visits *every*
maximal interleaving — for a conforming system, exponentially many
equivalent ones.  Theorem 1's very content is that those interleavings
fall into a single commutation (Mazurkiewicz trace) class, so a
verifier only needs one representative per class.  **Sleep sets**
(Godefroid) prune the rest: after exploring action ``a`` at a node,
``a`` is put to sleep for the sibling branches, and stays asleep down
a sibling's subtree for as long as it remains independent of the
actions taken — any schedule that would wake it is a commutation of
one already explored.

Independence here is structural and conservative: two pending actions
are independent iff they belong to different processes *and* do not
touch the same channel (a send and the matching receive never commute
when the queue hovers at empty; same-process actions never commute).

For terminating systems, sleep-set exploration visits at least one
interleaving of every trace class (soundness) while typically visiting
exponentially fewer schedules than full enumeration — the conforming
systems of this library collapse to exactly **one** visited schedule,
which is the theorem made computational.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.engine_cooperative import CooperativeEngine
from repro.runtime.schedulers import (
    PendingAction,
    PrefixPolicy,
    RecordingPolicy,
)
from repro.runtime.system import System
from repro.theory.determinacy import state_digest

__all__ = ["ReducedEnumeration", "enumerate_reduced", "independent_actions"]


class ReductionOverflow(ReproError):
    """More reduced schedules than the requested cap."""


def independent_actions(a: PendingAction, b: PendingAction) -> bool:
    """Structural independence: different processes, different channels.

    The conservative commutation test shared by the sleep-set
    enumerator here and the schedule explorer's DFS pruning
    (:mod:`repro.explore.strategies`).
    """
    if a.rank == b.rank:
        return False
    if a.channel is not None and a.channel == b.channel:
        return False
    return True


_independent = independent_actions


@dataclass
class ReducedEnumeration:
    """Outcome of a sleep-set exploration."""

    schedules: list[tuple[int, ...]] = field(default_factory=list)
    digests: dict[str, int] = field(default_factory=dict)
    #: nodes of the exploration tree that were expanded (re-executions)
    runs: int = 0

    @property
    def visited(self) -> int:
        return len(self.schedules)

    @property
    def determinate(self) -> bool:
        return len(self.digests) == 1

    def summary(self) -> str:
        return (
            f"sleep-set reduction: {self.visited} representative "
            f"schedule(s), {len(self.digests)} distinct final state(s), "
            f"{self.runs} re-executions"
        )


def enumerate_reduced(
    system: System, max_schedules: int = 10_000
) -> ReducedEnumeration:
    """Explore one representative per commutation class (sleep sets).

    Stateless search: each tree node is re-executed from scratch by
    replaying its prefix (the same mechanism plain enumeration uses),
    so no engine state needs checkpointing.
    """
    result = ReducedEnumeration()
    # Each frame: (prefix, sleep set of PendingActions)
    stack: list[tuple[list[int], frozenset[PendingAction]]] = [([], frozenset())]

    while stack:
        prefix, sleep = stack.pop()
        recorder = RecordingPolicy(PrefixPolicy(prefix))
        run = CooperativeEngine(recorder, trace=False).run(system)
        result.runs += 1
        log = recorder.action_log

        if len(log) == len(prefix):
            # No decision beyond the prefix: a complete interleaving.
            result.schedules.append(tuple(prefix))
            if len(result.schedules) > max_schedules:
                raise ReductionOverflow(
                    f"more than {max_schedules} reduced schedules"
                )
            digest = state_digest(run)
            result.digests[digest] = result.digests.get(digest, 0) + 1
            continue

        # The node at depth len(prefix): its enabled actions.
        _, enabled = log[len(prefix)]
        by_rank = {a.rank: a for a in enabled}
        sleeping_ranks = {a.rank for a in sleep if a.rank in by_rank}
        to_explore = [
            a for a in enabled if a.rank not in sleeping_ranks
        ]
        if not to_explore:
            # Everything enabled is asleep: every continuation commutes
            # into an explored sibling; prune this node entirely.
            continue

        explored: list[PendingAction] = []
        # Push in reverse so exploration order matches list order.
        frames = []
        for action in to_explore:
            child_sleep = frozenset(
                s
                for s in set(sleep) | set(explored)
                if _independent(s, action)
            )
            frames.append((prefix + [action.rank], child_sleep))
            explored.append(action)
        for frame in reversed(frames):
            stack.append(frame)

    return result
