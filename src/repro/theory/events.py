"""Event identity across interleavings.

The engine-side definitions of :class:`~repro.runtime.trace.Event` and
:class:`~repro.runtime.trace.Trace` live in :mod:`repro.runtime.trace`
(re-exported here for convenience).  What the theory layer adds is a
notion of *event identity that survives reordering*: the same logical
action of the same process occupies different global positions in
different interleavings, so comparing interleavings requires a
position-independent key.

For the deterministic processes of the paper's model, a process's own
action sequence is the same in every maximal interleaving (its k-th
action is determined by its program and the values it has received,
which are determined by channel FIFO order).  Hence
``(rank, local_index)`` identifies an action across interleavings, and
``(kind, channel, seq)`` must agree wherever the key agrees — a
consistency condition :func:`check_same_action_sequences` verifies on
recorded trace pairs.
"""

from __future__ import annotations

from repro.runtime.trace import Event, Trace

__all__ = [
    "Event",
    "Trace",
    "event_key",
    "trace_keys",
    "check_same_action_sequences",
]

#: Position-independent event key: (rank, index-within-own-process).
EventKey = tuple[int, int]


def event_key(trace: Trace, index: int) -> EventKey:
    """Key of the event at global position ``index`` of ``trace``."""
    ev = trace[index]
    local = sum(1 for e in trace.events[:index] if e.rank == ev.rank)
    return (ev.rank, local)


def trace_keys(trace: Trace) -> list[EventKey]:
    """Keys of all events, in the trace's interleaving order."""
    counters: dict[int, int] = {}
    keys: list[EventKey] = []
    for ev in trace:
        k = counters.get(ev.rank, 0)
        keys.append((ev.rank, k))
        counters[ev.rank] = k + 1
    return keys


def check_same_action_sequences(a: Trace, b: Trace) -> bool:
    """True iff each process performed the identical action sequence in
    both traces (kind, channel and per-channel sequence number all
    agree position-by-position).

    This is the per-process half of Theorem 1's conclusion: whatever
    interleaving occurs, every process runs the same program steps.
    """
    ranks = {e.rank for e in a} | {e.rank for e in b}
    for rank in ranks:
        sa = [(e.kind, e.channel, e.seq, e.label) for e in a.by_rank(rank)]
        sb = [(e.kind, e.channel, e.seq, e.label) for e in b.by_rank(rank)]
        if sa != sb:
            return False
    return True
