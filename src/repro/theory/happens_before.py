"""The happens-before (dependence) relation over a trace.

Two sources of ordering exist in the paper's model:

* **program order** — consecutive actions of the same process;
* **channel order** — the k-th send on a channel precedes the k-th
  receive on that channel (FIFO, blocking receive).

The transitive closure of these edges is the happens-before partial
order.  Two events unrelated by it are *independent*: they may be
swapped as adjacent actions of an interleaving without changing any
process's view — the commutation step at the heart of the Theorem 1
proof (and of Mazurkiewicz trace theory, of which this is an instance).

Additionally, two operations on the *same channel* are treated as
dependent even when the closure does not order them (e.g. a send and a
later receive of a different sequence number): swapping them could
change queue contents mid-trace.  For SRSW channels the closure already
orders same-endpoint operations through program order, so this mostly
matters as a safety net for the permutation checker.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.trace import Trace

__all__ = ["HappensBefore"]


class HappensBefore:
    """Happens-before relation for one recorded trace.

    Built once (O(n^2 / 64) bitset closure), then queried in O(1):

    >>> hb = HappensBefore(trace)
    >>> hb.precedes(i, j)      # event i happens-before event j
    >>> hb.independent(i, j)   # neither precedes the other
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        n = len(trace)
        self._n = n
        # Direct edges i -> j (i precedes j).
        edges: list[tuple[int, int]] = []
        last_by_rank: dict[int, int] = {}
        send_pos: dict[tuple[str, int], int] = {}
        for i, ev in enumerate(trace):
            if ev.rank in last_by_rank:
                edges.append((last_by_rank[ev.rank], i))
            last_by_rank[ev.rank] = i
            if ev.kind == "send":
                send_pos[(ev.channel, ev.seq)] = i
            elif ev.kind == "recv":
                j = send_pos.get((ev.channel, ev.seq))
                if j is not None:
                    edges.append((j, i))
        # Reachability via boolean matrix closure in topological
        # (trace) order: every edge goes forward in the recorded
        # interleaving, so one forward sweep suffices.
        reach = np.zeros((n, n), dtype=bool)
        for i, j in edges:
            reach[i, j] = True
        for j in range(n):
            preds = np.nonzero(reach[:, j])[0]
            for p in preds:
                reach[:, j] |= reach[:, p]
        self._reach = reach

    # -- queries -------------------------------------------------------------

    def precedes(self, i: int, j: int) -> bool:
        """True iff event ``i`` happens-before event ``j``."""
        return bool(self._reach[i, j])

    def independent(self, i: int, j: int) -> bool:
        """True iff neither event precedes the other."""
        return i != j and not self._reach[i, j] and not self._reach[j, i]

    def dependent_pairs(self) -> list[tuple[int, int]]:
        """All ordered pairs (i, j) with i happens-before j."""
        out = np.argwhere(self._reach)
        return [(int(i), int(j)) for i, j in out]

    # -- linear-extension check -------------------------------------------------

    def admits_order(self, order: list[int]) -> bool:
        """True iff ``order`` (a permutation of event positions of this
        trace) is a linear extension of the happens-before relation —
        i.e. a legal alternative interleaving of the same actions."""
        position = {idx: pos for pos, idx in enumerate(order)}
        if len(position) != self._n:
            return False
        for i, j in zip(*np.nonzero(self._reach)):
            if position[int(i)] > position[int(j)]:
                return False
        return True

    def count_independent_adjacent_pairs(self) -> int:
        """Number of adjacent trace positions holding independent events
        (each is one legal adjacent transposition — a measure of how
        much schedule freedom the recorded interleaving had)."""
        return sum(
            1
            for i in range(self._n - 1)
            if self.independent(i, i + 1)
        )
