"""Foata normal form: the canonical representative of an interleaving class.

Theorem 1's proof shows any two maximal interleavings of a conforming
system are permutations of each other through independent adjacent
swaps — in trace-theory terms, all its executions belong to a *single
Mazurkiewicz trace* (equivalence class of interleavings modulo
independent commutation).  The **Foata normal form** is that class's
canonical representative: the unique decomposition of the partial order
into maximal antichain layers, each layer being the set of events all
of whose dependence predecessors lie in earlier layers.

This gives a third, structural formulation of the determinacy
experiments:

* every recorded interleaving of a conforming system has the **same**
  Foata normal form (:func:`foata_normal_form` is schedule-invariant);
* the number of layers is the system's **critical path length** in
  actions — a lower bound on any execution's makespan, reported by the
  archetype ablations;
* the layer widths profile the available parallelism over time
  (:func:`parallelism_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.trace import Trace
from repro.theory.events import trace_keys
from repro.theory.happens_before import HappensBefore

__all__ = ["FoataForm", "foata_normal_form", "parallelism_profile"]

#: a layer: sorted tuple of position-independent event keys (rank, local)
Layer = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class FoataForm:
    """The canonical layered decomposition of one execution's actions."""

    layers: tuple[Layer, ...]

    @property
    def depth(self) -> int:
        """Number of layers == dependence critical path in actions."""
        return len(self.layers)

    @property
    def width(self) -> int:
        """Largest layer == peak available parallelism."""
        return max((len(layer) for layer in self.layers), default=0)

    @property
    def total_events(self) -> int:
        return sum(len(layer) for layer in self.layers)

    def describe(self) -> str:
        lines = [
            f"Foata normal form: {self.total_events} events in "
            f"{self.depth} layers (peak width {self.width})"
        ]
        for i, layer in enumerate(self.layers):
            events = " ".join(f"P{r}#{k}" for r, k in layer)
            lines.append(f"  layer {i:3d}: {events}")
        return "\n".join(lines)


def foata_normal_form(trace: Trace) -> FoataForm:
    """Canonical layering of a recorded execution.

    Layer 0 holds the events with no happens-before predecessor; layer
    ``i+1`` the events all of whose predecessors sit in layers
    ``<= i`` with at least one in layer ``i``.  Keys are position
    independent (``(rank, local_index)``), so two interleavings of the
    same actions yield *equal* forms iff they are trace-equivalent —
    for conforming systems, always.
    """
    n = len(trace)
    hb = HappensBefore(trace)
    keys = trace_keys(trace)
    # longest-path layer index per event
    layer_of = [0] * n
    for j in range(n):  # trace order is a linear extension
        best = 0
        for i in range(j):
            if hb.precedes(i, j):
                best = max(best, layer_of[i] + 1)
        layer_of[j] = best
    depth = max(layer_of, default=-1) + 1
    layers: list[list[tuple[int, int]]] = [[] for _ in range(depth)]
    for pos, layer in enumerate(layer_of):
        layers[layer].append(keys[pos])
    return FoataForm(tuple(tuple(sorted(layer)) for layer in layers))


def parallelism_profile(trace: Trace) -> list[int]:
    """Layer widths of the Foata form: how many actions could run
    concurrently at each dependence depth."""
    return [len(layer) for layer in foata_normal_form(trace).layers]


def frontier(trace: Trace) -> Layer:
    """Layer 0 of the Foata form: the events with no dependence
    predecessor — exactly the actions a maximal interleaving may
    legally *start* with.

    The schedule explorer measures frontier coverage against this: the
    distinct first actions over all visited schedules, divided by the
    frontier width, is a cheap structural check that the search is
    actually spreading over the interleaving space rather than
    revisiting one corner of it.
    """
    form = foata_normal_form(trace)
    return form.layers[0] if form.layers else ()
