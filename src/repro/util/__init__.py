"""Shared utilities: deterministic seeding, array helpers, timing.

These helpers keep the rest of the library honest about two disciplines
the paper's model demands:

* **determinism** — every source of pseudo-randomness flows through an
  explicit :class:`numpy.random.Generator` created by :func:`rng_from`,
  so that repeated runs (and repeated *interleavings*, which is what
  Theorem 1 quantifies over) see identical data;
* **bitwise comparison** — refinement checks compare program versions
  for *exact* equality (:func:`bitwise_equal_arrays`,
  :func:`bitwise_equal_stores`), because the paper's correctness claim
  for the near-field computation is identity of results, not closeness.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import Any

import numpy as np

__all__ = [
    "rng_from",
    "bitwise_equal_arrays",
    "bitwise_equal_stores",
    "max_abs_diff",
    "max_rel_diff",
    "deep_copy_value",
    "payload_nbytes",
    "format_table",
    "Stopwatch",
    "product",
]


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (a fixed default seed — *not* entropy — so that library
    behaviour is reproducible even when the caller does not care).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0xA9C4
    return np.random.default_rng(seed)


def bitwise_equal_arrays(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` and ``b`` have identical shape, dtype and *bits*.

    NaNs compare equal to identically-placed NaNs (we compare the
    underlying bytes, not IEEE values): two program versions that both
    produced a NaN at the same place from the same operations are, for
    refinement purposes, in agreement.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(
        np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()
    )


def bitwise_equal_stores(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """True iff two variable stores hold bitwise-identical values.

    A *store* maps variable names to NumPy arrays or Python scalars.
    """
    if set(a.keys()) != set(b.keys()):
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not bitwise_equal_arrays(np.asarray(va), np.asarray(vb)):
                return False
        elif va != vb:
            return False
    return True


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum absolute elementwise difference between two arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def max_rel_diff(a: np.ndarray, b: np.ndarray, floor: float = 1e-300) -> float:
    """Maximum relative elementwise difference, guarded against zeros."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0:
        return 0.0
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom))


def deep_copy_value(value: Any) -> Any:
    """Copy a store value so no aliasing can leak between address spaces.

    NumPy arrays are copied; immutable scalars are returned as-is; lists,
    tuples and dicts are copied recursively.  Processes in the paper's
    model share *nothing* but channels, so system construction copies all
    initial data through this function.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, dict):
        return {k: deep_copy_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [deep_copy_value(v) for v in value]
    if isinstance(value, tuple):
        return tuple(deep_copy_value(v) for v in value)
    return value


def payload_nbytes(value: Any) -> int:
    """Deterministic wire-size estimate of a message payload, in bytes.

    NumPy arrays count their buffer; numeric scalars count 8; strings
    and bytes count their encoded length; containers sum their items
    (dict keys are framing, not payload).  Used by channels to keep
    per-channel byte statistics that the performance model's byte
    counts are validated against.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bool, np.bool_)):
        return 1
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, bytes):
        return len(value)
    if value is None:
        return 0
    if isinstance(value, dict):
        return sum(payload_nbytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) for v in value)
    # dataclass-ish objects (e.g. TaggedMessage): count public fields.
    if hasattr(value, "__dataclass_fields__"):
        return sum(
            payload_nbytes(getattr(value, name))
            for name in value.__dataclass_fields__
        )
    return 8  # opaque: count as one word


def product(values) -> int:
    """Integer product of an iterable (empty product is 1)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


def format_table(
    headers: list[str],
    rows: list[list[Any]],
    title: str | None = None,
) -> str:
    """Render a simple fixed-width text table (used by experiment reports)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class Stopwatch:
    """Context-manager wall-clock timer.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
