"""Outer boundary conditions: PEC box and first-order Mur ABC.

**PEC** is the default and needs no code: tangential E nodes on the
outer boundary are excluded from the update regions
(:data:`~repro.apps.fdtd.grid.UPDATE_TRIMS`) and therefore remain
exactly zero — a perfectly conducting box around the domain.

**Mur (first order)** replaces the PEC walls with a one-way wave
equation estimate: after each E update, every tangential E node on a
face is set from the previous-step values of itself and its inward
neighbour::

    u_new[face] = u_old[inward] + C * (u_new[inward] - u_old[face])
    C = (c0*dt - d) / (c0*dt + d)        d = spacing along the normal

Face-by-face application; edge nodes shared by two faces stay PEC
(first-order Mur has no corner treatment — a documented limitation of
the classic scheme).

The implementation is region-parameterised like the update kernels, so
the *same* face update runs on global arrays (sequential code) and on
the boundary ranks' local arrays (parallel code) — the "computation
performed differently in different grid processes" of section 4.4,
expressed once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.fdtd.constants import C0
from repro.apps.fdtd.grid import UPDATE_TRIMS, YeeGrid
from repro.apps.fdtd.update import shift_region, split_region
from repro.errors import FDTDError

__all__ = [
    "MUR_FACES",
    "mur_face_regions",
    "split_mur_regions",
    "Mur1",
    "mur_coefficient",
]

#: Tangential E components per face-normal axis.
_TANGENTIAL = {0: ("ey", "ez"), 1: ("ex", "ez"), 2: ("ex", "ey")}

#: All (component, normal_axis, side) Mur faces: 2 components x 3 axes
#: x 2 sides = 12 face updates.
MUR_FACES: list[tuple[str, int, int]] = [
    (comp, axis, side)
    for axis in range(3)
    for side in (-1, 1)
    for comp in _TANGENTIAL[axis]
]


def mur_coefficient(grid: YeeGrid, axis: int) -> float:
    d = grid.spacing[axis]
    return (C0 * grid.dt - d) / (C0 * grid.dt + d)


def mur_face_regions(
    grid: YeeGrid, comp: str, axis: int, side: int
) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
    """Global regions ``(face, inward)`` for one Mur face update.

    ``face`` selects the boundary plane's tangential nodes (transverse
    extents follow the component's own update trims, so edges shared
    with other faces are excluded); ``inward`` is the same set one node
    into the domain along the normal.
    """
    trims = UPDATE_TRIMS[comp]
    face: list[slice] = []
    inward: list[slice] = []
    for a, ((lo, hi), n) in enumerate(zip(trims, grid.shape)):
        if a != axis:
            face.append(slice(lo, n + 1 - hi))
            inward.append(slice(lo, n + 1 - hi))
        elif side == -1:
            face.append(slice(0, 1))
            inward.append(slice(1, 2))
        else:
            face.append(slice(n, n + 1))
            inward.append(slice(n - 1, n))
    return tuple(face), tuple(inward)


def split_mur_regions(regions, strips):
    """Split a Mur region dict into ``(shell, interior)`` dicts along
    the communication strips (the overlap refinement).

    A face piece belongs to the *shell* pass when either its face cells
    or their inward partners lie in a communication strip: face cells
    in a strip are sent to a neighbour, so their Mur update must
    precede the sends; inward partners in a strip are E cells updated
    (and possibly source-driven) during the shell pass, so reading them
    from the interior pass would see shell-pass source writes the
    baseline ordering performs *after* every Mur read.  Both hazards
    are excluded by augmenting the strips with their images shifted
    back along the face normal before carving.  Keys gain a piece
    index (``(comp, axis, side, i)``); :class:`Mur1` only ever uses the
    first two key elements, so split and unsplit dicts drive it alike.
    """
    shell = {}
    interior = {}
    for key, pair in regions.items():
        if pair is None:
            continue
        comp, axis = key[0], key[1]
        face, inward = pair
        delta = inward[axis].start - face[axis].start
        augmented = list(strips)
        for saxis, lo, hi in strips:
            if saxis == axis:
                augmented.append((saxis, lo - delta, hi - delta))
        face_shell, face_interior = split_region(face, augmented)
        for i, piece in enumerate(face_shell):
            shell[key[:3] + (i,)] = (piece, shift_region(piece, axis, delta))
        for i, piece in enumerate(face_interior):
            interior[key[:3] + (i,)] = (
                piece,
                shift_region(piece, axis, delta),
            )
    return shell, interior


@dataclass
class _FaceState:
    """Previous-step copies for one face update."""

    face_old: np.ndarray
    inward_old: np.ndarray


class Mur1:
    """First-order Mur ABC driver for one set of field arrays.

    Usage per time step::

        mur.record(arrays)   # BEFORE the E update: snapshot planes
        update_e(...)
        mur.apply(arrays)    # AFTER: write the boundary planes

    ``regions`` maps each face key to a pair of regions in *the caller's
    arrays*.  For the sequential code these are the global regions of
    :func:`mur_face_regions`; for a grid process they are the local
    intersections (``None`` entries are skipped — ranks not touching
    that face).
    """

    def __init__(
        self,
        grid: YeeGrid,
        regions: dict[
            tuple[str, int, int],
            tuple[tuple[slice, ...], tuple[slice, ...]] | None,
        ]
        | None = None,
    ):
        self.grid = grid
        if regions is None:
            regions = {
                (comp, axis, side): mur_face_regions(grid, comp, axis, side)
                for comp, axis, side in MUR_FACES
            }
        self.regions = {k: v for k, v in regions.items() if v is not None}
        self.coef = {axis: mur_coefficient(grid, axis) for axis in range(3)}
        self._state: dict[tuple[str, int, int], _FaceState] = {}
        self._recorded = False

    def record(self, arrays) -> None:
        """Snapshot face and inward planes (call before the E update)."""
        for key, (face, inward) in self.regions.items():
            comp = key[0]
            arr = arrays[comp]
            self._state[key] = _FaceState(
                face_old=arr[face].copy(), inward_old=arr[inward].copy()
            )
        self._recorded = True

    def apply(self, arrays) -> None:
        """Write the boundary planes (call after the E update)."""
        if not self._recorded:
            raise FDTDError("Mur1.apply called without a preceding record")
        for key, (face, inward) in self.regions.items():
            comp, axis = key[0], key[1]
            arr = arrays[comp]
            state = self._state[key]
            arr[face] = state.inward_old + self.coef[axis] * (
                arr[inward] - state.face_old
            )
        self._recorded = False
