"""Mesh-archetype parallelization of the FDTD codes (paper §4.3-4.4).

This module is the application of the whole methodology:

* a :class:`~repro.archetypes.plan.ParallelizationPlan` records step 1-2
  of section 4.4 (what is distributed, what duplicated, what runs
  where, what differs at boundaries);
* :func:`build_parallel_fdtd` performs the transformation of section
  4.4: partition the data into simulated address spaces (all six field
  arrays plus the twelve coefficient arrays, block-decomposed with a
  one-cell ghost ring), restructure the time loop into local blocks
  alternating with archetype data-exchange operations, and specialise
  per-process computation where needed (physical-boundary trims, Mur
  faces, the source-owning process, each rank's share of the far-field
  surface);
* the result is a :class:`ParallelFDTD` handle exposing **both** program
  versions: the sequential simulated-parallel program
  (:meth:`ParallelFDTD.run_simulated`) and its mechanical
  message-passing transform (:meth:`ParallelFDTD.to_parallel`).

Per-step stage structure (the parallel mirror of the sequential
contract in :mod:`~repro.apps.fdtd.version_a`):

1. boundary-exchange ``hx, hy, hz``  (the E update reads H at -1)
2. local E phase: Mur record -> E update -> Mur apply -> sources
3. boundary-exchange ``ex, ey, ez``  (the H update reads E at +1)
4. local H phase: H update -> far-field accumulation (Version C)

Near-field arithmetic is elementwise over partitioned regions, so the
simulated (and parallel) near fields are bitwise identical to the
sequential code's.  The far field is a *reordered* double sum (local
partials, rank-order combine) — deliberately, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.fdtd.boundary import (
    MUR_FACES,
    Mur1,
    mur_face_regions,
    split_mur_regions,
)
from repro.apps.fdtd.grid import (
    COMPONENTS,
    E_COMPONENTS,
    H_COMPONENTS,
    YeeGrid,
)
from repro.apps.fdtd.ntff import NTFFAccumulator, NTFFConfig
from repro.apps.fdtd.update import (
    KernelScratch,
    comm_strips,
    intersect_local,
    local_update_regions,
    split_local_update_regions,
    update_e,
    update_h,
)
from repro.apps.fdtd.version_a import FDTDConfig
from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.archetypes.mesh.skeleton import MeshProgramBuilder
from repro.archetypes.plan import (
    ComputationClass,
    ComputationSpec,
    ParallelizationPlan,
    Placement,
)
from repro.errors import FDTDError
from repro.refinement.store import AddressSpace
from repro.runtime.system import System

__all__ = ["fdtd_plan", "build_parallel_fdtd", "ParallelFDTD"]


def fdtd_plan(version: str = "A", boundary: str = "pec") -> ParallelizationPlan:
    """Section 4.4 step 1-2 for the FDTD codes, as a checked plan."""
    plan = ParallelizationPlan(name=f"fdtd-version-{version}", archetype="mesh")
    for comp in COMPONENTS:
        plan.distribute(comp, ghosted=True, description="Yee field component")
    for comp in E_COMPONENTS:
        plan.distribute(f"ca_{comp}", description="E update coefficient")
        plan.distribute(f"cb_{comp}", description="E curl coefficient")
    for comp in H_COMPONENTS:
        plan.distribute(f"da_{comp}", description="H update coefficient")
        plan.distribute(f"db_{comp}", description="H curl coefficient")
    plan.computation(
        ComputationSpec(
            "e_update",
            Placement.GRID,
            ComputationClass.DISTRIBUTED,
            boundary_special=True,  # tangential-E trim / Mur faces
            reads=tuple(H_COMPONENTS)
            + tuple(f"ca_{c}" for c in E_COMPONENTS)
            + tuple(f"cb_{c}" for c in E_COMPONENTS),
            writes=tuple(E_COMPONENTS),
        )
    )
    plan.computation(
        ComputationSpec(
            "source_injection",
            Placement.GRID,
            ComputationClass.DISTRIBUTED,
            boundary_special=True,  # only the owning process acts
            writes=tuple(E_COMPONENTS),
        )
    )
    plan.computation(
        ComputationSpec(
            "h_update",
            Placement.GRID,
            ComputationClass.DISTRIBUTED,
            reads=tuple(E_COMPONENTS)
            + tuple(f"da_{c}" for c in H_COMPONENTS)
            + tuple(f"db_{c}" for c in H_COMPONENTS),
            writes=tuple(H_COMPONENTS),
        )
    )
    if version.upper() == "C":
        plan.computation(
            ComputationSpec(
                "farfield_accumulation",
                Placement.GRID,
                ComputationClass.DISTRIBUTED,
                boundary_special=True,  # each rank owns part of the surface
                reads=tuple(COMPONENTS),
            )
        )
    plan.validate()
    return plan


def _mur_local_regions(grid: YeeGrid, decomp: BlockDecomposition, rank: int):
    """Per-face (local_face, local_inward) regions for one rank, or None
    where the rank does not touch the face."""
    out = {}
    for comp, axis, side in MUR_FACES:
        face, inward = mur_face_regions(grid, comp, axis, side)
        lf = intersect_local(decomp, rank, face)
        li = intersect_local(decomp, rank, inward)
        if lf is None:
            out[(comp, axis, side)] = None
            continue
        if li is None:
            raise FDTDError(
                f"rank {rank} owns the {comp} face (axis {axis}, side "
                f"{side}) but not its inward plane; blocks must be at "
                "least 2 nodes thick along each Mur axis"
            )
        out[(comp, axis, side)] = (lf, li)
    return out


def _overlap_time_loop(
    builder: MeshProgramBuilder,
    config: FDTDConfig,
    decomp: BlockDecomposition,
    grid: YeeGrid,
    inv_spacing: tuple[float, float, float],
    scratches: list[KernelScratch],
    accumulators,
) -> None:
    """Append the overlapped (shell/interior split) time loop.

    Each phase's cells are partitioned into the communication-strip
    shell and the interior; each combined exchange is split into a
    begin (send) and end (receive) stage with the opposite phase's
    interior pass between them.  The local blocks between a begin and
    its end touch neither the strips the begin staged nor the ghosts
    the end writes, so by the infinite-slack refinement argument
    (:mod:`repro.refinement.split`) every engine computes bitwise the
    same fields as the unsplit program.
    """
    nprocs = decomp.nprocs
    strips_by_rank = [comm_strips(decomp, r) for r in range(nprocs)]
    shell_regions: list[dict] = []
    interior_regions: list[dict] = []
    for r in range(nprocs):
        sh, it = split_local_update_regions(grid, decomp, r)
        shell_regions.append(sh)
        interior_regions.append(it)

    murs_shell = murs_interior = None
    if config.boundary == "mur1":
        murs_shell, murs_interior = [], []
        for r in range(nprocs):
            sh, it = split_mur_regions(
                _mur_local_regions(grid, decomp, r), strips_by_rank[r]
            )
            murs_shell.append(Mur1(grid, sh))
            murs_interior.append(Mur1(grid, it))

    shell_sources: dict[int, list] = {}
    interior_sources: dict[int, list] = {}
    for src in config.sources:
        for r in range(nprocs):
            sh, it = src.make_split_local_appliers(
                grid, decomp, r, strips_by_rank[r]
            )
            if sh is not None:
                shell_sources.setdefault(r, []).append(sh)
            if it is not None:
                interior_sources.setdefault(r, []).append(it)

    def e_pass(murs, regions, sources):
        def run(store: AddressSpace, rank: int, step: int) -> None:
            mur = murs[rank] if murs is not None else None
            if mur is not None:
                mur.record(store)
            update_e(store, regions[rank], inv_spacing, scratches[rank])
            if mur is not None:
                mur.apply(store)
            for apply_source in sources.get(rank, ()):
                apply_source(store, step)

        return run

    e_shell = e_pass(murs_shell, shell_regions, shell_sources)
    e_interior = e_pass(murs_interior, interior_regions, interior_sources)

    def h_shell(store: AddressSpace, rank: int, step: int) -> None:
        update_h(store, shell_regions[rank], inv_spacing, scratches[rank])

    def h_interior(store: AddressSpace, rank: int, step: int) -> None:
        update_h(store, interior_regions[rank], inv_spacing, scratches[rank])
        if accumulators is not None:
            accumulators[rank].accumulate_into(
                store, step, store["ffA"], store["ffF"]
            )

    # Prologue: the first step's H ghosts can fly before the loop.
    h_begin = (
        builder.begin_exchange_boundaries(*H_COMPONENTS)
        if config.steps
        else None
    )
    for step in range(config.steps):
        builder.end_exchange_boundaries(h_begin)
        builder.grid_spmd(
            lambda store, rank, _n=step: e_shell(store, rank, _n),
            name=f"E-shell[{step}]",
        )
        e_begin = builder.begin_exchange_boundaries(*E_COMPONENTS)
        builder.grid_spmd(
            lambda store, rank, _n=step: e_interior(store, rank, _n),
            name=f"E-interior[{step}]",
        )
        builder.end_exchange_boundaries(e_begin)
        builder.grid_spmd(
            lambda store, rank, _n=step: h_shell(store, rank, _n),
            name=f"H-shell[{step}]",
        )
        # The last step's H strips feed no one: no epilogue exchange.
        h_begin = (
            builder.begin_exchange_boundaries(*H_COMPONENTS)
            if step < config.steps - 1
            else None
        )
        builder.grid_spmd(
            lambda store, rank, _n=step: h_interior(store, rank, _n),
            name=f"H-interior[{step}]",
        )


@dataclass
class ParallelFDTD:
    """Handle to a parallelized FDTD program (both versions)."""

    config: FDTDConfig
    decomp: BlockDecomposition
    builder: MeshProgramBuilder
    version: str
    ntff_config: NTFFConfig | None = None
    ntff_bins: int = 0
    overlap: bool = False
    backend: str = "numpy"

    @property
    def host(self) -> int:
        return self.builder.host

    @property
    def grid_size(self) -> int:
        return self.builder.grid_size

    def run_simulated(self) -> list[AddressSpace]:
        """Run the sequential simulated-parallel version."""
        return self.builder.run_simulated()

    def to_parallel(self) -> System:
        """The mechanical message-passing transform."""
        return self.builder.to_parallel()

    def run_parallel(self, engine=None):
        """Run the message-passing transform on an execution backend.

        ``engine`` is an engine instance, an engine name
        (``"cooperative"`` / ``"threaded"`` / ``"multiprocess"``), or
        ``None`` for the threaded default; returns the engine's
        :class:`~repro.runtime.system.RunResult`.
        """
        if engine is None or isinstance(engine, str):
            from repro.runtime import make_engine

            engine = make_engine(engine or "threaded")
        return engine.run(self.to_parallel())

    def host_fields(self, stores) -> dict[str, np.ndarray]:
        """The collected global field arrays from a finished run's
        stores (list of AddressSpace or of dicts)."""
        host_store = stores[self.host]
        get = host_store.__getitem__
        return {comp: np.asarray(get(comp)) for comp in COMPONENTS}

    def host_potentials(self, stores) -> tuple[np.ndarray, np.ndarray]:
        """The reduced far-field vector potentials (Version C)."""
        if self.version != "C":
            raise FDTDError("far-field potentials exist only in Version C")
        host_store = stores[self.host]
        return (
            np.asarray(host_store["ffA_total"]),
            np.asarray(host_store["ffF_total"]),
        )


def build_parallel_fdtd(
    config: FDTDConfig,
    pshape: tuple[int, int, int],
    version: str = "A",
    ntff: NTFFConfig | None = None,
    include_io_stages: bool = False,
    compensated_farfield: bool = False,
    batch_exchanges: bool = False,
    overlap: bool = False,
    backend: str = "numpy",
) -> ParallelFDTD:
    """Parallelize an FDTD configuration over a 3-D process grid.

    ``pshape`` is the process-grid shape (one rank per block, plus a
    host process for I/O and reductions).  ``include_io_stages`` adds
    explicit distribute stages at the start (the "host reads the file
    then redistributes" flow); initial stores are pre-scattered either
    way, so the stages are semantically idempotent.

    ``batch_exchanges`` coalesces each phase's three per-component
    ghost exchanges into one combined stage, so a rank sends one
    message per neighbour per phase instead of one per field component
    — bitwise-identical results, ~3x fewer exchange messages/frames.
    Off by default because the communication cost model (and the
    ``stats`` measured-vs-modeled agreement check) counts per-variable
    messages.

    ``compensated_farfield`` enables the "more sophisticated strategy"
    the paper mentions but did not pursue: the far-field partial
    potentials are combined with elementwise compensated (Neumaier)
    summation instead of a plain rank-order fold, making the parallel
    far field accurate to ~1 ulp of the exact double sum and therefore
    nearly independent of the process count.

    ``overlap=True`` selects the compute/communication overlap
    refinement: every update phase is split into a *shell* pass over
    the communication strips and an *interior* pass over the rest, and
    every boundary exchange into a begin (send) and end (receive)
    stage, so the interior sweep runs while the ghost frames are in
    flight.  Per-step stage order::

        recv H ghosts            (from the previous step's send)
        E-shell:    Mur record/update/apply + sources on the strips
        send E strips
        E-interior: Mur record/update/apply + sources elsewhere
        recv E ghosts
        H-shell:    H update on the strips
        send H strips            (skipped on the last step)
        H-interior: H update elsewhere + far-field accumulation

    Sends only move earlier and receives later relative to the same
    data dependencies, and the passes partition each phase's cells
    exactly, so the results are bitwise identical to ``overlap=False``
    on every engine.  Overlap always coalesces each phase's components
    into one combined exchange (it subsumes ``batch_exchanges``).

    ``backend`` names the array namespace
    (:func:`repro.xp.get_backend`) the update kernels run on —
    ``"numpy"`` (default) or ``"cupy"`` where installed; resolution
    happens here so a missing backend fails at build time, not
    mid-run.
    """
    version = version.upper()
    if version not in ("A", "C"):
        raise FDTDError(f"unknown FDTD version {version!r}")
    if version == "C" and ntff is None:
        ntff = NTFFConfig()
    from repro.xp import get_backend

    get_backend(backend)  # fail fast on an unknown/absent backend

    grid = config.grid
    decomp = BlockDecomposition(grid.node_shape, pshape, ghost=1)
    builder = MeshProgramBuilder(
        decomp, use_host=True, name=f"fdtd-{version}-p{pshape}"
    )

    # ---- declarations (plan step 1) --------------------------------------
    fields0 = config.initial_fields()
    for comp in COMPONENTS:
        builder.declare_distributed(comp, fields0[comp])
    coef_arrays = config.coefficient_set().arrays()
    for name, arr in coef_arrays.items():
        builder.declare_distributed(name, arr)

    # ---- per-rank specialisation (plan step 2) ----------------------------
    inv_spacing = tuple(1.0 / d for d in grid.spacing)
    regions_by_rank = [
        local_update_regions(grid, decomp, r) for r in range(decomp.nprocs)
    ]
    murs = None
    if config.boundary == "mur1":
        murs = [
            Mur1(grid, _mur_local_regions(grid, decomp, r))
            for r in range(decomp.nprocs)
        ]
    # Each source contributes a per-rank applier only on the ranks it
    # touches: one rank for a point source, a slab of ranks for a plane
    # source — the §4.4 "performed differently in individual processes".
    sources_by_rank: dict[int, list] = {}
    for src in config.sources:
        for rank in range(decomp.nprocs):
            applier = src.make_local_applier(grid, decomp, rank)
            if applier is not None:
                sources_by_rank.setdefault(rank, []).append(applier)

    accumulators = None
    nbins = 0
    if version == "C":
        accumulators = [
            NTFFAccumulator(
                grid, ntff, steps=config.steps, restrict=(decomp, r)
            )
            for r in range(decomp.nprocs)
        ]
        nbins = accumulators[0].nbins
        ndirs = len(ntff.directions)
        shape = (ndirs, nbins, 3)
        builder.declare_grid_only("ffA", lambda r, _s=shape: np.zeros(_s))
        builder.declare_grid_only("ffF", lambda r, _s=shape: np.zeros(_s))

    # ---- optional explicit I/O redistribution ----------------------------
    if include_io_stages:
        builder.distribute(*COMPONENTS)
        builder.distribute(*coef_arrays.keys())

    # ---- the time loop (plan step 3-4) -----------------------------------
    # One scratch per rank: ranks may run concurrently (threaded engine)
    # or in separate processes (scratch crosses empty and refills there);
    # either way the steady-state step loop allocates no temporaries.
    scratches = [KernelScratch(backend) for _ in range(decomp.nprocs)]

    if overlap:
        _overlap_time_loop(
            builder, config, decomp, grid, inv_spacing, scratches, accumulators
        )
    else:

        def e_phase(store: AddressSpace, rank: int, step: int) -> None:
            mur = murs[rank] if murs is not None else None
            if mur is not None:
                mur.record(store)
            update_e(
                store, regions_by_rank[rank], inv_spacing, scratches[rank]
            )
            if mur is not None:
                mur.apply(store)
            for apply_source in sources_by_rank.get(rank, ()):
                apply_source(store, step)

        def h_phase(store: AddressSpace, rank: int, step: int) -> None:
            update_h(
                store, regions_by_rank[rank], inv_spacing, scratches[rank]
            )
            if accumulators is not None:
                accumulators[rank].accumulate_into(
                    store, step, store["ffA"], store["ffF"]
                )

        for step in range(config.steps):
            builder.exchange_boundaries(*H_COMPONENTS, batch=batch_exchanges)
            builder.grid_spmd(
                lambda store, rank, _n=step: e_phase(store, rank, _n),
                name=f"E-phase[{step}]",
            )
            builder.exchange_boundaries(*E_COMPONENTS, batch=batch_exchanges)
            builder.grid_spmd(
                lambda store, rank, _n=step: h_phase(store, rank, _n),
                name=f"H-phase[{step}]",
            )

    # ---- epilogue: reductions and collection ------------------------------
    if version == "C":
        mode = "kahan" if compensated_farfield else "fold"
        ff_op = None if compensated_farfield else np.add
        builder.reduce(
            "ffA",
            "ffA_total",
            example=np.zeros((ndirs, nbins, 3)),
            op=ff_op,
            mode=mode,
        )
        builder.reduce(
            "ffF",
            "ffF_total",
            example=np.zeros((ndirs, nbins, 3)),
            op=ff_op,
            mode=mode,
        )
    builder.collect(*COMPONENTS)

    return ParallelFDTD(
        config=config,
        decomp=decomp,
        builder=builder,
        version=version,
        ntff_config=ntff,
        ntff_bins=nbins,
        overlap=overlap,
        backend=backend,
    )
