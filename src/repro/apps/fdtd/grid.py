"""Yee-grid geometry and time-step bookkeeping.

The application models "transient electromagnetic scattering and
interactions with objects of arbitrary shape and composition"; "the
object and surrounding space are represented by a 3-dimensional grid of
computational cells" (paper section 4.1).  This module fixes the grid
conventions used by the whole solver:

* ``nx x ny x nz`` computational cells; spacing ``(dx, dy, dz)``;
* staggered (Yee) field components, all stored in arrays of the common
  **node shape** ``(nx+1, ny+1, nz+1)`` — the same uniform-dimension
  layout the Kunz & Luebbers Fortran codes use (``IE, JE, KE``), which
  also lets a single block decomposition govern every field array;
* each component is *valid* (physically meaningful) on a sub-range of
  the node grid; array entries outside the valid range are never read
  or written:

  ============ ==================== =====================
  component    location              valid index ranges
  ============ ==================== =====================
  ``Ex(i,j,k)`` ``(i+1/2, j, k)``    ``i<nx``
  ``Ey(i,j,k)`` ``(i, j+1/2, k)``    ``j<ny``
  ``Ez(i,j,k)`` ``(i, j, k+1/2)``    ``k<nz``
  ``Hx(i,j,k)`` ``(i, j+1/2, k+1/2)`` ``j<ny, k<nz``
  ``Hy(i,j,k)`` ``(i+1/2, j, k+1/2)`` ``i<nx, k<nz``
  ``Hz(i,j,k)`` ``(i+1/2, j+1/2, k)`` ``i<nx, j<ny``
  ============ ==================== =====================

* the time step defaults to ``courant_fraction`` of the 3-D Courant
  limit ``dt_max = 1 / (c0 * sqrt(dx^-2 + dy^-2 + dz^-2))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.fdtd.constants import C0
from repro.errors import FDTDError, StabilityError

__all__ = ["YeeGrid", "FieldSet", "E_COMPONENTS", "H_COMPONENTS", "COMPONENTS"]

E_COMPONENTS = ("ex", "ey", "ez")
H_COMPONENTS = ("hx", "hy", "hz")
COMPONENTS = E_COMPONENTS + H_COMPONENTS

#: Per-component (lo_trim, hi_trim) in *update-region* terms: the range
#: of node indices updated by the standard interior update is
#: ``[lo, extent - hi)`` along each axis.  E components skip their
#: tangential nodes on the outer boundary (PEC there, or an ABC updates
#: them separately); every component also excludes the node index that
#: lies beyond its valid range (the staggered +1/2 location).
UPDATE_TRIMS: dict[str, tuple[tuple[int, int], ...]] = {
    # E: own axis valid < n (hi 1); transverse axes interior [1, n) (lo 1, hi 1)
    "ex": ((0, 1), (1, 1), (1, 1)),
    "ey": ((1, 1), (0, 1), (1, 1)),
    "ez": ((1, 1), (1, 1), (0, 1)),
    # H: full valid ranges, no tangential-boundary exclusion
    "hx": ((0, 0), (0, 1), (0, 1)),
    "hy": ((0, 1), (0, 0), (0, 1)),
    "hz": ((0, 1), (0, 1), (0, 0)),
}


@dataclass(frozen=True)
class YeeGrid:
    """Grid geometry: cells, spacing, and time step."""

    shape: tuple[int, int, int]  # cells per axis (nx, ny, nz)
    spacing: tuple[float, float, float] = (1.0e-2, 1.0e-2, 1.0e-2)
    courant_fraction: float = 0.99
    dt: float = 0.0  # 0 -> derived from the Courant limit

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(n < 2 for n in self.shape):
            raise FDTDError(
                f"grid needs at least 2 cells per axis, got {self.shape}"
            )
        if any(d <= 0 for d in self.spacing):
            raise FDTDError(f"non-positive spacing {self.spacing}")
        if not 0 < self.courant_fraction <= 1.0:
            raise FDTDError(
                f"courant fraction must be in (0, 1], got "
                f"{self.courant_fraction}"
            )
        if self.dt == 0.0:
            object.__setattr__(
                self, "dt", self.courant_fraction * self.dt_max
            )
        elif self.dt > self.dt_max:
            raise StabilityError(
                f"dt={self.dt:.3e}s exceeds the Courant limit "
                f"{self.dt_max:.3e}s for spacing {self.spacing}"
            )

    @property
    def dt_max(self) -> float:
        """The 3-D Courant stability limit."""
        dx, dy, dz = self.spacing
        return 1.0 / (C0 * math.sqrt(dx**-2 + dy**-2 + dz**-2))

    @property
    def node_shape(self) -> tuple[int, int, int]:
        """Common allocation shape of every field array."""
        return tuple(n + 1 for n in self.shape)

    @property
    def ncells(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def update_region(self, component: str) -> tuple[slice, ...]:
        """Global node-index slices the standard interior update writes
        for ``component`` (see :data:`UPDATE_TRIMS`)."""
        trims = UPDATE_TRIMS[component]
        return tuple(
            slice(lo, n + 1 - hi)
            for (lo, hi), n in zip(trims, self.shape)
        )

    def contains_node(self, index: tuple[int, int, int]) -> bool:
        return all(0 <= i <= n for i, n in zip(index, self.shape))


@dataclass
class FieldSet:
    """The six field arrays (all node-shaped)."""

    ex: np.ndarray
    ey: np.ndarray
    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    hz: np.ndarray

    @classmethod
    def zeros(cls, grid: YeeGrid, dtype=np.float64) -> "FieldSet":
        return cls(
            *[np.zeros(grid.node_shape, dtype=dtype) for _ in range(6)]
        )

    def __getitem__(self, name: str) -> np.ndarray:
        return getattr(self, name)

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        setattr(self, name, value)

    def components(self) -> dict[str, np.ndarray]:
        return {name: self[name] for name in COMPONENTS}

    def copy(self) -> "FieldSet":
        return FieldSet(**{k: v.copy() for k, v in self.components().items()})
