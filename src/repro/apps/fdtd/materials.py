"""Frequency-independent dielectric and magnetic materials.

The Version C user's manual the paper cites covers "scattering from
frequency-independent dielectric and magnetic materials": each cell has
relative permittivity ``eps_r``, electric conductivity ``sigma_e``,
relative permeability ``mu_r``, and magnetic loss ``sigma_m``.  The
standard lossy-material update coefficients follow:

* E components: ``e_new = ca * e + cb * curl(H)`` with
  ``ca = (1 - k) / (1 + k)``, ``cb = (dt / eps) / (1 + k)``,
  ``k = sigma_e * dt / (2 eps)``;
* H components: ``h_new = da * h + db * curl(E)`` with the dual
  expressions in ``mu`` and ``sigma_m``.

Perfect electric conductors are represented by ``ca = cb = 0`` at the
component nodes inside the conductor: the tangential E field stays
exactly zero there, forever — no special-case code in the update loop.

Simplification (documented in DESIGN.md): coefficient arrays are
sampled on the node grid from the cell containing each node (no
half-cell spatial averaging of material constants).  The parallelization
methodology is indifferent to the sampling rule — coefficients are just
more distributed read-only grid data — and the solver remains a faithful
frequency-independent-material FDTD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.fdtd.constants import EPS0, MU0
from repro.apps.fdtd.grid import E_COMPONENTS, H_COMPONENTS, YeeGrid
from repro.errors import GeometryError

__all__ = ["Material", "VACUUM", "MaterialGrid", "CoefficientSet"]


@dataclass(frozen=True)
class Material:
    """A frequency-independent material."""

    eps_r: float = 1.0
    mu_r: float = 1.0
    sigma_e: float = 0.0  # electric conductivity [S/m]
    sigma_m: float = 0.0  # magnetic loss [ohm/m]
    name: str = "material"

    def __post_init__(self) -> None:
        if self.eps_r <= 0 or self.mu_r <= 0:
            raise GeometryError(
                f"{self.name}: eps_r and mu_r must be positive"
            )
        if self.sigma_e < 0 or self.sigma_m < 0:
            raise GeometryError(f"{self.name}: losses must be non-negative")


VACUUM = Material(name="vacuum")


@dataclass
class CoefficientSet:
    """Per-component update coefficient arrays (all node-shaped).

    ``ca[c]``/``cb[c]`` for the E components, ``da[c]``/``db[c]`` for
    the H components.
    """

    ca: dict[str, np.ndarray] = field(default_factory=dict)
    cb: dict[str, np.ndarray] = field(default_factory=dict)
    da: dict[str, np.ndarray] = field(default_factory=dict)
    db: dict[str, np.ndarray] = field(default_factory=dict)

    def arrays(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping (names like ``ca_ex``)."""
        out: dict[str, np.ndarray] = {}
        for comp in E_COMPONENTS:
            out[f"ca_{comp}"] = self.ca[comp]
            out[f"cb_{comp}"] = self.cb[comp]
        for comp in H_COMPONENTS:
            out[f"da_{comp}"] = self.da[comp]
            out[f"db_{comp}"] = self.db[comp]
        return out


class MaterialGrid:
    """Material maps over the node grid, plus geometry builders.

    Build the scene by painting materials into boxes and spheres (later
    paints overwrite earlier ones), optionally add perfect conductors,
    then call :meth:`coefficients` for the update coefficient arrays.
    """

    def __init__(self, grid: YeeGrid):
        self.grid = grid
        shape = grid.node_shape
        self.eps_r = np.ones(shape)
        self.mu_r = np.ones(shape)
        self.sigma_e = np.zeros(shape)
        self.sigma_m = np.zeros(shape)
        self.pec = np.zeros(shape, dtype=bool)

    # -- geometry builders ----------------------------------------------------

    def _check_box(self, lo: tuple[int, int, int], hi: tuple[int, int, int]):
        for a, b, n in zip(lo, hi, self.grid.node_shape):
            if not 0 <= a < b <= n:
                raise GeometryError(
                    f"box [{lo}, {hi}) does not fit node grid "
                    f"{self.grid.node_shape}"
                )

    def fill(self, material: Material) -> "MaterialGrid":
        """Paint the whole domain."""
        self.eps_r[...] = material.eps_r
        self.mu_r[...] = material.mu_r
        self.sigma_e[...] = material.sigma_e
        self.sigma_m[...] = material.sigma_m
        return self

    def add_box(
        self,
        lo: tuple[int, int, int],
        hi: tuple[int, int, int],
        material: Material,
    ) -> "MaterialGrid":
        """Paint a rectangular block of ``material`` over node indices
        ``lo`` (inclusive) to ``hi`` (exclusive)."""
        self._check_box(lo, hi)
        region = tuple(slice(a, b) for a, b in zip(lo, hi))
        self.eps_r[region] = material.eps_r
        self.mu_r[region] = material.mu_r
        self.sigma_e[region] = material.sigma_e
        self.sigma_m[region] = material.sigma_m
        return self

    def add_sphere(
        self,
        center: tuple[float, float, float],
        radius: float,
        material: Material,
    ) -> "MaterialGrid":
        """Paint a sphere (node-index coordinates) of ``material``."""
        if radius <= 0:
            raise GeometryError(f"sphere radius must be positive, got {radius}")
        idx = np.indices(self.grid.node_shape)
        dist2 = sum(
            (idx[a] - center[a]) ** 2 for a in range(3)
        )
        mask = dist2 <= radius * radius
        if not mask.any():
            raise GeometryError("sphere covers no grid node")
        self.eps_r[mask] = material.eps_r
        self.mu_r[mask] = material.mu_r
        self.sigma_e[mask] = material.sigma_e
        self.sigma_m[mask] = material.sigma_m
        return self

    def add_pec_box(
        self, lo: tuple[int, int, int], hi: tuple[int, int, int]
    ) -> "MaterialGrid":
        """Mark a block as perfect electric conductor."""
        self._check_box(lo, hi)
        region = tuple(slice(a, b) for a, b in zip(lo, hi))
        self.pec[region] = True
        return self

    def add_pec_plate(
        self, axis: int, index: int, lo2d: tuple[int, int], hi2d: tuple[int, int]
    ) -> "MaterialGrid":
        """A one-node-thick PEC plate normal to ``axis`` at ``index``."""
        lo = list(lo2d)
        hi = list(hi2d)
        lo.insert(axis, index)
        hi.insert(axis, index + 1)
        return self.add_pec_box(tuple(lo), tuple(hi))

    # -- coefficients ----------------------------------------------------------

    def coefficients(self) -> CoefficientSet:
        """The six (ca, cb) / (da, db) coefficient-array pairs."""
        dt = self.grid.dt
        eps = self.eps_r * EPS0
        mu = self.mu_r * MU0
        ke = self.sigma_e * dt / (2.0 * eps)
        km = self.sigma_m * dt / (2.0 * mu)
        ca = (1.0 - ke) / (1.0 + ke)
        cb = (dt / eps) / (1.0 + ke)
        da = (1.0 - km) / (1.0 + km)
        db = (dt / mu) / (1.0 + km)
        # PEC: freeze E at zero.
        ca = np.where(self.pec, 0.0, ca)
        cb = np.where(self.pec, 0.0, cb)
        out = CoefficientSet()
        for comp in E_COMPONENTS:
            out.ca[comp] = ca.copy()
            out.cb[comp] = cb.copy()
        for comp in H_COMPONENTS:
            out.da[comp] = da.copy()
            out.db[comp] = db.copy()
        return out
