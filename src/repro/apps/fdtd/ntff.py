"""Near-field to far-field transformation (paper section 4.1).

"This part of the computation uses the above-calculated electric and
magnetic fields to compute radiation vector potentials at each time
step by integrating over a closed surface near the boundary of the
3-dimensional grid.  The electric and magnetic fields at a particular
point on the integration surface at a particular time step affect the
radiation vector potential at some future time step (depending on the
point's position); thus, each calculated vector potential is a double
sum, over time steps and over points on the integration surface."

This module implements exactly that structure:

* a closed **integration surface**: the box of nodes ``gap`` cells in
  from the outer boundary, traversed face by face in a fixed order;
* **equivalent currents** at each surface node: ``J = n x H`` and
  ``M = -n x E`` (components sampled at the node — no staggered-grid
  interpolation, a documented simplification that preserves the
  double-sum structure the experiment is about);
* per observation direction ``r_hat``, a **retarded accumulation**:
  the step-``n`` contribution of point ``p`` lands in time bin
  ``n + delay(p)`` with ``delay = round(r_hat . (p - center) / (c0 dt))``
  shifted to be non-negative;
* the **radiation vector potentials** ``A`` (from J) and ``F`` (from M)
  as arrays of shape ``(ndirections, nbins, 3)``.

Summation order is the whole point of experiment E2.  The sequential
code accumulates in global traversal order (face order, C-order within
each face).  The parallelized code gives each grid process the surface
points it owns, accumulated in the same per-point order, and then sums
the per-process partials in rank order — a pure *reordering* of the
double sum, which floating-point addition does not forgive.  The class
supports both through ``restrict``: pass a decomposition and rank to
build a process-local accumulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.fdtd.constants import C0
from repro.apps.fdtd.grid import YeeGrid
from repro.archetypes.mesh.decomposition import BlockDecomposition
from repro.errors import GeometryError

__all__ = ["NTFFConfig", "NTFFAccumulator", "default_directions"]

# Unit normals per (axis, side).
_NORMALS = {
    (0, -1): np.array([-1.0, 0.0, 0.0]),
    (0, 1): np.array([1.0, 0.0, 0.0]),
    (1, -1): np.array([0.0, -1.0, 0.0]),
    (1, 1): np.array([0.0, 1.0, 0.0]),
    (2, -1): np.array([0.0, 0.0, -1.0]),
    (2, 1): np.array([0.0, 0.0, 1.0]),
}

#: Fixed face traversal order (axis, side) — part of the summation-order
#: contract between sequential and parallel versions.
FACE_ORDER = [(0, -1), (0, 1), (1, -1), (1, 1), (2, -1), (2, 1)]


def default_directions() -> np.ndarray:
    """A small set of observation directions (unit vectors): the +x
    forward direction, +z, and one oblique."""
    dirs = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0] / np.sqrt(3.0),
        ]
    )
    return dirs


@dataclass(frozen=True)
class NTFFConfig:
    """Far-field configuration."""

    gap: int = 3  # surface inset from the outer node boundary, in nodes
    directions: np.ndarray = field(default_factory=default_directions)

    def surface_bounds(self, grid: YeeGrid) -> list[tuple[int, int]]:
        """Per-axis [lo, hi] (inclusive) node indices of the surface box."""
        bounds = []
        for n in grid.shape:
            lo, hi = self.gap, n - self.gap
            if hi - lo < 1:
                raise GeometryError(
                    f"NTFF gap {self.gap} leaves no surface inside a "
                    f"{grid.shape}-cell grid"
                )
            bounds.append((lo, hi))
        return bounds


class NTFFAccumulator:
    """Retarded accumulation of radiation vector potentials.

    Parameters
    ----------
    grid, config:
        Geometry and observation directions.
    steps:
        Number of time steps that will be accumulated (sizes the bins).
    restrict:
        ``None`` for the full surface (sequential code), or
        ``(decomposition, rank)`` to keep only the surface nodes the
        rank owns — the per-process accumulator of the parallelized
        far-field calculation.
    index_offset:
        Per-axis offset added to global node indices to address the
        caller's arrays: ``(0, 0, 0)`` for global arrays; for a ghosted
        local array, ``ghost - owned_start`` per axis.
    """

    def __init__(
        self,
        grid: YeeGrid,
        config: NTFFConfig,
        steps: int,
        restrict: tuple[BlockDecomposition, int] | None = None,
        dtype=np.float64,
    ):
        self.grid = grid
        self.config = config
        self.steps = steps
        self.directions = np.asarray(config.directions, dtype=np.float64)
        ndirs = len(self.directions)

        bounds = config.surface_bounds(grid)
        center = np.array([(lo + hi) / 2.0 for lo, hi in bounds])
        spacing = np.asarray(grid.spacing)

        if restrict is None:
            owned = [(0, n + 1) for n in grid.shape]
            offset = np.zeros(3, dtype=np.int64)
        else:
            decomp, rank = restrict
            owned = decomp.owned_bounds(rank)
            offset = np.array(
                [decomp.ghost - a for (a, b) in owned], dtype=np.int64
            )
        self._offset = offset

        # Global delay range must be identical on every rank, so compute
        # it from the full surface regardless of restriction.
        # Raw delays span [-max_delay, +max_delay]; after the
        # +max_delay shift, bins run up to (steps-1) + 2*max_delay.
        self._max_delay = self._global_max_delay(bounds, center, spacing)
        self.nbins = steps + 2 * self._max_delay

        # Precompute, per face: node index arrays (flattened C-order),
        # per-direction delay bins, area element, normal.
        self._faces: list[dict] = []
        for axis, side in FACE_ORDER:
            plane = bounds[axis][0] if side == -1 else bounds[axis][1]
            ranges = []
            for a in range(3):
                if a == axis:
                    ranges.append(np.array([plane]))
                else:
                    lo, hi = bounds[a]
                    lo = max(lo, owned[a][0])
                    hi = min(hi, owned[a][1] - 1)
                    if lo > hi:
                        ranges = None
                        break
                    ranges.append(np.arange(lo, hi + 1))
            if ranges is None:
                continue
            if restrict is not None and not (
                owned[axis][0] <= plane < owned[axis][1]
            ):
                continue
            ii, jj, kk = np.meshgrid(*ranges, indexing="ij")
            idx = np.stack(
                [ii.ravel(), jj.ravel(), kk.ravel()], axis=1
            )  # (npoints, 3), C-order traversal
            if idx.shape[0] == 0:
                continue
            phys = (idx - center) * spacing  # (npoints, 3)
            delays = np.empty((ndirs, idx.shape[0]), dtype=np.int64)
            for d, rhat in enumerate(self.directions):
                delays[d] = np.rint(
                    (phys @ rhat) / (C0 * grid.dt)
                ).astype(np.int64)
            delays += self._max_delay  # shift to non-negative bins
            transverse = [a for a in range(3) if a != axis]
            dA = spacing[transverse[0]] * spacing[transverse[1]]
            self._faces.append(
                {
                    "axis": axis,
                    "side": side,
                    "normal": _NORMALS[(axis, side)],
                    "idx": idx,
                    "delays": delays,
                    "dA": dA,
                }
            )

        #: radiation vector potential from J = n x H
        self.A = np.zeros((ndirs, self.nbins, 3), dtype=dtype)
        #: radiation vector potential from M = -n x E
        self.F = np.zeros((ndirs, self.nbins, 3), dtype=dtype)

    def _global_max_delay(self, bounds, center, spacing) -> int:
        corners = np.array(
            [
                [b[i] for b, i in zip(bounds, (c0, c1, c2))]
                for c0 in (0, 1)
                for c1 in (0, 1)
                for c2 in (0, 1)
            ],
            dtype=np.float64,
        )
        phys = (corners - center) * spacing
        worst = np.max(np.abs(phys @ self.directions.T))
        return int(np.rint(worst / (C0 * self.grid.dt))) + 1

    @property
    def npoints(self) -> int:
        """Surface points this accumulator integrates."""
        return sum(f["idx"].shape[0] for f in self._faces)

    # -- accumulation ----------------------------------------------------------

    def accumulate(self, arrays, step: int) -> None:
        """Add step ``step``'s surface contributions (the inner sum of
        the double sum) into this accumulator's own ``A``/``F``.

        ``arrays`` maps component names to (global or local) arrays;
        local indices are formed with the configured offset.
        """
        self.accumulate_into(arrays, step, self.A, self.F)

    def accumulate_into(
        self, arrays, step: int, A: np.ndarray, F: np.ndarray
    ) -> None:
        """Accumulate into caller-owned potential arrays.

        Used by the parallelized versions, whose per-process partial
        potentials live in the process *store* (so that each run of the
        transformed system starts from a fresh zero state and the final
        reduction is an ordinary archetype reduction over store
        variables).
        """
        off = self._offset
        for face in self._faces:
            idx = face["idx"]
            i = idx[:, 0] + off[0]
            j = idx[:, 1] + off[1]
            k = idx[:, 2] + off[2]
            h = np.stack(
                [arrays["hx"][i, j, k], arrays["hy"][i, j, k], arrays["hz"][i, j, k]],
                axis=1,
            )
            e = np.stack(
                [arrays["ex"][i, j, k], arrays["ey"][i, j, k], arrays["ez"][i, j, k]],
                axis=1,
            )
            n = face["normal"]
            J = np.cross(np.broadcast_to(n, h.shape), h) * face["dA"]
            M = -np.cross(np.broadcast_to(n, e.shape), e) * face["dA"]
            for d in range(len(self.directions)):
                bins = step + face["delays"][d]
                # np.add.at applies duplicates in element order: the
                # traversal order is part of the summation-order
                # contract (see module docstring).
                for c in range(3):
                    np.add.at(A[d, :, c], bins, J[:, c])
                    np.add.at(F[d, :, c], bins, M[:, c])

    # -- results ---------------------------------------------------------------

    def potentials(self) -> tuple[np.ndarray, np.ndarray]:
        """The (A, F) radiation vector potential arrays."""
        return self.A, self.F

    def reset(self) -> None:
        self.A[...] = 0.0
        self.F[...] = 0.0
