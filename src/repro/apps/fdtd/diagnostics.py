"""Observables: energy, probes, field extrema.

These are the "reduction operations" of the mesh archetype as they
appear in the application — grid-to-scalar computations whose parallel
form is a local partial plus a combining step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.fdtd.constants import EPS0, MU0
from repro.apps.fdtd.grid import E_COMPONENTS, H_COMPONENTS, FieldSet, YeeGrid

__all__ = ["field_energy", "Probe", "max_abs_field"]


def field_energy(
    grid: YeeGrid,
    fields: FieldSet,
    eps_r: np.ndarray | None = None,
    mu_r: np.ndarray | None = None,
) -> float:
    """Total electromagnetic energy ``(eps E^2 + mu H^2) / 2`` summed
    over the grid (cell volume weighted).

    Node-sampled, like the material maps; adequate as a stability /
    regression observable (energy in a lossless PEC box must stay
    bounded; with Mur walls it must decay).
    """
    dv = float(np.prod(grid.spacing))
    eps = EPS0 * (eps_r if eps_r is not None else 1.0)
    mu = MU0 * (mu_r if mu_r is not None else 1.0)
    e2 = sum(fields[c] ** 2 for c in E_COMPONENTS)
    h2 = sum(fields[c] ** 2 for c in H_COMPONENTS)
    return float(0.5 * dv * (np.sum(eps * e2) + np.sum(mu * h2)))


def max_abs_field(fields: FieldSet) -> float:
    """Largest absolute field value over all components (a reduction)."""
    return max(
        float(np.max(np.abs(fields[c])))
        for c in E_COMPONENTS + H_COMPONENTS
    )


@dataclass
class Probe:
    """Record one component at one node every step."""

    component: str
    index: tuple[int, int, int]

    def __post_init__(self) -> None:
        self.series: list[float] = []

    def sample(self, fields: FieldSet) -> None:
        self.series.append(float(fields[self.component][self.index]))

    def values(self) -> np.ndarray:
        return np.asarray(self.series)
