"""Version C: near-field plus far-field sequential code (paper §4.1).

"Version C [Beggs et al.], which performs both near-field and far-field
calculations": everything Version A does, plus the near-to-far-field
transformation — radiation vector potentials accumulated at every step
by integrating equivalent currents over a closed surface near the grid
boundary (:mod:`repro.apps.fdtd.ntff`).

The far-field accumulation runs after the H update each step, over the
full surface in global traversal order.  That order is the baseline
against which the reordered (per-process partial) summation of the
parallelized version is compared in experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.fdtd.ntff import NTFFAccumulator, NTFFConfig
from repro.apps.fdtd.version_a import FDTDConfig, SequentialResult, VersionA

__all__ = ["VersionC", "FarFieldResult"]


@dataclass
class FarFieldResult(SequentialResult):
    """Sequential result extended with radiation vector potentials."""

    #: (ndirections, nbins, 3) potential from J = n x H
    vector_potential_A: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0, 3))
    )
    #: (ndirections, nbins, 3) potential from M = -n x E
    vector_potential_F: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0, 3))
    )


class VersionC(VersionA):
    """Sequential near-field + far-field driver."""

    name = "version-C"

    def __init__(
        self,
        config: FDTDConfig,
        ntff: NTFFConfig | None = None,
        use_scratch: bool = True,
    ):
        super().__init__(config, use_scratch=use_scratch)
        self.ntff_config = ntff or NTFFConfig()
        self.ntff = NTFFAccumulator(
            self.grid, self.ntff_config, steps=config.steps
        )

    def _post_h_update(self, arrays, step: int) -> None:
        self.ntff.accumulate(arrays, step)

    def _make_result(self, fields) -> FarFieldResult:
        base = super()._make_result(fields)
        A, F = self.ntff.potentials()
        return FarFieldResult(
            fields=base.fields,
            probes=base.probes,
            energy=base.energy,
            vector_potential_A=A.copy(),
            vector_potential_F=F.copy(),
        )

    def run(self) -> FarFieldResult:
        self.ntff.reset()  # allow repeated runs of one driver instance
        return super().run()  # type: ignore[return-value]
