"""Vectorized Yee leapfrog update kernels.

One generic kernel, :func:`curl_update`, serves all six components and
— crucially for the methodology — serves them identically in the
sequential code (global arrays, global update regions) and in the
grid-process code (ghosted local arrays, per-rank regions intersected
with the global region).  Because the kernel is purely elementwise over
the region it is given, partitioning the region across processes cannot
change a single floating-point operation: this is why the paper's
near-field results are *bitwise identical* across versions, and ours
are too.

The curl structure (standard Yee):

==========  ==============================  =========
component    update                          differences
==========  ==============================  =========
``ex``      ``+ dHz/dy - dHy/dz``           backward
``ey``      ``+ dHx/dz - dHz/dx``           backward
``ez``      ``+ dHy/dx - dHx/dy``           backward
``hx``      ``+ dEy/dz - dEz/dy``           forward
``hy``      ``+ dEz/dx - dEx/dz``           forward
``hz``      ``+ dEx/dy - dEy/dx``           forward
==========  ==============================  =========
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.fdtd.grid import E_COMPONENTS, H_COMPONENTS, UPDATE_TRIMS, YeeGrid
from repro.archetypes.mesh.decomposition import BlockDecomposition

__all__ = [
    "E_CURL",
    "H_CURL",
    "KernelScratch",
    "shift_region",
    "curl_update",
    "update_e",
    "update_h",
    "intersect_local",
    "local_update_regions",
    "comm_strips",
    "split_region",
    "split_local_update_regions",
]

#: component -> (field_a, axis_a, field_b, axis_b): update is
#: ``ca*self + cb*(d field_a / d axis_a - d field_b / d axis_b)``.
E_CURL: dict[str, tuple[str, int, str, int]] = {
    "ex": ("hz", 1, "hy", 2),
    "ey": ("hx", 2, "hz", 0),
    "ez": ("hy", 0, "hx", 1),
}
H_CURL: dict[str, tuple[str, int, str, int]] = {
    "hx": ("ey", 2, "ez", 1),
    "hy": ("ez", 0, "ex", 2),
    "hz": ("ex", 1, "ey", 0),
}


def shift_region(region: tuple[slice, ...], axis: int, delta: int) -> tuple[slice, ...]:
    """The region translated by ``delta`` along ``axis``."""
    out = list(region)
    s = region[axis]
    out[axis] = slice(s.start + delta, s.stop + delta)
    return tuple(out)


class KernelScratch:
    """Preallocated scratch buffers for the allocation-free kernel path.

    One instance serves one caller (one rank, or the sequential driver):
    the buffers are reused across steps and components, so the instance
    must not be shared between concurrently running ranks.  Buffers are
    keyed by ``(shape, dtype)``; the FDTD update regions are fixed for a
    given grid and decomposition, so after the first step the cache is
    warm and the leapfrog hot loop allocates no array memory at all —
    not even numpy's buffered-iteration scratch, because the kernel
    stages every strided region view through these contiguous buffers
    with ``np.copyto`` and runs all arithmetic contiguous-only.

    Buffer contents are pure cache (fully overwritten before every
    read), so pickling drops them: a scratch captured in a process-body
    closure crosses to a worker empty and refills on first use there.

    The buffers live on an array *backend* (``backend="numpy"`` by
    default, ``"cupy"`` for device memory): the scratch resolves the
    backend name through :func:`repro.xp.get_backend` and exposes the
    namespace as :attr:`xp` so kernels allocate and compute on whatever
    module the caller chose.
    """

    __slots__ = ("_bufs", "backend", "xp")

    def __init__(self, backend: str = "numpy") -> None:
        from repro.xp import get_backend

        self.backend = backend
        #: the array namespace buffers are allocated on
        self.xp = get_backend(backend).xp
        self._bufs: dict[
            tuple, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def trio(
        self, shape: tuple[int, ...], dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three scratch arrays for ``(shape, dtype)``, allocated once."""
        key = (shape, dtype)
        got = self._bufs.get(key)
        if got is None:
            got = self._bufs[key] = (
                self.xp.empty(shape, dtype),
                self.xp.empty(shape, dtype),
                self.xp.empty(shape, dtype),
            )
        return got

    def nbytes(self) -> int:
        """Total bytes currently held (tests and capacity accounting)."""
        return sum(sum(b.nbytes for b in bufs) for bufs in self._bufs.values())

    def __reduce__(self):
        # Buffer contents never cross a pickle: rebuild empty.
        return (KernelScratch, (self.backend,))


def curl_update(
    dst: np.ndarray,
    ca: np.ndarray,
    cb: np.ndarray,
    fa: np.ndarray,
    axis_a: int,
    inv_da: float,
    fb: np.ndarray,
    axis_b: int,
    inv_db: float,
    region: tuple[slice, ...],
    backward: bool,
    scratch: KernelScratch | None = None,
    xp=None,
) -> None:
    """``dst[R] = ca[R]*dst[R] + cb[R]*(d_a*inv_da - d_b*inv_db)``.

    ``backward=True`` uses ``f[x] - f[x-1]`` differences (E updates,
    reading one cell toward low indices — the low-side ghost in a
    partitioned array); ``backward=False`` uses ``f[x+1] - f[x]``
    (H updates, reading the high-side ghost).

    With a :class:`KernelScratch` the update runs through preallocated
    buffers and ``out=`` ufunc calls — zero array allocations per call,
    and bitwise-identical results: the per-element operation dag is
    unchanged (IEEE multiplication is commutative, so folding
    ``cb*(...)`` as ``(...)*cb`` into a buffer alters nothing), only
    where intermediates are stored.  Strided region views are staged
    into the contiguous scratch with ``np.copyto`` (a pure strided
    copy) before any arithmetic touches them; a ufunc handed a
    non-contiguous operand would otherwise allocate its fixed
    ``np.getbufsize()``-element iteration buffers on every call.

    ``xp`` is the array namespace the ufunc calls go through (NumPy by
    default, CuPy for device arrays — both implement this exact
    ``copyto``/``subtract``/``multiply``/``add`` ``out=`` slice of the
    API).  It defaults to the scratch's own backend namespace, which
    keeps buffers and arithmetic on the same device; the plain
    (allocating) path needs no namespace at all because operators
    dispatch on the array type.
    """
    if scratch is None:
        if backward:
            da = fa[region] - fa[shift_region(region, axis_a, -1)]
            db = fb[region] - fb[shift_region(region, axis_b, -1)]
        else:
            da = fa[shift_region(region, axis_a, 1)] - fa[region]
            db = fb[shift_region(region, axis_b, 1)] - fb[region]
        dst[region] = ca[region] * dst[region] + cb[region] * (
            da * inv_da - db * inv_db
        )
        return
    if xp is None:
        xp = scratch.xp
    view = dst[region]
    s1, s2, s3 = scratch.trio(view.shape, view.dtype)
    if backward:
        xp.copyto(s1, fa[region])
        xp.copyto(s2, fa[shift_region(region, axis_a, -1)])
        xp.subtract(s1, s2, out=s1)  # da
        xp.copyto(s2, fb[region])
        xp.copyto(s3, fb[shift_region(region, axis_b, -1)])
        xp.subtract(s2, s3, out=s2)  # db
    else:
        xp.copyto(s1, fa[shift_region(region, axis_a, 1)])
        xp.copyto(s2, fa[region])
        xp.subtract(s1, s2, out=s1)  # da
        xp.copyto(s2, fb[shift_region(region, axis_b, 1)])
        xp.copyto(s3, fb[region])
        xp.subtract(s2, s3, out=s2)  # db
    xp.multiply(s1, inv_da, out=s1)  # da * inv_da
    xp.multiply(s2, inv_db, out=s2)  # db * inv_db
    xp.subtract(s1, s2, out=s1)  # da*inv_da - db*inv_db
    xp.copyto(s2, cb[region])
    xp.multiply(s1, s2, out=s1)  # cb * (...)
    xp.copyto(s2, ca[region])
    xp.copyto(s3, view)
    xp.multiply(s2, s3, out=s2)  # ca * dst
    xp.add(s2, s1, out=s2)
    xp.copyto(view, s2)


def _region_pieces(region) -> list[tuple[slice, ...]]:
    """Normalize a region entry: ``None`` → no pieces, one region → one
    piece, a list of regions (the shell/interior split) → its pieces."""
    if region is None:
        return []
    if isinstance(region, list):
        return region
    return [region]


def update_e(
    arrays: Mapping[str, np.ndarray],
    regions: Mapping[str, tuple[slice, ...] | list | None],
    inv_spacing: tuple[float, float, float],
    scratch: KernelScratch | None = None,
    xp=None,
) -> None:
    """One E half-step over the given per-component regions.

    ``arrays`` maps ``ex..hz`` plus coefficient names ``ca_ex`` /
    ``cb_ex`` etc. to arrays (global or ghosted-local alike); a region
    of ``None`` means this caller updates nothing for that component
    (a rank whose block misses the component's update range), and a
    *list* of regions (the overlap refinement's shell pieces) updates
    each piece in order — the pieces are disjoint, so any order gives
    bitwise the same fields.  ``scratch`` (one per caller) selects the
    allocation-free path; ``xp`` the array namespace.
    """
    for comp in E_COMPONENTS:
        fa, axis_a, fb, axis_b = E_CURL[comp]
        for region in _region_pieces(regions[comp]):
            curl_update(
                arrays[comp],
                arrays[f"ca_{comp}"],
                arrays[f"cb_{comp}"],
                arrays[fa],
                axis_a,
                inv_spacing[axis_a],
                arrays[fb],
                axis_b,
                inv_spacing[axis_b],
                region,
                backward=True,
                scratch=scratch,
                xp=xp,
            )


def update_h(
    arrays: Mapping[str, np.ndarray],
    regions: Mapping[str, tuple[slice, ...] | list | None],
    inv_spacing: tuple[float, float, float],
    scratch: KernelScratch | None = None,
    xp=None,
) -> None:
    """One H half-step over the given per-component regions."""
    for comp in H_COMPONENTS:
        fa, axis_a, fb, axis_b = H_CURL[comp]
        for region in _region_pieces(regions[comp]):
            curl_update(
                arrays[comp],
                arrays[f"da_{comp}"],
                arrays[f"db_{comp}"],
                arrays[fa],
                axis_a,
                inv_spacing[axis_a],
                arrays[fb],
                axis_b,
                inv_spacing[axis_b],
                region,
                backward=False,
                scratch=scratch,
                xp=xp,
            )


def intersect_local(
    decomp: BlockDecomposition, rank: int, global_region: tuple[slice, ...]
) -> tuple[slice, ...] | None:
    """Translate a global region into ``rank``'s ghosted local array.

    Returns the local slices of the intersection of ``global_region``
    with the rank's owned block, or ``None`` when the intersection is
    empty.  This one helper is what makes "computations performed
    differently in the individual grid processes" (paper section 4.4)
    systematic rather than hand-written: boundary ranks automatically
    receive trimmed regions, interior ranks full ones.
    """
    g = decomp.ghost
    local: list[slice] = []
    for (a, b), s in zip(decomp.owned_bounds(rank), global_region):
        lo = max(s.start, a)
        hi = min(s.stop, b)
        if lo >= hi:
            return None
        local.append(slice(g + lo - a, g + hi - a))
    return tuple(local)


def local_update_regions(
    grid: YeeGrid, decomp: BlockDecomposition, rank: int
) -> dict[str, tuple[slice, ...] | None]:
    """Per-component local update regions for one rank."""
    return {
        comp: intersect_local(decomp, rank, grid.update_region(comp))
        for comp in UPDATE_TRIMS
    }


# ---------------------------------------------------------------------------
# Shell/interior splitting (the compute/communication overlap refinement)
# ---------------------------------------------------------------------------

#: one communication strip: owned cells at local indices [lo, hi) along
#: ``axis`` — exactly the slab whose values travel to a neighbour rank.
Strip = tuple[int, int, int]


def comm_strips(decomp: BlockDecomposition, rank: int) -> list[Strip]:
    """The rank's owned slabs adjacent to inter-rank faces, in local
    (ghosted) indices.

    For every axis/side with a real neighbour (physical-boundary sides
    have none), the ghost protocol sends the ``ghost``-deep plane of
    owned cells next to that face; these are precisely the cells that
    must be final before the sends of a step can fly, and the cells
    whose one-off-the-edge reads touch ghost data — the *shell* of the
    overlap refinement.  Everything outside every strip is *interior*:
    it neither feeds a message nor reads a ghost, so it can compute
    while the messages are in flight.
    """
    g = decomp.ghost
    strips: list[Strip] = []
    for axis, (a, b) in enumerate(decomp.owned_bounds(rank)):
        extent = b - a
        if decomp.pgrid.neighbor(rank, axis, -1) is not None:
            strips.append((axis, g, g + g))
        if decomp.pgrid.neighbor(rank, axis, 1) is not None:
            strips.append((axis, g + extent - g, g + extent))
    return strips


def split_region(
    region: tuple[slice, ...] | None, strips: list[Strip]
) -> tuple[list[tuple[slice, ...]], list[tuple[slice, ...]]]:
    """Split a local region into ``(shell_pieces, interior_pieces)``.

    The shell is the intersection of the region with the union of the
    strips, carved into disjoint boxes by peeling one strip at a time;
    the interior is what remains.  Together the pieces tile the region
    exactly — every cell appears in exactly one piece — so updating the
    pieces in any order is elementwise identical to one update of the
    whole region.
    """
    if region is None:
        return [], []
    shells: list[tuple[slice, ...]] = []
    boxes: list[list[tuple[int, int]]] = [
        [(s.start, s.stop) for s in region]
    ]
    for axis, lo, hi in strips:
        next_boxes: list[list[tuple[int, int]]] = []
        for box in boxes:
            a, b = box[axis]
            cut_lo, cut_hi = max(a, lo), min(b, hi)
            if cut_lo >= cut_hi:
                next_boxes.append(box)
                continue
            piece = list(box)
            piece[axis] = (cut_lo, cut_hi)
            shells.append(tuple(slice(p, q) for p, q in piece))
            if a < cut_lo:  # remainder below the strip
                below = list(box)
                below[axis] = (a, cut_lo)
                next_boxes.append(below)
            if cut_hi < b:  # remainder above the strip
                above = list(box)
                above[axis] = (cut_hi, b)
                next_boxes.append(above)
        boxes = next_boxes
    interior = [tuple(slice(p, q) for p, q in box) for box in boxes]
    return shells, interior


def split_local_update_regions(
    grid: YeeGrid, decomp: BlockDecomposition, rank: int
) -> tuple[
    dict[str, list[tuple[slice, ...]]], dict[str, list[tuple[slice, ...]]]
]:
    """Per-component ``(shell, interior)`` update-region pieces for one
    rank — :func:`local_update_regions` split along the communication
    strips.  With no inter-rank neighbours (a 1×1×1 decomposition) the
    shell is empty and the interior is the whole region, so the
    overlapped program degenerates to the baseline."""
    strips = comm_strips(decomp, rank)
    shell: dict[str, list[tuple[slice, ...]]] = {}
    interior: dict[str, list[tuple[slice, ...]]] = {}
    for comp, region in local_update_regions(grid, decomp, rank).items():
        shell[comp], interior[comp] = split_region(region, strips)
    return shell, interior
