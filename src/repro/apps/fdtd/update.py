"""Vectorized Yee leapfrog update kernels.

One generic kernel, :func:`curl_update`, serves all six components and
— crucially for the methodology — serves them identically in the
sequential code (global arrays, global update regions) and in the
grid-process code (ghosted local arrays, per-rank regions intersected
with the global region).  Because the kernel is purely elementwise over
the region it is given, partitioning the region across processes cannot
change a single floating-point operation: this is why the paper's
near-field results are *bitwise identical* across versions, and ours
are too.

The curl structure (standard Yee):

==========  ==============================  =========
component    update                          differences
==========  ==============================  =========
``ex``      ``+ dHz/dy - dHy/dz``           backward
``ey``      ``+ dHx/dz - dHz/dx``           backward
``ez``      ``+ dHy/dx - dHx/dy``           backward
``hx``      ``+ dEy/dz - dEz/dy``           forward
``hy``      ``+ dEz/dx - dEx/dz``           forward
``hz``      ``+ dEx/dy - dEy/dx``           forward
==========  ==============================  =========
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.fdtd.grid import E_COMPONENTS, H_COMPONENTS, UPDATE_TRIMS, YeeGrid
from repro.archetypes.mesh.decomposition import BlockDecomposition

__all__ = [
    "E_CURL",
    "H_CURL",
    "shift_region",
    "curl_update",
    "update_e",
    "update_h",
    "intersect_local",
    "local_update_regions",
]

#: component -> (field_a, axis_a, field_b, axis_b): update is
#: ``ca*self + cb*(d field_a / d axis_a - d field_b / d axis_b)``.
E_CURL: dict[str, tuple[str, int, str, int]] = {
    "ex": ("hz", 1, "hy", 2),
    "ey": ("hx", 2, "hz", 0),
    "ez": ("hy", 0, "hx", 1),
}
H_CURL: dict[str, tuple[str, int, str, int]] = {
    "hx": ("ey", 2, "ez", 1),
    "hy": ("ez", 0, "ex", 2),
    "hz": ("ex", 1, "ey", 0),
}


def shift_region(region: tuple[slice, ...], axis: int, delta: int) -> tuple[slice, ...]:
    """The region translated by ``delta`` along ``axis``."""
    out = list(region)
    s = region[axis]
    out[axis] = slice(s.start + delta, s.stop + delta)
    return tuple(out)


def curl_update(
    dst: np.ndarray,
    ca: np.ndarray,
    cb: np.ndarray,
    fa: np.ndarray,
    axis_a: int,
    inv_da: float,
    fb: np.ndarray,
    axis_b: int,
    inv_db: float,
    region: tuple[slice, ...],
    backward: bool,
) -> None:
    """``dst[R] = ca[R]*dst[R] + cb[R]*(d_a*inv_da - d_b*inv_db)``.

    ``backward=True`` uses ``f[x] - f[x-1]`` differences (E updates,
    reading one cell toward low indices — the low-side ghost in a
    partitioned array); ``backward=False`` uses ``f[x+1] - f[x]``
    (H updates, reading the high-side ghost).
    """
    if backward:
        da = fa[region] - fa[shift_region(region, axis_a, -1)]
        db = fb[region] - fb[shift_region(region, axis_b, -1)]
    else:
        da = fa[shift_region(region, axis_a, 1)] - fa[region]
        db = fb[shift_region(region, axis_b, 1)] - fb[region]
    dst[region] = ca[region] * dst[region] + cb[region] * (
        da * inv_da - db * inv_db
    )


def update_e(
    arrays: Mapping[str, np.ndarray],
    regions: Mapping[str, tuple[slice, ...] | None],
    inv_spacing: tuple[float, float, float],
) -> None:
    """One E half-step over the given per-component regions.

    ``arrays`` maps ``ex..hz`` plus coefficient names ``ca_ex`` /
    ``cb_ex`` etc. to arrays (global or ghosted-local alike); a region
    of ``None`` means this caller updates nothing for that component
    (a rank whose block misses the component's update range).
    """
    for comp in E_COMPONENTS:
        region = regions[comp]
        if region is None:
            continue
        fa, axis_a, fb, axis_b = E_CURL[comp]
        curl_update(
            arrays[comp],
            arrays[f"ca_{comp}"],
            arrays[f"cb_{comp}"],
            arrays[fa],
            axis_a,
            inv_spacing[axis_a],
            arrays[fb],
            axis_b,
            inv_spacing[axis_b],
            region,
            backward=True,
        )


def update_h(
    arrays: Mapping[str, np.ndarray],
    regions: Mapping[str, tuple[slice, ...] | None],
    inv_spacing: tuple[float, float, float],
) -> None:
    """One H half-step over the given per-component regions."""
    for comp in H_COMPONENTS:
        region = regions[comp]
        if region is None:
            continue
        fa, axis_a, fb, axis_b = H_CURL[comp]
        curl_update(
            arrays[comp],
            arrays[f"da_{comp}"],
            arrays[f"db_{comp}"],
            arrays[fa],
            axis_a,
            inv_spacing[axis_a],
            arrays[fb],
            axis_b,
            inv_spacing[axis_b],
            region,
            backward=False,
        )


def intersect_local(
    decomp: BlockDecomposition, rank: int, global_region: tuple[slice, ...]
) -> tuple[slice, ...] | None:
    """Translate a global region into ``rank``'s ghosted local array.

    Returns the local slices of the intersection of ``global_region``
    with the rank's owned block, or ``None`` when the intersection is
    empty.  This one helper is what makes "computations performed
    differently in the individual grid processes" (paper section 4.4)
    systematic rather than hand-written: boundary ranks automatically
    receive trimmed regions, interior ranks full ones.
    """
    g = decomp.ghost
    local: list[slice] = []
    for (a, b), s in zip(decomp.owned_bounds(rank), global_region):
        lo = max(s.start, a)
        hi = min(s.stop, b)
        if lo >= hi:
            return None
        local.append(slice(g + lo - a, g + hi - a))
    return tuple(local)


def local_update_regions(
    grid: YeeGrid, decomp: BlockDecomposition, rank: int
) -> dict[str, tuple[slice, ...] | None]:
    """Per-component local update regions for one rank."""
    return {
        comp: intersect_local(decomp, rank, grid.update_region(comp))
        for comp in UPDATE_TRIMS
    }
