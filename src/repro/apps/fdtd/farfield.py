"""Far-zone fields and RCS-style observables from the vector potentials.

Section 4.1: "by applying a near-field to far-field transformation,
these fields can also be used to derive far fields, e.g., for radar
cross section computations."  The NTFF accumulator
(:mod:`repro.apps.fdtd.ntff`) produces the radiation vector potentials
``A`` (from the equivalent electric currents) and ``F`` (from the
magnetic ones); this module performs the derivation step:

* a spherical basis ``(theta_hat, phi_hat)`` per observation direction;
* the time-domain far-zone transverse electric field at distance ``r``::

      E_theta = -(1/(4 pi r c)) * (eta0 * dA_theta/dt + c * dF_phi/dt)
      E_phi   = -(1/(4 pi r c)) * (eta0 * dA_phi/dt   - c * dF_theta/dt)

  (time derivatives by central differences over the potential bins);
* scalar observables: time-integrated radiated energy density per
  direction and a monostatic RCS proxy (far-field energy normalised by
  the source waveform energy).

These are *derived* quantities: they inherit the far-field
reproducibility caveat of experiment E2 — two runs whose potentials
differ by reordering produce correspondingly different signals — which
makes them the right observable for showing the discrepancy at the
level a radar engineer would actually look at.
"""

from __future__ import annotations

import numpy as np

from repro.apps.fdtd.constants import C0, ETA0
from repro.errors import FDTDError

__all__ = [
    "spherical_basis",
    "far_field_signal",
    "far_field_energy",
    "rcs_proxy",
]


def spherical_basis(direction: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unit vectors ``(theta_hat, phi_hat)`` transverse to ``direction``.

    Convention: theta measured from the +z axis.  For directions within
    ~1e-9 of +-z (where phi is degenerate) the x-axis seeds the basis.
    """
    r = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(r)
    if norm == 0:
        raise FDTDError("observation direction must be non-zero")
    r = r / norm
    z = np.array([0.0, 0.0, 1.0])
    # phi_hat = z x r / |z x r|; degenerate at the poles.
    cross = np.cross(z, r)
    if np.linalg.norm(cross) < 1e-9:
        phi_hat = np.array([0.0, 1.0, 0.0])
    else:
        phi_hat = cross / np.linalg.norm(cross)
    theta_hat = np.cross(phi_hat, r)
    return theta_hat, phi_hat


def _time_derivative(series: np.ndarray, dt: float) -> np.ndarray:
    """Central-difference d/dt along axis 0 (one-sided at the ends)."""
    out = np.empty_like(series)
    out[1:-1] = (series[2:] - series[:-2]) / (2.0 * dt)
    out[0] = (series[1] - series[0]) / dt
    out[-1] = (series[-1] - series[-2]) / dt
    return out


def far_field_signal(
    A: np.ndarray,
    F: np.ndarray,
    directions: np.ndarray,
    dt: float,
    r: float = 1.0,
) -> dict[str, np.ndarray]:
    """Far-zone transverse E per direction from the vector potentials.

    ``A``/``F`` have shape ``(ndirs, nbins, 3)`` (as produced by
    :class:`~repro.apps.fdtd.ntff.NTFFAccumulator`); returns arrays
    ``e_theta`` and ``e_phi`` of shape ``(ndirs, nbins)``.
    """
    A = np.asarray(A, dtype=np.float64)
    F = np.asarray(F, dtype=np.float64)
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    if A.shape != F.shape or A.ndim != 3 or A.shape[2] != 3:
        raise FDTDError(
            f"potentials must both be (ndirs, nbins, 3); got {A.shape} "
            f"and {F.shape}"
        )
    if len(directions) != A.shape[0]:
        raise FDTDError(
            f"{len(directions)} directions for {A.shape[0]} potential sets"
        )
    if dt <= 0 or r <= 0:
        raise FDTDError("dt and r must be positive")

    ndirs, nbins, _ = A.shape
    e_theta = np.empty((ndirs, nbins))
    e_phi = np.empty((ndirs, nbins))
    scale = 1.0 / (4.0 * np.pi * r * C0)
    for d in range(ndirs):
        theta_hat, phi_hat = spherical_basis(directions[d])
        dA = _time_derivative(A[d], dt)
        dF = _time_derivative(F[d], dt)
        dA_theta = dA @ theta_hat
        dA_phi = dA @ phi_hat
        dF_theta = dF @ theta_hat
        dF_phi = dF @ phi_hat
        e_theta[d] = -scale * (ETA0 * dA_theta + C0 * dF_phi)
        e_phi[d] = -scale * (ETA0 * dA_phi - C0 * dF_theta)
    return {"e_theta": e_theta, "e_phi": e_phi}


def far_field_energy(signal: dict[str, np.ndarray], dt: float) -> np.ndarray:
    """Time-integrated |E|^2 per direction (radiated energy density up
    to the 1/eta0 factor)."""
    e_theta = signal["e_theta"]
    e_phi = signal["e_phi"]
    return np.sum(e_theta**2 + e_phi**2, axis=1) * dt


def rcs_proxy(
    signal: dict[str, np.ndarray],
    dt: float,
    incident_waveform: np.ndarray,
    r: float = 1.0,
) -> np.ndarray:
    """A monostatic-RCS-style ratio per direction.

    ``4 pi r^2`` times the far-field energy normalised by the incident
    waveform's energy — dimensionally an effective area, adequate for
    comparing directions and configurations (absolute calibration would
    need a true incident plane wave, which the point-source experiments
    do not use)."""
    incident = np.asarray(incident_waveform, dtype=np.float64)
    denom = float(np.sum(incident**2) * dt)
    if denom == 0.0:
        raise FDTDError("incident waveform has zero energy")
    return 4.0 * np.pi * r * r * far_field_energy(signal, dt) / denom
