"""The FDTD electromagnetics application (paper section 4.1).

A 3-D finite-difference time-domain code modelling transient
electromagnetic scattering from objects of arbitrary shape and
composition (frequency-independent dielectric and magnetic materials),
in the two versions the paper parallelized:

* **Version A** — near-field calculations only
  (:class:`~repro.apps.fdtd.version_a.VersionA`);
* **Version C** — near-field plus far-field (radiation vector
  potentials via a near-to-far-field transformation)
  (:class:`~repro.apps.fdtd.version_c.VersionC`);

plus their mesh-archetype parallelizations
(:func:`~repro.apps.fdtd.parallel.build_parallel_fdtd`), which produce
both the sequential simulated-parallel programs and, mechanically,
their message-passing forms.
"""

from repro.apps.fdtd.constants import C0, EPS0, ETA0, MU0
from repro.apps.fdtd.grid import (
    COMPONENTS,
    E_COMPONENTS,
    H_COMPONENTS,
    FieldSet,
    YeeGrid,
)
from repro.apps.fdtd.materials import VACUUM, CoefficientSet, Material, MaterialGrid
from repro.apps.fdtd.sources import (
    GaussianBallInitial,
    GaussianPulse,
    PlaneSource,
    PointSource,
    RickerWavelet,
    SinusoidSource,
)
from repro.apps.fdtd.boundary import Mur1
from repro.apps.fdtd.update import update_e, update_h
from repro.apps.fdtd.ntff import NTFFAccumulator, NTFFConfig, default_directions
from repro.apps.fdtd.diagnostics import Probe, field_energy, max_abs_field
from repro.apps.fdtd.farfield import (
    far_field_energy,
    far_field_signal,
    rcs_proxy,
    spherical_basis,
)
from repro.apps.fdtd.version_a import FDTDConfig, SequentialResult, VersionA
from repro.apps.fdtd.version_c import FarFieldResult, VersionC
from repro.apps.fdtd.parallel import ParallelFDTD, build_parallel_fdtd, fdtd_plan

__all__ = [
    "C0",
    "EPS0",
    "MU0",
    "ETA0",
    "YeeGrid",
    "FieldSet",
    "COMPONENTS",
    "E_COMPONENTS",
    "H_COMPONENTS",
    "Material",
    "MaterialGrid",
    "CoefficientSet",
    "VACUUM",
    "GaussianPulse",
    "RickerWavelet",
    "SinusoidSource",
    "PointSource",
    "PlaneSource",
    "GaussianBallInitial",
    "Mur1",
    "update_e",
    "update_h",
    "NTFFConfig",
    "NTFFAccumulator",
    "default_directions",
    "Probe",
    "field_energy",
    "max_abs_field",
    "far_field_signal",
    "far_field_energy",
    "rcs_proxy",
    "spherical_basis",
    "FDTDConfig",
    "SequentialResult",
    "VersionA",
    "FarFieldResult",
    "VersionC",
    "ParallelFDTD",
    "build_parallel_fdtd",
    "fdtd_plan",
]
