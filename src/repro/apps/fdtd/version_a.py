"""Version A: the near-field-only sequential FDTD code (paper §4.1).

"Version A [Kunz & Luebbers], which performs only the near-field
calculations": a time-stepped simulation of the electric and magnetic
fields over the 3-D grid — at each step the electric field is updated
from the magnetic fields at the point and neighbouring points, then the
magnetic fields from the electric fields.

This module defines the shared configuration dataclass and the
sequential driver.  The per-step order of operations is a **contract**
shared with the parallelized versions (they must perform bitwise the
same arithmetic):

1. Mur ABC: record boundary planes (when ``boundary="mur1"``)
2. E update (interior regions)
3. Mur ABC: write boundary planes
4. additive point sources into E components
5. H update
6. far-field surface accumulation (Version C only)
7. probes / diagnostics
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.fdtd.boundary import Mur1
from repro.apps.fdtd.diagnostics import Probe, field_energy
from repro.apps.fdtd.grid import FieldSet, YeeGrid
from repro.apps.fdtd.materials import CoefficientSet, MaterialGrid
from repro.apps.fdtd.sources import GaussianBallInitial, PointSource
from repro.apps.fdtd.update import KernelScratch, update_e, update_h
from repro.errors import FDTDError

__all__ = ["FDTDConfig", "SequentialResult", "VersionA"]


@dataclass
class FDTDConfig:
    """Complete description of one FDTD run."""

    grid: YeeGrid
    steps: int
    materials: MaterialGrid | None = None
    sources: list[PointSource] = field(default_factory=list)
    initial: list[GaussianBallInitial] = field(default_factory=list)
    boundary: str = "pec"  # "pec" | "mur1"
    probes: list[Probe] = field(default_factory=list)
    energy_every: int = 0  # 0: no energy series

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise FDTDError(f"steps must be >= 1, got {self.steps}")
        if self.boundary not in ("pec", "mur1"):
            raise FDTDError(
                f"unknown boundary {self.boundary!r} (pec or mur1)"
            )
        for src in self.sources:
            src.validate(self.grid)
            if not src.component.startswith("e"):
                raise FDTDError(
                    "only E-component sources are supported (applied after "
                    "the E update)"
                )

    def coefficient_set(self) -> CoefficientSet:
        mats = self.materials or MaterialGrid(self.grid)
        return mats.coefficients()

    def initial_fields(self) -> FieldSet:
        fields = FieldSet.zeros(self.grid)
        for exc in self.initial:
            exc.apply(self.grid, fields)
        return fields


@dataclass
class SequentialResult:
    """Outputs of a sequential run."""

    fields: FieldSet
    probes: dict[str, np.ndarray] = field(default_factory=dict)
    energy: list[tuple[int, float]] = field(default_factory=list)


class VersionA:
    """Sequential near-field driver.

    ``use_scratch=False`` runs the update kernels through the original
    allocating path instead of the preallocated
    :class:`~repro.apps.fdtd.update.KernelScratch` buffers — the two
    are bitwise identical (asserted by the kernel-equivalence tests);
    the toggle exists so that identity stays directly checkable.
    """

    name = "version-A"

    def __init__(self, config: FDTDConfig, use_scratch: bool = True):
        self.config = config
        self.grid = config.grid
        self.coefs = config.coefficient_set()
        self._inv_spacing = tuple(1.0 / d for d in self.grid.spacing)
        self._regions = {
            comp: self.grid.update_region(comp)
            for comp in ("ex", "ey", "ez", "hx", "hy", "hz")
        }
        self._source_appliers = [
            src.make_global_applier(self.grid) for src in config.sources
        ]
        self._scratch = KernelScratch() if use_scratch else None

    # -- hooks for Version C -------------------------------------------------

    def _post_h_update(self, arrays, step: int) -> None:
        """Called after the H update each step (Version C accumulates
        the far-field surface integrals here)."""

    def _make_result(self, fields: FieldSet) -> SequentialResult:
        result = SequentialResult(fields=fields)
        for probe in self.config.probes:
            key = f"{probe.component}{probe.index}"
            result.probes[key] = probe.values()
        return result

    # -- the run -----------------------------------------------------------------

    def run(self) -> SequentialResult:
        config = self.config
        fields = config.initial_fields()
        arrays = dict(fields.components())
        arrays.update(self.coefs.arrays())
        mur = Mur1(self.grid) if config.boundary == "mur1" else None
        energy: list[tuple[int, float]] = []

        for step in range(config.steps):
            if mur is not None:
                mur.record(arrays)
            update_e(arrays, self._regions, self._inv_spacing, self._scratch)
            if mur is not None:
                mur.apply(arrays)
            for apply_source in self._source_appliers:
                apply_source(fields, step)
            update_h(arrays, self._regions, self._inv_spacing, self._scratch)
            self._post_h_update(arrays, step)
            for probe in config.probes:
                probe.sample(fields)
            if config.energy_every and step % config.energy_every == 0:
                mats = config.materials
                energy.append(
                    (
                        step,
                        field_energy(
                            self.grid,
                            fields,
                            eps_r=mats.eps_r if mats else None,
                            mu_r=mats.mu_r if mats else None,
                        ),
                    )
                )

        result = self._make_result(fields)
        result.energy = energy
        return result
