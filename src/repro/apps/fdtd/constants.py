"""Physical constants for the FDTD solver (SI units)."""

from __future__ import annotations

import math

__all__ = ["C0", "EPS0", "MU0", "ETA0"]

#: speed of light in vacuum [m/s]
C0: float = 299_792_458.0

#: vacuum permeability [H/m]
MU0: float = 4.0e-7 * math.pi

#: vacuum permittivity [F/m]
EPS0: float = 1.0 / (MU0 * C0 * C0)

#: impedance of free space [ohm]
ETA0: float = MU0 * C0
