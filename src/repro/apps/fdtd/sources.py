"""Excitations: "an initial excitation is specified" (paper section 4.1).

Two excitation styles are provided:

* **time-dependent point sources** — an additive ("soft") source
  injecting a waveform into one field component at one node each step;
  localised, so in the parallel version exactly one grid process
  applies it (a per-process special computation, section 4.4 step 2);
* **initial conditions** — a field bump present at t=0 (the literal
  "initial excitation"), useful for purely source-free runs.

Waveforms are deterministic closed forms, so sequential / simulated /
parallel versions evaluate bitwise-identical values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.fdtd.grid import COMPONENTS, FieldSet, YeeGrid
from repro.errors import FDTDError

__all__ = [
    "GaussianPulse",
    "RickerWavelet",
    "SinusoidSource",
    "PointSource",
    "PlaneSource",
    "GaussianBallInitial",
]


def _index_in_strips(index, strips) -> bool:
    """Whether a local node index falls inside any communication strip."""
    return any(lo <= index[axis] < hi for axis, lo, hi in strips)


@dataclass(frozen=True)
class GaussianPulse:
    """``exp(-((n - delay)/spread)^2)`` in units of time *steps*."""

    delay: float = 30.0
    spread: float = 10.0

    def __call__(self, step: int) -> float:
        u = (step - self.delay) / self.spread
        return math.exp(-u * u)


@dataclass(frozen=True)
class RickerWavelet:
    """Second derivative of a Gaussian (zero-mean; good for pulses whose
    spectrum must vanish at DC)."""

    delay: float = 30.0
    spread: float = 10.0

    def __call__(self, step: int) -> float:
        u = (step - self.delay) / self.spread
        return (1.0 - 2.0 * u * u) * math.exp(-u * u)


@dataclass(frozen=True)
class SinusoidSource:
    """Ramped continuous wave: ``sin(2 pi f n dt)`` with a smooth turn-on."""

    period_steps: float = 20.0
    ramp_steps: float = 40.0

    def __call__(self, step: int) -> float:
        ramp = 1.0 - math.exp(-((step / self.ramp_steps) ** 2))
        return ramp * math.sin(2.0 * math.pi * step / self.period_steps)


@dataclass(frozen=True)
class PointSource:
    """Additive source: ``component[index] += amplitude * waveform(n)``.

    Applied after the E (or H) update of its component's kind each
    step.  ``index`` is a node index; it must be a valid node of the
    component (the solver checks at configuration time).
    """

    component: str
    index: tuple[int, int, int]
    waveform: object = GaussianPulse()
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.component not in COMPONENTS:
            raise FDTDError(
                f"unknown component {self.component!r}; "
                f"expected one of {COMPONENTS}"
            )

    def validate(self, grid: YeeGrid) -> None:
        if not grid.contains_node(self.index):
            raise FDTDError(
                f"source index {self.index} outside node grid "
                f"{grid.node_shape}"
            )
        region = grid.update_region(self.component)
        for s, i in zip(region, self.index):
            if not s.start <= i < s.stop:
                raise FDTDError(
                    f"source index {self.index} lies outside the updated "
                    f"region of {self.component} (on a boundary or beyond "
                    "the component's valid range)"
                )

    def value(self, step: int) -> float:
        return self.amplitude * self.waveform(step)

    def apply_global(self, fields: FieldSet, step: int) -> None:
        fields[self.component][self.index] += self.value(step)

    def make_global_applier(self, grid: YeeGrid):
        """``apply(fields, step)`` for the sequential driver."""
        comp, index = self.component, self.index

        def apply(fields, step: int) -> None:
            fields[comp][index] += self.value(step)

        return apply

    def make_local_applier(self, grid: YeeGrid, decomp, rank: int):
        """``apply(store, step)`` for the owning grid process; ``None``
        for every other rank."""
        if decomp.owner_of(self.index) != rank:
            return None
        comp = self.component
        local = decomp.global_to_local(rank, self.index)

        def apply(store, step: int) -> None:
            store[comp][local] += self.value(step)

        return apply

    def make_split_local_appliers(self, grid: YeeGrid, decomp, rank: int, strips):
        """``(shell_apply, interior_apply)`` for the overlap refinement.

        A point source drives exactly one node, so the whole applier
        goes to whichever pass updates that node: the shell pass when
        the node sits in a communication strip, the interior pass
        otherwise.  Exactly one of the pair is non-``None`` (both are
        ``None`` off-rank), and the drive arithmetic is untouched — only
        *when* within the step it runs changes.
        """
        apply = self.make_local_applier(grid, decomp, rank)
        if apply is None:
            return None, None
        local = decomp.global_to_local(rank, self.index)
        if _index_in_strips(local, strips):
            return apply, None
        return None, apply


@dataclass(frozen=True)
class PlaneSource:
    """Additive sheet source: a whole constant-``axis`` plane of one
    component driven by the waveform — a simple plane-wave launcher
    (it radiates plane fronts toward both sides of the sheet).

    Unlike a :class:`PointSource`, the sheet usually spans *several*
    grid processes: every rank owning part of the plane injects its
    part — a per-process special computation involving more than one
    process, exercising the plan's "computations performed differently
    in the individual grid processes" beyond the single-owner case.

    The driven region is the intersection of the component's update
    region with the plane ``{axis: index}`` (boundary nodes are never
    driven; they belong to the boundary condition).
    """

    component: str
    axis: int
    index: int
    waveform: object = GaussianPulse()
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.component not in COMPONENTS:
            raise FDTDError(
                f"unknown component {self.component!r}; "
                f"expected one of {COMPONENTS}"
            )
        if not 0 <= self.axis <= 2:
            raise FDTDError(f"plane axis must be 0..2, got {self.axis}")

    def validate(self, grid: YeeGrid) -> None:
        region = grid.update_region(self.component)
        s = region[self.axis]
        if not s.start <= self.index < s.stop:
            raise FDTDError(
                f"plane index {self.index} (axis {self.axis}) lies outside "
                f"the updated range [{s.start}, {s.stop}) of "
                f"{self.component}"
            )

    def global_region(self, grid: YeeGrid) -> tuple[slice, ...]:
        """The driven node region, in global indices."""
        region = list(grid.update_region(self.component))
        region[self.axis] = slice(self.index, self.index + 1)
        return tuple(region)

    def value(self, step: int) -> float:
        return self.amplitude * self.waveform(step)

    def make_global_applier(self, grid: YeeGrid):
        """``apply(fields, step)`` for the sequential driver."""
        region = self.global_region(grid)
        comp = self.component

        def apply(fields, step: int) -> None:
            fields[comp][region] += self.value(step)

        return apply

    def make_local_applier(self, grid: YeeGrid, decomp, rank: int):
        """``apply(store, step)`` for one grid process, or ``None`` if
        the rank owns no part of the driven plane."""
        from repro.apps.fdtd.update import intersect_local

        local = intersect_local(decomp, rank, self.global_region(grid))
        if local is None:
            return None
        comp = self.component

        def apply(store, step: int) -> None:
            store[comp][local] += self.value(step)

        return apply

    def make_split_local_appliers(self, grid: YeeGrid, decomp, rank: int, strips):
        """``(shell_apply, interior_apply)`` for the overlap refinement.

        The rank's slice of the driven plane is carved along the
        communication strips; each pass drives only its own pieces.
        The pieces partition the slice, so every node still receives
        exactly one ``+=`` per step — same value, same cell, different
        moment within the step.  Either element is ``None`` when its
        piece list is empty.
        """
        from repro.apps.fdtd.update import intersect_local, split_region

        local = intersect_local(decomp, rank, self.global_region(grid))
        if local is None:
            return None, None
        comp = self.component
        shell_pieces, interior_pieces = split_region(local, strips)

        def make(pieces):
            if not pieces:
                return None

            def apply(store, step: int) -> None:
                v = self.value(step)
                arr = store[comp]
                for piece in pieces:
                    arr[piece] += v

            return apply

        return make(shell_pieces), make(interior_pieces)


@dataclass(frozen=True)
class GaussianBallInitial:
    """Initial excitation: a Gaussian ball added to one component at t=0."""

    component: str = "ez"
    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    radius: float = 3.0
    amplitude: float = 1.0

    def apply(self, grid: YeeGrid, fields: FieldSet) -> None:
        idx = np.indices(grid.node_shape)
        dist2 = sum((idx[a] - self.center[a]) ** 2 for a in range(3))
        fields[self.component][...] += self.amplitude * np.exp(
            -dist2 / (self.radius * self.radius)
        )
