"""Application codes parallelized with the methodology.

The paper's experiments parallelize an electromagnetics application
(:mod:`repro.apps.fdtd`) in two versions: Version A (near-field only)
and Version C (near-field plus far-field).
"""
