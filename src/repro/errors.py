"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
mistakes such as :class:`TypeError`.  The hierarchy mirrors the package
layout: runtime errors for the message-passing substrate, refinement
errors for the stepwise-refinement framework, archetype errors for
archetype-level misuse, and model errors for the performance model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Runtime (message-passing substrate) errors
# ---------------------------------------------------------------------------


class RuntimeModelError(ReproError):
    """Base class for errors raised by :mod:`repro.runtime`."""


class ChannelError(RuntimeModelError):
    """Misuse of a channel (wrong endpoint, closed channel, ...)."""


class ChannelOwnershipError(ChannelError):
    """A process other than the registered endpoint used a channel.

    The parallel model of the paper (section 3.1) restricts channels to a
    single reader and a single writer; this error enforces that statically
    registered ownership at run time.
    """


class EmptyChannelError(ChannelError):
    """A *simulated* execution attempted to read from an empty channel.

    In the simulated-parallel world a receive is only legal when the
    channel is known to be non-empty (section 3.1, item 3 of the
    simulation recipe); a scheduler that selects a receive on an empty
    channel is in error.
    """


class DeadlockError(RuntimeModelError):
    """All live processes are blocked on receives: no maximal interleaving
    can make progress.  Carries a diagnostic snapshot of who waits on what.
    """

    def __init__(self, message: str, waiting: dict | None = None):
        super().__init__(message)
        #: mapping of rank -> textual description of the blocking receive
        self.waiting = dict(waiting or {})


class ProcessFailedError(RuntimeModelError):
    """A process body raised an exception; re-raised at the engine level."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"process {rank} failed: {original!r}")
        self.rank = rank
        self.original = original

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into the two-argument __init__ and fails; rebuild
        # from the real fields so the error survives the wire crossing
        # from a worker daemon intact.
        return (ProcessFailedError, (self.rank, self.original))


class ScheduleError(RuntimeModelError):
    """A replay/explicit schedule was inconsistent with the system state."""


class TransportError(RuntimeModelError):
    """Base class for cross-host (socket) transport failures."""


class TransportAbortError(TransportError):
    """A stream died without the clean-close goodbye frame.

    Raised by the framing layer when a socket hits EOF mid-frame, or at
    a frame boundary without the writer's goodbye marker, or resets —
    i.e. the peer process was killed rather than finishing.  Channel
    receives map it to :class:`ProcessFailedError` (the writer rank
    died), never to :class:`EmptyChannelError` (the writer finished).
    """


class RendezvousError(TransportError):
    """The (writer, reader, channel) socket handshake could not complete."""


class RendezvousTimeoutError(RendezvousError):
    """A rendezvous handshake exceeded its configured timeout."""


class CommunicatorError(RuntimeModelError):
    """Misuse of the tagged point-to-point communicator layer."""


class BackendUnavailable(ReproError):
    """A known array backend (e.g. CuPy) is not installed on this host.

    The backend registry in :mod:`repro.xp` raises this instead of
    letting an ``ImportError`` escape, so callers can distinguish "you
    typo'd the backend name" (``ValueError``) from "that backend simply
    isn't present here" and degrade gracefully (CLI error message,
    skipped test) without guessing at import machinery failures.
    """


# ---------------------------------------------------------------------------
# Refinement framework errors
# ---------------------------------------------------------------------------


class RefinementError(ReproError):
    """Base class for errors raised by :mod:`repro.refinement`."""


class DataExchangeViolation(RefinementError):
    """A data-exchange operation violates one of the three restrictions of
    section 2.2 of the paper (definition of a sequential simulated-parallel
    program).  ``rule`` identifies which restriction failed: ``"i"`` (an
    assignment target is referenced by another assignment), ``"ii"`` (a
    side references more than one partition), or ``"iii"`` (some process
    receives no value).
    """

    def __init__(self, rule: str, message: str):
        super().__init__(f"data-exchange restriction ({rule}): {message}")
        self.rule = rule


class StoreError(RefinementError):
    """Misuse of a simulated address space (unknown variable, shape clash)."""


class LocalityViolation(RefinementError):
    """A local-computation block touched data outside its own partition."""


class RefinementMismatch(RefinementError):
    """A refinement check failed: two program versions disagree on outputs."""


# ---------------------------------------------------------------------------
# Archetype errors
# ---------------------------------------------------------------------------


class ArchetypeError(ReproError):
    """Base class for errors raised by :mod:`repro.archetypes`."""


class DecompositionError(ArchetypeError):
    """An invalid grid/process-grid decomposition was requested."""


class PlanError(ArchetypeError):
    """An inconsistent parallelization plan (section 4.4, step 1-2)."""


# ---------------------------------------------------------------------------
# Application errors
# ---------------------------------------------------------------------------


class FDTDError(ReproError):
    """Base class for errors raised by :mod:`repro.apps.fdtd`."""


class StabilityError(FDTDError):
    """The requested time step violates the Courant stability condition."""


class GeometryError(FDTDError):
    """A scatterer or surface does not fit inside the computational grid."""


# ---------------------------------------------------------------------------
# Performance-model errors
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors raised by :mod:`repro.perfmodel`."""
