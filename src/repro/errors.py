"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
mistakes such as :class:`TypeError`.  The hierarchy mirrors the package
layout: runtime errors for the message-passing substrate, refinement
errors for the stepwise-refinement framework, archetype errors for
archetype-level misuse, and model errors for the performance model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Runtime (message-passing substrate) errors
# ---------------------------------------------------------------------------


class RuntimeModelError(ReproError):
    """Base class for errors raised by :mod:`repro.runtime`."""


class ChannelError(RuntimeModelError):
    """Misuse of a channel (wrong endpoint, closed channel, ...)."""


class ChannelOwnershipError(ChannelError):
    """A process other than the registered endpoint used a channel.

    The parallel model of the paper (section 3.1) restricts channels to a
    single reader and a single writer; this error enforces that statically
    registered ownership at run time.
    """


class EmptyChannelError(ChannelError):
    """A *simulated* execution attempted to read from an empty channel.

    In the simulated-parallel world a receive is only legal when the
    channel is known to be non-empty (section 3.1, item 3 of the
    simulation recipe); a scheduler that selects a receive on an empty
    channel is in error.
    """


class DeadlockError(RuntimeModelError):
    """All live processes are blocked on receives: no maximal interleaving
    can make progress.  Carries a diagnostic snapshot of who waits on what.

    Beyond the textual ``waiting`` map, the cooperative engine fills in
    the structured fields the schedule explorer classifies on:
    ``blocked`` maps each blocked rank to ``(channel_name, peer_rank)``
    (the channel it receives on and that channel's writer), ``cycles``
    lists the wait-for graph's circular waits as rank rings, and
    ``result`` carries the partial :class:`~repro.runtime.system`
    ``RunResult`` snapshotted at detection time, whose ``deadlock``
    field holds the full cycle report.
    """

    def __init__(
        self,
        message: str,
        waiting: dict | None = None,
        blocked: dict | None = None,
        cycles: list | None = None,
        result=None,
    ):
        super().__init__(message)
        #: mapping of rank -> textual description of the blocking receive
        self.waiting = dict(waiting or {})
        #: mapping of rank -> (channel name, peer rank it waits on)
        self.blocked = dict(blocked or {})
        #: simple cycles of the wait-for graph, each a list of ranks
        self.cycles = [list(c) for c in (cycles or [])]
        #: partial RunResult at detection time (stores mid-flight), or None
        self.result = result


class ProcessFailedError(RuntimeModelError):
    """A process body raised an exception; re-raised at the engine level.

    ``step`` and ``fault_id`` are set when the failure was *injected* by
    the schedule explorer's fault plans (:mod:`repro.explore.faults`):
    ``step`` is the 0-based action index at which the rank was killed
    and ``fault_id`` names the fault (e.g. ``"kill:1@3"``).  Both ride
    :meth:`__reduce__` so fault provenance survives the pipe/socket
    wire from a worker daemon.
    """

    def __init__(
        self,
        rank: int,
        original: BaseException,
        step: int | None = None,
        fault_id: str | None = None,
    ):
        suffix = ""
        if fault_id is not None or step is not None:
            suffix = (
                f" (injected fault {fault_id!r} at action {step})"
                if fault_id is not None
                else f" (at action {step})"
            )
        super().__init__(f"process {rank} failed: {original!r}{suffix}")
        self.rank = rank
        self.original = original
        self.step = step
        self.fault_id = fault_id

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into the multi-argument __init__ and fails; rebuild
        # from the real fields so the error survives the wire crossing
        # from a worker daemon intact — fault provenance included.
        return (
            ProcessFailedError,
            (self.rank, self.original, self.step, self.fault_id),
        )


def wrap_process_failure(
    rank: int, original: BaseException
) -> ProcessFailedError:
    """Wrap a process body's exception for re-raising at engine level.

    Carries fault-injection provenance when the exception was planted
    by :mod:`repro.explore.faults`, which stamps ``inject_step`` /
    ``fault_id`` attributes on it — every engine funnels body failures
    through here so the provenance survives uniformly, including across
    the pipe/socket wire (see :meth:`ProcessFailedError.__reduce__`).
    """
    return ProcessFailedError(
        rank,
        original,
        step=getattr(original, "inject_step", None),
        fault_id=getattr(original, "fault_id", None),
    )


class ScheduleError(RuntimeModelError):
    """A replay/explicit schedule was inconsistent with the system state."""


class TransportError(RuntimeModelError):
    """Base class for cross-host (socket) transport failures."""


class TransportAbortError(TransportError):
    """A stream died without the clean-close goodbye frame.

    Raised by the framing layer when a socket hits EOF mid-frame, or at
    a frame boundary without the writer's goodbye marker, or resets —
    i.e. the peer process was killed rather than finishing.  Channel
    receives map it to :class:`ProcessFailedError` (the writer rank
    died), never to :class:`EmptyChannelError` (the writer finished).
    """


class RendezvousError(TransportError):
    """The (writer, reader, channel) socket handshake could not complete."""


class RendezvousTimeoutError(RendezvousError):
    """A rendezvous handshake exceeded its configured timeout."""


class CommunicatorError(RuntimeModelError):
    """Misuse of the tagged point-to-point communicator layer."""


class BackendUnavailable(ReproError):
    """A known array backend (e.g. CuPy) is not installed on this host.

    The backend registry in :mod:`repro.xp` raises this instead of
    letting an ``ImportError`` escape, so callers can distinguish "you
    typo'd the backend name" (``ValueError``) from "that backend simply
    isn't present here" and degrade gracefully (CLI error message,
    skipped test) without guessing at import machinery failures.
    """


# ---------------------------------------------------------------------------
# Refinement framework errors
# ---------------------------------------------------------------------------


class RefinementError(ReproError):
    """Base class for errors raised by :mod:`repro.refinement`."""


class DataExchangeViolation(RefinementError):
    """A data-exchange operation violates one of the three restrictions of
    section 2.2 of the paper (definition of a sequential simulated-parallel
    program).  ``rule`` identifies which restriction failed: ``"i"`` (an
    assignment target is referenced by another assignment), ``"ii"`` (a
    side references more than one partition), or ``"iii"`` (some process
    receives no value).
    """

    def __init__(self, rule: str, message: str):
        super().__init__(f"data-exchange restriction ({rule}): {message}")
        self.rule = rule


class StoreError(RefinementError):
    """Misuse of a simulated address space (unknown variable, shape clash)."""


class LocalityViolation(RefinementError):
    """A local-computation block touched data outside its own partition."""


class RefinementMismatch(RefinementError):
    """A refinement check failed: two program versions disagree on outputs."""


# ---------------------------------------------------------------------------
# Archetype errors
# ---------------------------------------------------------------------------


class ArchetypeError(ReproError):
    """Base class for errors raised by :mod:`repro.archetypes`."""


class DecompositionError(ArchetypeError):
    """An invalid grid/process-grid decomposition was requested."""


class PlanError(ArchetypeError):
    """An inconsistent parallelization plan (section 4.4, step 1-2)."""


# ---------------------------------------------------------------------------
# Application errors
# ---------------------------------------------------------------------------


class FDTDError(ReproError):
    """Base class for errors raised by :mod:`repro.apps.fdtd`."""


class StabilityError(FDTDError):
    """The requested time step violates the Courant stability condition."""


class GeometryError(FDTDError):
    """A scatterer or surface does not fit inside the computational grid."""


# ---------------------------------------------------------------------------
# Performance-model errors
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors raised by :mod:`repro.perfmodel`."""
