"""Experiment runners: ``python -m repro <experiment>``.

Each experiment regenerates one artifact of the paper's evaluation (see
DESIGN.md's experiment index):

* ``e1``       — correctness, near field (identical results)
* ``e2``       — correctness, far field (reordered sums differ; Kahan fix)
* ``table1``   — modeled Table 1 (Version C on the network of Suns)
* ``figure2``  — modeled Figure 2 (Version A on the IBM SP)
* ``theorem1`` — determinacy experiments (E5)
* ``figure1``  — parallel vs simulated-parallel trace correspondence
* ``effort``   — mechanical-edit counts vs the paper's person-days (E7)
* ``ablations``— A1 ordering, A2 reduction topology, A3 decomposition
* ``rcs``      — far-zone fields / RCS proxy derived from the potentials
* ``all``      — everything above, in order

``stats <e1|e2>`` runs one experiment's parallel program with the
observability layer on (see docs/OBSERVABILITY.md): per-process
compute/blocked time, per-channel traffic and queue high-water marks,
rank x rank communication matrices, measured-vs-modeled comparison,
and Chrome-trace + JSONL exports.  Both ``stats`` and ``trace`` accept
``--overlap`` (instrument the overlapped shell/interior program; see
docs/ENGINES.md "Overlap refinement") and ``--backend numpy|cupy``.

``trace <e1|e2>`` runs one experiment with causal tracing on (Lamport
clocks carried in every message; see docs/OBSERVABILITY.md "Causal
tracing") and renders the merged happens-before timeline — the Figure 1
picture recovered from a *real* distributed run.  Options: ``--pshape
AxBxC``, ``--engine NAME``, ``--hosts host:port,...``, ``--out FILE``
(causal-trace JSON), ``--chrome FILE`` (Chrome trace with flow-event
arrows), ``--limit N`` (timeline rows printed).

``bench`` runs the engine-comparison benchmark harness (the three
execution backends plus the ``multiprocess+pool`` and
``multiprocess+batch`` fast-path variants over Versions A and C; see
docs/ENGINES.md) and writes ``benchmarks/BENCH_engines.json``;
``bench --smoke`` is the tiny CI variant.  ``bench`` options:
``--repeat N``, ``--start-method fork|spawn``, ``--engines a,b,...``,
``--affinity auto|0,1,...`` (pin multiprocess workers),
``--payload-slab BYTES`` (zero-copy staging slab size; 0 disables),
``--overlap off|on|both`` (compute/communication overlap rows; default
both), ``--backend numpy|cupy`` (array backend), ``--out FILE``.

``serve-bench`` benchmarks job-level serving on the worker pool (the
:class:`~repro.dist.serve.JobServer`; see docs/ENGINES.md "Serving"):
closed-loop serialized vs concurrent submission plus open-loop
offered-load rows, writing ``benchmarks/BENCH_serve.json``.  Options:
``--jobs N``, ``--max-inflight M``, ``--smoke``,
``--start-method fork|spawn``, ``--affinity auto|0,1,...``,
``--out FILE``.

``fleet-bench`` benchmarks multi-host serving (the
:class:`~repro.dist.fleet.FleetScheduler`; see docs/ENGINES.md "Fleet
serving"): per fleet size, a closed-loop calibration row plus open-loop
offered-load rows (offered load vs latency p50/p99 vs daemon count),
merged into ``benchmarks/BENCH_serve.json`` under ``"fleet"``.
Options: ``--jobs N``, ``--capacity R`` (ranks per daemon),
``--daemons 1,2,3`` (loopback fleet sizes), ``--rates 0.5,1.0,2.0``
(offered-load factors), ``--hosts host:port,...`` (external fleet),
``--smoke``, ``--out FILE``.

``e1``, ``e2`` and ``stats`` accept ``--engine
cooperative|threaded|multiprocess|multiprocess+pool|socket`` to choose
the execution backend for their message-passing runs.  For the socket
engine, ``--hosts host:port,...`` points at externally started worker
daemons (default: the engine spawns loopback daemons itself).

``explore`` runs the schedule-space explorer (see docs/EXPLORATION.md):
bounded DFS or seeded random walks over a named target's maximal
interleavings, checking every explored schedule for the Theorem 1
contract, optionally under an injected fault plan (``--faults
kill:RANK@STEP,delay:CHANNEL#INDEX[~HOLD]``).  Key options:
``--target NAME[,NAME...]`` (``--list`` shows them), ``--strategy
dfs|walk``, ``--schedules N``, ``--max-steps N``, ``--engine
multiprocess|socket`` (real-``SIGKILL`` fault sweep), ``--replay
FILE`` (re-execute a violation artifact), ``--expect-violation``
(conviction mode for the racy fixture).

``worker-daemon`` runs the long-lived per-host daemon of the cross-host
transport (see docs/ENGINES.md "Cross-host transport"): ``python -m
repro worker-daemon --host 0.0.0.0 --port 9001`` on each machine, then
``--engine socket --hosts hostA:9001,hostB:9001`` on the coordinator —
or point a :class:`~repro.dist.fleet.FleetScheduler` at the same
daemons.  ``--stats-interval S`` prints the daemon's telemetry
counters (the same snapshot remote ``stats`` pollers see) every S
seconds.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = ["main"]


def _header(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}\n"


# ---------------------------------------------------------------------------
# E1 — near-field correctness
# ---------------------------------------------------------------------------


def _engine_kwargs(engine_name: str | None, hosts: str | None) -> dict:
    """``--hosts`` is only meaningful for the socket engine."""
    if hosts and (engine_name or "").startswith("socket"):
        return {"hosts": hosts}
    return {}


def run_e1(
    out=print, engine_name: str | None = None, hosts: str | None = None
) -> bool:
    from repro.apps.fdtd import (
        COMPONENTS,
        FDTDConfig,
        GaussianPulse,
        Material,
        MaterialGrid,
        PointSource,
        VersionA,
        YeeGrid,
        build_parallel_fdtd,
    )
    from repro.runtime import make_engine
    from repro.util import bitwise_equal_arrays, format_table

    engine = make_engine(
        engine_name or "threaded", **_engine_kwargs(engine_name, hosts)
    )
    _closing = getattr(engine, "close", lambda: None)
    out(_header("E1: near-field correctness (paper section 4.5)"))
    out(f"message-passing engine: {engine.name}\n")
    grid = YeeGrid(shape=(17, 15, 13))
    mats = MaterialGrid(grid).add_box(
        (6, 5, 4), (11, 10, 8), Material(eps_r=4.0, sigma_e=0.02)
    )
    config = FDTDConfig(
        grid=grid,
        steps=16,
        boundary="mur1",
        materials=mats,
        sources=[PointSource("ez", (4, 7, 6), GaussianPulse(delay=10, spread=3))],
    )
    seq = VersionA(config).run()
    rows = []
    all_ok = True
    try:
        for pshape in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 2, 1)]:
            par = build_parallel_fdtd(config, pshape, version="A")
            sim = par.run_simulated()
            sim_fields = par.host_fields(sim)
            sim_ok = all(
                bitwise_equal_arrays(sim_fields[c], seq.fields[c])
                for c in COMPONENTS
            )
            msg = engine.run(par.to_parallel())
            msg_ok = all(
                bitwise_equal_arrays(
                    np.asarray(msg.stores[par.host][c]),
                    np.asarray(sim[par.host][c]),
                )
                for c in COMPONENTS
            )
            all_ok &= sim_ok and msg_ok
            rows.append(
                [
                    f"{pshape}",
                    "identical" if sim_ok else "DIFFERS",
                    "identical" if msg_ok else "DIFFERS",
                ]
            )
    finally:
        _closing()
    out(
        format_table(
            [
                "process grid",
                "simulated-parallel vs sequential",
                "message-passing vs simulated",
            ],
            rows,
        )
    )
    out(
        "\npaper: 'the sequential simulated-parallel version produced "
        "results identical to those of the original sequential code' "
        "(near field), and 'the message-passing programs produced results "
        "identical to those of the corresponding sequential "
        "simulated-parallel versions, on the first and every execution'."
    )
    return all_ok


# ---------------------------------------------------------------------------
# E2 — far-field associativity
# ---------------------------------------------------------------------------


def run_e2(
    out=print, engine_name: str | None = None, hosts: str | None = None
) -> bool:
    from repro.apps.fdtd import (
        COMPONENTS,
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        VersionC,
        YeeGrid,
        build_parallel_fdtd,
    )
    from repro.runtime import make_engine
    from repro.numerics import (
        dynamic_range,
        reordering_report,
        wide_dynamic_range_values,
    )
    from repro.util import (
        bitwise_equal_arrays,
        format_table,
        max_rel_diff,
    )

    out(_header("E2: far-field associativity failure (paper section 4.5)"))
    grid = YeeGrid(shape=(16, 15, 14))
    config = FDTDConfig(
        grid=grid,
        steps=24,
        sources=[PointSource("ez", (8, 7, 7), GaussianPulse(delay=10, spread=3))],
    )
    ntff = NTFFConfig(gap=3)
    seq = VersionC(config, ntff).run()
    engine = (
        make_engine(engine_name, **_engine_kwargs(engine_name, hosts))
        if engine_name
        else None
    )
    if engine is not None:
        out(f"message-passing engine: {engine.name}\n")

    rows = []
    ok = True
    for pshape in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]:
        par = build_parallel_fdtd(config, pshape, version="C", ntff=ntff)
        sim = par.run_simulated()
        A, F = par.host_potentials(sim)
        if engine is not None:
            # The transform run on a real backend must agree with the
            # simulated run bit-for-bit — near fields AND far-field
            # potentials (the reduce order is fixed, so even the
            # "wrong" reordered sum is reproducibly wrong).
            msg = engine.run(par.to_parallel())
            mA, mF = par.host_potentials(msg.stores)
            msg_ok = all(
                bitwise_equal_arrays(
                    np.asarray(msg.stores[par.host][c]),
                    np.asarray(sim[par.host][c]),
                )
                for c in COMPONENTS
            )
            msg_ok &= bitwise_equal_arrays(mA, A)
            msg_ok &= bitwise_equal_arrays(mF, F)
            if not msg_ok:
                out(f"  {pshape}: {engine.name} run DIFFERS from simulated")
            ok &= msg_ok
        near_ok = all(
            bitwise_equal_arrays(
                np.asarray(sim[par.host][c]), seq.fields[c]
            )
            for c in COMPONENTS
        )
        bitA = bitwise_equal_arrays(A, seq.vector_potential_A)
        rel = max(
            max_rel_diff(A, seq.vector_potential_A),
            max_rel_diff(F, seq.vector_potential_F),
        )
        nprocs = int(np.prod(pshape))
        expect_identical = nprocs == 1
        ok &= near_ok and (bitA == expect_identical)
        rows.append(
            [
                f"{pshape}",
                "identical" if near_ok else "DIFFERS",
                "identical" if bitA else f"differs (max rel {rel:.1e})",
            ]
        )
    if engine is not None:
        getattr(engine, "close", lambda: None)()
    out(
        format_table(
            ["process grid", "near field vs sequential", "far field vs sequential"],
            rows,
        )
    )

    out("\nWhy (footnote 2): dynamic range of the far-field summands —")
    # Collect actual step-0..N contributions magnitude proxy: use the
    # sequential potentials' nonzero bins as a magnitude sample.
    sample = seq.vector_potential_A[np.abs(seq.vector_potential_A) > 0]
    if sample.size:
        out("  " + dynamic_range(sample).describe())

    out(
        "\nThe 'more sophisticated strategy' (compensated summation) "
        "restores reproducibility:"
    )
    values = wide_dynamic_range_values(4096, orders=14)
    report = reordering_report(values, parts_list=(1, 2, 4, 8))
    out(report.describe())
    ok &= report.max_kahan_discrepancy() < report.max_reordering_discrepancy()
    return ok


# ---------------------------------------------------------------------------
# Table 1 / Figure 2
# ---------------------------------------------------------------------------


def run_table1(out=print) -> bool:
    from repro.perfmodel import table1_report

    out(_header("Table 1 (modeled substitution — see DESIGN.md)"))
    out(table1_report())
    return True


def run_figure2(out=print) -> bool:
    from repro.perfmodel import figure2_report

    out(_header("Figure 2 (modeled substitution — see DESIGN.md)"))
    out(figure2_report())
    return True


# ---------------------------------------------------------------------------
# E5 — Theorem 1
# ---------------------------------------------------------------------------


def run_theorem1(out=print) -> bool:
    from repro.runtime import (
        CooperativeEngine,
        ProcessSpec,
        RoundRobinPolicy,
        RunToBlockPolicy,
        System,
    )
    from repro.theory import (
        check_determinacy,
        enumerate_interleavings,
        permute_interleaving,
    )
    from repro.theory.violations import (
        finite_slack_system,
        nondeterministic_body_system,
        shared_variable_system,
    )

    out(_header("E5: Theorem 1 — determinacy of SRSW-channel systems"))
    ok = True

    def stencil_ring():
        # A miniature of the FDTD exchange/compute cycle on a ring.
        def body(ctx):
            import numpy as _np

            u = _np.arange(4.0) + ctx.rank
            right = (ctx.rank + 1) % ctx.nprocs
            for _ in range(3):
                ctx.send(f"r{ctx.rank}", u[-1])
                ghost = ctx.recv(f"r{(ctx.rank - 1) % ctx.nprocs}")
                u[0] = 0.5 * (u[0] + ghost)
            ctx.store["u"] = u

        system = System([ProcessSpec(r, body) for r in range(4)])
        for r in range(4):
            system.add_channel(f"r{r}", r, (r + 1) % 4)
        return system

    report = check_determinacy(stencil_ring, n_random=12, threaded_runs=3)
    out("stencil ring (conforming): " + report.summary())
    ok &= report.determinate

    # Exhaustive enumeration of a small exchange.
    def two_proc_exchange():
        def body(ctx):
            other = 1 - ctx.rank
            ctx.send(f"c{ctx.rank}", ctx.rank * 10)
            ctx.store["got"] = ctx.recv(f"c{other}")

        system = System([ProcessSpec(0, body), ProcessSpec(1, body)])
        system.add_channel("c0", 0, 1)
        system.add_channel("c1", 1, 0)
        return system

    enum = enumerate_interleavings(two_proc_exchange())
    out(f"exhaustive enumeration (2-proc exchange): {enum.summary()}")
    ok &= enum.determinate

    from repro.theory import enumerate_reduced

    reduced = enumerate_reduced(two_proc_exchange())
    out(
        "partial-order reduction (sleep sets): "
        f"{reduced.visited} representative of {enum.interleavings} "
        "interleavings suffices"
    )
    ok &= reduced.determinate and reduced.visited <= enum.interleavings

    # Constructive permutation (the proof technique).
    r1 = CooperativeEngine(RoundRobinPolicy(), trace=True).run(two_proc_exchange())
    r2 = CooperativeEngine(RunToBlockPolicy(), trace=True).run(two_proc_exchange())
    cert = permute_interleaving(r1.trace, r2.trace)
    out("permutation certificate: " + cert.summary())

    # Canonical form: every interleaving of a conforming system has the
    # same Foata normal form (one Mazurkiewicz trace class).
    from repro.theory import foata_normal_form

    f1 = foata_normal_form(r1.trace)
    f2 = foata_normal_form(r2.trace)
    ok &= f1 == f2
    out(
        f"canonical (Foata) form identical across schedules: {f1 == f2} "
        f"— {f1.total_events} events, critical path {f1.depth}, "
        f"peak parallelism {f1.width}"
    )

    out("\nhypothesis violations (each breaks determinacy):")
    for name, factory in [
        ("shared variables", lambda: shared_variable_system(5)),
        ("nondeterministic body", lambda: nondeterministic_body_system(4)),
        ("finite slack", lambda: finite_slack_system(6)),
    ]:
        vr = check_determinacy(factory, n_random=6, threaded_runs=0)
        out(f"  {name}: {vr.summary().splitlines()[0]}")
        ok &= not vr.determinate
    return ok


# ---------------------------------------------------------------------------
# Figure 1 — trace correspondence
# ---------------------------------------------------------------------------


def run_figure1(out=print) -> bool:
    from repro.runtime import (
        CooperativeEngine,
        ProcessSpec,
        SendsFirstPolicy,
        System,
        ThreadedEngine,
    )
    from repro.theory.events import check_same_action_sequences

    out(_header("Figure 1: parallel vs simulated-parallel correspondence"))

    def make_system():
        def body(ctx):
            other = 1 - ctx.rank
            ctx.step("compute")
            ctx.send(f"c{ctx.rank}", ctx.rank)
            got = ctx.recv(f"c{other}")
            ctx.step("compute")
            ctx.store["got"] = got

        system = System([ProcessSpec(0, body), ProcessSpec(1, body)])
        system.add_channel("c0", 0, 1)
        system.add_channel("c1", 1, 0)
        return system

    par = ThreadedEngine(trace=True).run(make_system())
    sim = CooperativeEngine(SendsFirstPolicy(), trace=True).run(make_system())
    out("real parallel (threaded, observed order):")
    out(par.trace.render())
    out("\nsimulated parallel (sends-first schedule):")
    out(sim.trace.render())
    same = check_same_action_sequences(par.trace, sim.trace)
    out(
        f"\nper-process action sequences identical: {same}; "
        f"final states equal: {par.stores == sim.stores}"
    )
    return same and par.stores == sim.stores


# ---------------------------------------------------------------------------
# E7 — effort metrics
# ---------------------------------------------------------------------------


def run_effort(out=print) -> bool:
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        YeeGrid,
        build_parallel_fdtd,
    )
    from repro.refinement import TransformationMetrics
    from repro.util import format_table

    out(_header("E7: effort — paper person-days vs mechanical-edit counts"))
    out(
        "paper (section 4.5): Version C: 2 days strategy + 8 days to\n"
        "simulated-parallel + <1 day to message passing; Version A: <1 + 5\n"
        "+ <1 days.  The final (formally justified) step was the cheapest\n"
        "— here it is literally a function call (to_parallel_system).\n"
    )
    grid = YeeGrid(shape=(12, 12, 12))
    config = FDTDConfig(
        grid=grid,
        steps=8,
        sources=[PointSource("ez", (6, 6, 6), GaussianPulse(delay=8, spread=3))],
    )
    rows = []
    for version in ("A", "C"):
        par = build_parallel_fdtd(
            config,
            (2, 2, 1),
            version=version,
            ntff=NTFFConfig(gap=3) if version == "C" else None,
        )
        metrics = TransformationMetrics.from_program(par.builder.build())
        rows.append(
            [
                f"Version {version} (P=4+host)",
                str(metrics.stages),
                str(metrics.exchanges),
                str(metrics.assignments),
                str(metrics.message_pairs),
                str(metrics.channels),
            ]
        )
    out(
        format_table(
            [
                "program",
                "stages",
                "exchanges",
                "assignments",
                "messages/run",
                "channels",
            ],
            rows,
        )
    )
    return True


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def run_ablations(out=print) -> bool:
    from repro.archetypes.mesh import BlockDecomposition
    from repro.errors import DeadlockError
    from repro.perfmodel import SUN_ETHERNET, exchange_comm_volume
    from repro.runtime import (
        CooperativeEngine,
        ProcessSpec,
        SendsFirstPolicy,
        System,
    )
    from repro.util import format_table

    out(_header("Ablations"))
    ok = True

    # A1 — ordering: receives-first deadlocks, sends-first cannot.
    out("A1: data-exchange ordering (sends before receives)")

    def recv_first_exchange():
        def body(ctx):
            other = 1 - ctx.rank
            got = ctx.recv(f"c{other}")  # WRONG ORDER
            ctx.send(f"c{ctx.rank}", ctx.rank)
            ctx.store["got"] = got

        system = System([ProcessSpec(0, body), ProcessSpec(1, body)])
        system.add_channel("c0", 0, 1)
        system.add_channel("c1", 1, 0)
        return system

    try:
        CooperativeEngine().run(recv_first_exchange())
        out("  recv-first: unexpectedly completed")
        ok = False
    except DeadlockError as exc:
        out(f"  recv-first: DEADLOCK as predicted ({len(exc.waiting)} blocked)")

    def send_first_exchange():
        def body(ctx):
            other = 1 - ctx.rank
            ctx.send(f"c{ctx.rank}", ctx.rank)
            ctx.store["got"] = ctx.recv(f"c{other}")

        system = System([ProcessSpec(0, body), ProcessSpec(1, body)])
        system.add_channel("c0", 0, 1)
        system.add_channel("c1", 1, 0)
        return system

    CooperativeEngine(SendsFirstPolicy()).run(send_first_exchange())
    out("  sends-first: completes under every schedule (Theorem 1's recipe)")

    # A2 — reduction topology.
    out("\nA2: reduction topology (all-to-one/one-to-all vs recursive doubling)")
    rows = []
    for p in (4, 8, 16, 32):
        a2o_msgs = 2 * (p - 1)  # gather + broadcast tree-less
        rd_msgs = p * int(np.log2(p)) if (p & (p - 1)) == 0 else None
        lat = SUN_ETHERNET.latency
        a2o_t = 2 * (p - 1) * lat  # serialised at root
        rd_t = int(np.log2(p)) * 2 * lat
        rows.append(
            [str(p), str(a2o_msgs), f"{a2o_t*1e3:.1f} ms", str(rd_msgs), f"{rd_t*1e3:.1f} ms"]
        )
    out(
        format_table(
            ["P", "a2o msgs", "a2o latency", "rd msgs", "rd critical path"],
            rows,
        )
    )

    # A3 — decomposition shape.
    out("\nA3: process-grid shape for the 33^3 node grid (exchange bytes/step)")
    rows = []
    for pshape in [(8, 1, 1), (4, 2, 1), (2, 2, 2)]:
        d = BlockDecomposition((34, 34, 34), pshape, ghost=1)
        vol = exchange_comm_volume(d, 3, 4)
        rows.append(
            [str(pshape), str(vol.total_messages), f"{vol.total_bytes/1e3:.1f} kB"]
        )
    out(format_table(["process grid", "messages", "bytes per phase"], rows))
    out("  (balanced 3-D blocks minimise surface, as choose_process_grid picks)")
    return ok


# ---------------------------------------------------------------------------
# Far fields / RCS (derived observable, section 4.1's "e.g., for radar
# cross section computations")
# ---------------------------------------------------------------------------


def run_rcs(out=print) -> bool:
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        Material,
        MaterialGrid,
        NTFFConfig,
        PointSource,
        VersionC,
        YeeGrid,
        far_field_energy,
        far_field_signal,
        rcs_proxy,
    )
    from repro.util import format_table

    out(_header("Far-zone fields / RCS proxy (derived from the potentials)"))
    grid = YeeGrid(shape=(18, 18, 18))
    scatterer = MaterialGrid(grid).add_pec_box((11, 7, 7), (14, 12, 12))
    waveform = GaussianPulse(delay=10, spread=3)
    config = FDTDConfig(
        grid=grid,
        steps=40,
        boundary="mur1",
        materials=scatterer,
        sources=[PointSource("ez", (5, 9, 9), waveform)],
    )
    directions = np.array(
        [
            [1.0, 0.0, 0.0],  # forward (through the scatterer)
            [-1.0, 0.0, 0.0],  # back toward the source
            [0.0, 1.0, 0.0],  # broadside
            [0.0, 0.0, 1.0],  # along the dipole axis (null)
        ]
    )
    ntff = NTFFConfig(gap=3, directions=directions)
    result = VersionC(config, ntff).run()
    sig = far_field_signal(
        result.vector_potential_A,
        result.vector_potential_F,
        directions,
        dt=grid.dt,
    )
    incident = np.array([waveform(n) for n in range(config.steps)])
    sigma = rcs_proxy(sig, grid.dt, incident)
    energy = far_field_energy(sig, grid.dt)
    labels = ["+x forward", "-x backscatter", "+y broadside", "+z dipole axis"]
    rows = [
        [label, f"{e:.3e}", f"{s:.3e}"]
        for label, e, s in zip(labels, energy, sigma)
    ]
    out(
        format_table(
            ["direction", "radiated energy density", "RCS proxy"], rows
        )
    )
    # A z-directed dipole has a radiation null along z.
    ok = energy[3] < 0.2 * max(energy[:3])
    out(
        "\n(the +z direction sits in the z-dipole's radiation null — "
        f"{'confirmed' if ok else 'NOT confirmed'})"
    )
    return bool(ok)


# ---------------------------------------------------------------------------
# stats — instrumented run + observability report (see docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------


def _stats_build(
    experiment: str,
    pshape: tuple[int, ...],
    overlap: bool = False,
    backend: str = "numpy",
):
    """Build the ParallelFDTD handle for one stats-able experiment."""
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        Material,
        MaterialGrid,
        NTFFConfig,
        PointSource,
        YeeGrid,
        build_parallel_fdtd,
    )

    if experiment == "e1":
        grid = YeeGrid(shape=(17, 15, 13))
        mats = MaterialGrid(grid).add_box(
            (6, 5, 4), (11, 10, 8), Material(eps_r=4.0, sigma_e=0.02)
        )
        config = FDTDConfig(
            grid=grid,
            steps=16,
            boundary="mur1",
            materials=mats,
            sources=[
                PointSource("ez", (4, 7, 6), GaussianPulse(delay=10, spread=3))
            ],
        )
        return build_parallel_fdtd(
            config, pshape, version="A", overlap=overlap, backend=backend
        )
    if experiment == "e2":
        grid = YeeGrid(shape=(16, 15, 14))
        config = FDTDConfig(
            grid=grid,
            steps=24,
            sources=[
                PointSource("ez", (8, 7, 7), GaussianPulse(delay=10, spread=3))
            ],
        )
        return build_parallel_fdtd(
            config,
            pshape,
            version="C",
            ntff=NTFFConfig(gap=3),
            overlap=overlap,
            backend=backend,
        )
    raise ValueError(
        f"stats supports experiments 'e1' and 'e2', not {experiment!r}"
    )


def run_stats(args: list[str], out=print) -> bool:
    """``python -m repro stats <e1|e2> [options]`` — run the experiment's
    parallel program once with instrumentation on, print the run summary
    (per-process compute/blocked split, per-channel traffic and queue
    high-water marks, rank x rank communication matrices, per-phase
    timings) and the measured-vs-modeled communication comparison, and
    export the run as Chrome trace JSON + JSONL.

    Options: ``--pshape AxBxC`` (default 2x2x1), ``--engine
    cooperative|threaded|multiprocess|multiprocess+pool|socket``
    (default threaded), ``--hosts host:port,...`` (socket engine:
    external worker daemons), ``--overlap`` (run the overlapped
    shell/interior program — the measured-vs-modeled comparison is
    skipped, as the per-variable message model does not describe the
    combined split exchanges), ``--backend numpy|cupy`` (array
    backend), ``--outdir DIR`` (default ``runs``), ``--bench FILE``
    (also write a benchmark baseline JSON).
    """
    import json
    from pathlib import Path

    from repro.obs import fdtd_model_comparison, write_chrome_trace, write_jsonl
    from repro.runtime import make_engine

    experiment = "e1"
    pshape = (2, 2, 1)
    engine_name = "threaded"
    hosts = None
    outdir = Path("runs")
    bench_path = None
    overlap = False
    backend = "numpy"
    rest = list(args)
    if rest and not rest[0].startswith("-"):
        experiment = rest.pop(0)
    while rest:
        flag = rest.pop(0)
        if flag == "--pshape" and rest:
            pshape = tuple(int(p) for p in rest.pop(0).replace(",", "x").split("x"))
        elif flag == "--engine" and rest:
            engine_name = rest.pop(0)
        elif flag == "--hosts" and rest:
            hosts = rest.pop(0)
        elif flag == "--overlap":
            overlap = True
        elif flag == "--backend" and rest:
            backend = rest.pop(0)
        elif flag == "--outdir" and rest:
            outdir = Path(rest.pop(0))
        elif flag == "--bench" and rest:
            bench_path = Path(rest.pop(0))
        else:
            out(f"unknown or incomplete stats option {flag!r}")
            return False

    out(_header(f"stats: instrumented {experiment} run"))
    try:
        par = _stats_build(experiment, pshape, overlap=overlap, backend=backend)
    except ValueError as exc:
        out(str(exc))
        return False
    try:
        engine = make_engine(
            engine_name,
            observe=True,
            backend=backend,
            **_engine_kwargs(engine_name, hosts),
        )
    except ValueError as exc:
        out(str(exc))
        return False

    out(
        f"experiment={experiment}  grid={par.config.grid.shape}  "
        f"steps={par.config.steps}  pshape={pshape}  "
        f"version={par.version}  engine={engine.name}  "
        f"overlap={overlap}  backend={backend}\n"
    )
    try:
        result = engine.run(par.to_parallel())
    finally:
        getattr(engine, "close", lambda: None)()
    report = result.report
    out(report.summary())

    if overlap:
        # The cost model counts one message per variable per exchange;
        # the overlapped program deliberately coalesces each phase's
        # components into one combined split exchange, so the
        # per-variable comparison does not describe it.
        out(
            "\nmeasured vs cost-model predictions: skipped under "
            "--overlap (combined split exchanges are outside the "
            "per-variable message model)"
        )
        agree = True
    else:
        comparison = fdtd_model_comparison(par, report)
        out("\nmeasured vs cost-model predictions (E3/E4 loop closure):")
        out(comparison.table())
        agree = comparison.agreement()
        out(
            "agreement: exact"
            if agree
            else "agreement: MISMATCH — model and implementation have diverged"
        )

    stem = f"stats_{experiment}_{'x'.join(map(str, pshape))}_{engine.name}"
    if overlap:
        stem += "_overlap"
    trace_path = write_chrome_trace(report, outdir / f"{stem}.trace.json")
    jsonl_path = write_jsonl(report, outdir / f"{stem}.jsonl")
    out(f"\nwrote {trace_path} (chrome://tracing / Perfetto)")
    out(f"wrote {jsonl_path} (JSONL event log)")

    if bench_path is not None:
        bench = {
            "experiment": experiment,
            "engine": engine.name,
            "grid_shape": list(par.config.grid.shape),
            "steps": par.config.steps,
            "pshape": list(pshape),
            "overlap": overlap,
            "backend": backend,
            "nprocs": report.nprocs,
            "total_messages": report.total_messages(),
            "total_bytes": report.total_bytes(),
            "model_agreement": agree,
            "model_comparison": [
                {"quantity": q, "measured": m, "modeled": pred}
                for q, m, pred in comparison.rows
            ],
            "channels": {
                ch.name: {
                    "sends": ch.sends,
                    "bytes": ch.bytes_sent,
                    "queue_hwm": ch.queue_hwm,
                }
                for ch in sorted(report.channels, key=lambda c: c.name)
            },
            "wall_time_split": [
                {
                    "rank": p.rank,
                    "name": p.name,
                    "wall_s": round(p.wall, 6),
                    "compute_s": round(p.compute, 6),
                    "blocked_s": round(p.blocked, 6),
                }
                for p in report.processes
            ],
        }
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(bench, indent=2) + "\n")
        out(f"wrote {bench_path} (benchmark baseline)")
    return agree


# ---------------------------------------------------------------------------
# trace — causal (happens-before) tracing across engines
# ---------------------------------------------------------------------------


def run_trace(args: list[str], out=print) -> bool:
    """``python -m repro trace <e1|e2> [options]`` — run the
    experiment's parallel program once with causal tracing on, merge
    the per-rank Lamport-clocked event logs into one happens-before
    partial order, check it (every receive must causally follow its
    send), and render the Figure-1-style timeline.

    Options: ``--pshape AxBxC`` (default 2x2x1), ``--engine
    cooperative|threaded|multiprocess|multiprocess+pool|socket``
    (default multiprocess), ``--hosts host:port,...`` (socket engine:
    external worker daemons), ``--overlap`` (trace the overlapped
    shell/interior program), ``--backend numpy|cupy`` (array backend),
    ``--out FILE`` (write the causal trace as JSON), ``--chrome FILE``
    (write a Chrome trace whose send→recv pairs become flow-event
    arrows), ``--limit N`` (timeline rows printed; default 48,
    0 = all).
    """
    import json
    from pathlib import Path

    from repro.obs import write_chrome_trace
    from repro.runtime import make_engine

    experiment = "e1"
    pshape = (2, 2, 1)
    engine_name = "multiprocess"
    hosts = None
    out_path = None
    chrome_path = None
    limit = 48
    overlap = False
    backend = "numpy"
    rest = list(args)
    if rest and not rest[0].startswith("-"):
        experiment = rest.pop(0)
    while rest:
        flag = rest.pop(0)
        if flag == "--pshape" and rest:
            pshape = tuple(int(p) for p in rest.pop(0).replace(",", "x").split("x"))
        elif flag == "--engine" and rest:
            engine_name = rest.pop(0)
        elif flag == "--hosts" and rest:
            hosts = rest.pop(0)
        elif flag == "--overlap":
            overlap = True
        elif flag == "--backend" and rest:
            backend = rest.pop(0)
        elif flag == "--out" and rest:
            out_path = Path(rest.pop(0))
        elif flag == "--chrome" and rest:
            chrome_path = Path(rest.pop(0))
        elif flag == "--limit" and rest:
            limit = int(rest.pop(0))
        else:
            out(f"unknown or incomplete trace option {flag!r}")
            return False

    out(_header(f"trace: causal {experiment} run"))
    try:
        par = _stats_build(experiment, pshape, overlap=overlap, backend=backend)
    except ValueError as exc:
        out(str(exc))
        return False
    try:
        engine = make_engine(
            engine_name,
            observe=chrome_path is not None,
            trace_causal=True,
            backend=backend,
            **_engine_kwargs(engine_name, hosts),
        )
    except (TypeError, ValueError) as exc:
        out(str(exc))
        return False

    out(
        f"experiment={experiment}  grid={par.config.grid.shape}  "
        f"steps={par.config.steps}  pshape={pshape}  "
        f"version={par.version}  engine={engine.name}  "
        f"overlap={overlap}  backend={backend}\n"
    )
    try:
        result = engine.run(par.to_parallel())
    finally:
        getattr(engine, "close", lambda: None)()
    causal = result.causal
    if causal is None:
        out("engine returned no causal trace")
        return False

    out(causal.render(limit=limit or None))
    pairs = causal.send_recv_pairs()
    violations = causal.validate()
    out(
        f"\n{len(causal)} events, {len(pairs)} matched send->recv edges, "
        f"clock depth {causal.depth}"
    )
    if violations:
        out("happens-before VIOLATIONS:")
        for v in violations:
            out(f"  {v}")
    else:
        out(
            "happens-before check: OK — every receive's clock strictly "
            "exceeds its matching send's"
        )

    if out_path is not None:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(causal.to_dict(), indent=2) + "\n")
        out(f"wrote {out_path} (causal trace JSON)")
    if chrome_path is not None:
        if result.report is None:
            out("--chrome needs an observed run; engine returned no report")
            return False
        write_chrome_trace(result.report, chrome_path)
        out(f"wrote {chrome_path} (Chrome trace with flow-event arrows)")
    return not violations


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "e1": run_e1,
    "e2": run_e2,
    "table1": run_table1,
    "figure2": run_figure2,
    "theorem1": run_theorem1,
    "figure1": run_figure1,
    "effort": run_effort,
    "ablations": run_ablations,
    "rcs": run_rcs,
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    name = args[0]
    if name == "stats":
        return 0 if run_stats(args[1:]) else 1
    if name == "trace":
        return 0 if run_trace(args[1:]) else 1
    if name == "bench":
        from repro.dist.bench import run_bench

        return 0 if run_bench(args[1:]) else 1
    if name == "serve-bench":
        from repro.dist.bench import run_serve_bench

        return 0 if run_serve_bench(args[1:]) else 1
    if name == "fleet-bench":
        from repro.dist.fleet.bench import run_fleet_bench

        return 0 if run_fleet_bench(args[1:]) else 1
    if name == "worker-daemon":
        from repro.dist.net.daemon import run_daemon_cli

        return run_daemon_cli(args[1:])
    if name == "explore":
        from repro.explore.cli import run_explore

        return run_explore(args[1:])
    if name in ("e1", "e2"):
        engine_name = None
        hosts = None
        rest = args[1:]
        while rest:
            flag = rest.pop(0)
            if flag == "--engine" and rest:
                engine_name = rest.pop(0)
            elif flag == "--hosts" and rest:
                hosts = rest.pop(0)
            else:
                print(f"unknown or incomplete {name} option {flag!r}")
                return 2
        return 0 if EXPERIMENTS[name](engine_name=engine_name, hosts=hosts) else 1
    if name == "all":
        results = {key: fn() for key, fn in EXPERIMENTS.items()}
        print(_header("summary"))
        for key, good in results.items():
            print(f"  {key:10s} {'OK' if good else 'MISMATCH'}")
        return 0 if all(results.values()) else 1
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; options: {', '.join(EXPERIMENTS)}, all")
        return 2
    return 0 if EXPERIMENTS[name]() else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
