"""The job/Future/backpressure core shared by every job-level server.

Two front doors multiplex many small :class:`~repro.runtime.system.System`
runs behind ``submit() -> Future``: the single-host
:class:`~repro.dist.serve.JobServer` (jobs onto one local
:class:`~repro.dist.pool.WorkerPool`) and the multi-host
:class:`~repro.dist.fleet.FleetScheduler` (jobs onto a fleet of
:class:`~repro.dist.net.daemon.WorkerDaemon`\\ s).  Everything that is
*about jobs* rather than about where they run lives here, once:

* **admission control** — ``max_inflight`` bounds
  admitted-but-unfinished jobs; at the bound ``on_full="block"`` makes
  :meth:`JobServerCore.submit` wait and ``on_full="reject"`` raises
  :class:`ServerSaturatedError` (open-loop load shedding);
* **the ready queue** — admitted jobs wait FIFO (admission order) for
  capacity; what "capacity" means is the subclass's business, expressed
  through the :meth:`JobServerCore._try_reserve` /
  :meth:`JobServerCore._release` hooks (pool slots for the local
  server, per-daemon rank reservations for the fleet);
* **the future protocol** — cancellation before dispatch, exceptions
  contained to their own future, ``close(drain=...)`` settling every
  admitted job;
* **accounting** — per-job :class:`JobStats` records, counters/gauges
  in the owner's :class:`~repro.obs.observer.Observer`, and the
  aggregate :meth:`JobServerCore.stats` summary (throughput, latency
  percentiles, queue waits).

Subclasses implement four hooks: ``_check_admissible`` (reject jobs
that can never run), ``_prepare`` (CPU-side work that needs no
capacity, e.g. body pickling — runs concurrently with other jobs'
execution), ``_try_reserve``/``_release`` (capacity under the shared
condition variable), and ``_execute`` (run the job to a
:class:`~repro.runtime.system.RunResult`).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.obs.observer import Observer
from repro.runtime.system import RunResult, System

__all__ = [
    "JobServerCore",
    "JobStats",
    "ServerSaturatedError",
    "ServerClosedError",
    "percentile",
]


class ServerSaturatedError(RuntimeError):
    """``submit`` on a full server with ``on_full="reject"``."""


class ServerClosedError(RuntimeError):
    """``submit`` on a closed server, or a queued job cancelled by
    ``close(drain=False)``."""


@dataclass
class JobStats:
    """One served job's accounting (see ``job_stats()``)."""

    job_id: int
    label: str
    nprocs: int
    t_submit: float
    t_dispatch: float | None = None
    t_done: float | None = None
    ok: bool | None = None  # None while in flight
    #: Execution attempts (>1 when a fleet re-placed the job after a
    #: daemon death; always 1 on the single-host server).
    attempts: int = 1
    #: ``"host:port"`` strings of the daemons the *final* attempt ran
    #: on (fleet only; None on the single-host server).
    placed_on: list[str] | None = None
    #: Causal span-tree summary when the job ran with causal tracing:
    #: merged event count and trace depth (longest causal chain).
    causal_events: int | None = None
    causal_depth: int | None = None

    @property
    def queue_wait_s(self) -> float | None:
        if self.t_dispatch is None:
            return None
        return self.t_dispatch - self.t_submit

    @property
    def service_s(self) -> float | None:
        if self.t_done is None or self.t_dispatch is None:
            return None
        return self.t_done - self.t_dispatch

    @property
    def latency_s(self) -> float | None:
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit


@dataclass
class _Job:
    stats: JobStats
    system: System
    future: Future = field(default_factory=Future)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(idx)]


class JobServerCore:
    """Shared submit/backpressure/accounting core (see module docstring).

    Subclasses set :attr:`metric_prefix` (the observer counter/gauge
    namespace) and implement the capacity and execution hooks.  All
    capacity state must be guarded by :attr:`_cv` — every completion,
    release, and (for the fleet) membership change notifies it, which
    is what wakes jobs waiting in the ready queue.
    """

    #: Observer metric namespace (``serve/...``, ``fleet/...``).
    metric_prefix = "serve"

    def __init__(
        self,
        *,
        max_inflight: int,
        on_full: str = "block",
        observer: Observer | None = None,
    ):
        if on_full not in ("block", "reject"):
            raise ValueError(f"on_full must be block|reject, got {on_full!r}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.on_full = on_full
        self.observer = observer or Observer()

        self._cv = threading.Condition()
        self._inflight = 0
        self._closed = False
        self._abort_queued = False  # close(drain=False) sheds the queue
        self._threads: list[threading.Thread] = []
        self._records: list[JobStats] = []
        self._queued: list[_Job] = []  # admitted, waiting for capacity
        self._seq = 0
        self._clock = self.observer.clock

        reg = self.observer.registry
        p = self.metric_prefix
        self._c_submitted = reg.counter(f"{p}/jobs_submitted")
        self._c_completed = reg.counter(f"{p}/jobs_completed")
        self._c_failed = reg.counter(f"{p}/jobs_failed")
        self._c_rejected = reg.counter(f"{p}/jobs_rejected")
        self._g_inflight = reg.gauge(f"{p}/inflight")
        self._g_queued = reg.gauge(f"{p}/queue_depth")

    # -- subclass hooks ------------------------------------------------------

    def _check_admissible(self, system: System) -> None:
        """Raise ``ValueError`` for a job that can never run here."""

    def _prepare(self, job: _Job) -> Any:
        """Capacity-free preparation (body pickling); runs while other
        jobs execute.  The return value is passed to :meth:`_execute`."""
        return None

    def _try_reserve(self, job: _Job) -> Any:
        """Reserve capacity for ``job`` under :attr:`_cv`, or return
        ``None`` if none is free right now (the job keeps waiting).  A
        non-``None`` grant is handed to ``_execute`` and ``_release``.
        May raise to fail the job (e.g. the whole fleet is dead)."""
        raise NotImplementedError

    def _release(self, job: _Job, grant: Any) -> None:
        """Return ``grant``'s capacity, under :attr:`_cv`."""
        raise NotImplementedError

    def _execute(self, job: _Job, prepared: Any, grant: Any) -> RunResult:
        """Run the job (capacity held); raise to fail its future."""
        raise NotImplementedError

    def _stats_extra(
        self, out: dict[str, Any], done: list[JobStats], elapsed: float
    ) -> None:
        """Fold subclass-specific aggregates into :meth:`stats`."""

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Stop admitting jobs and settle the in-flight ones.

        ``drain=True`` (default) waits for every admitted job — queued
        and dispatched alike — to finish.  ``drain=False`` cancels jobs
        still waiting for capacity (their futures get
        :class:`ServerClosedError` unless already cancelled), waits
        only for the dispatched ones, and returns.  Subclasses tear
        down what they own in :meth:`_close_resources`.  Idempotent.
        """
        with self._cv:
            if self._closed:
                threads = list(self._threads)
            else:
                self._closed = True
                if not drain:
                    self._abort_queued = True
                    for job in list(self._queued):
                        job.future.cancel()
                threads = list(self._threads)
                self._cv.notify_all()
        for t in threads:
            t.join()
        self._close_resources()

    def _close_resources(self) -> None:
        """Tear down subclass-owned resources after the last job."""

    # -- submission ----------------------------------------------------------

    def submit(self, system: System, label: str = "") -> Future:
        """Admit one job; returns a Future resolving to its
        :class:`~repro.runtime.system.RunResult` (or raising the job's
        failure, typically :class:`~repro.errors.ProcessFailedError`)."""
        self._check_admissible(system)
        with self._cv:
            if self._closed:
                raise ServerClosedError("server is closed")
            if self._inflight >= self.max_inflight:
                if self.on_full == "reject":
                    self._c_rejected.inc()
                    raise ServerSaturatedError(
                        f"{self._inflight} jobs in flight "
                        f"(max_inflight={self.max_inflight})"
                    )
                while self._inflight >= self.max_inflight and not self._closed:
                    self._cv.wait()
                if self._closed:
                    raise ServerClosedError("server closed while waiting")
            self._inflight += 1
            self._g_inflight.set(self._inflight)
            self._seq += 1
            stats = JobStats(
                job_id=self._seq,
                label=label or f"job-{self._seq}",
                nprocs=system.nprocs,
                t_submit=self._clock(),
            )
            job = _Job(stats=stats, system=system)
            self._records.append(stats)
            self._c_submitted.inc()
            thread = threading.Thread(
                target=self._serve_one,
                args=(job,),
                name=f"repro-{self.metric_prefix}-{stats.job_id}",
                daemon=True,
            )
            self._threads.append(thread)
        thread.start()
        return job.future

    # -- the per-job pipeline ------------------------------------------------

    def _serve_one(self, job: _Job) -> None:
        stats = job.stats
        try:
            # Prepare while other jobs execute: pure CPU on this side,
            # needs no capacity.
            prepared = self._prepare(job)

            # Wait for capacity (ready queue, admission order).
            grant = None
            with self._cv:
                self._queued.append(job)
                self._g_queued.set(len(self._queued))
                self._g_queued.update_max(len(self._queued))
                try:
                    while (
                        not self._abort_queued
                        and not job.future.cancelled()
                        and (
                            self._queued[0] is not job
                            or (grant := self._try_reserve(job)) is None
                        )
                    ):
                        self._cv.wait()
                finally:
                    self._queued.remove(job)
                    self._g_queued.set(len(self._queued))
                if self._abort_queued or job.future.cancelled():
                    if grant is not None:
                        self._release(job, grant)
                    if not job.future.cancelled():
                        job.future.set_exception(
                            ServerClosedError("server closed before dispatch")
                        )
                    return
                self._cv.notify_all()
            if not job.future.set_running_or_notify_cancel():
                with self._cv:
                    self._release(job, grant)
                    self._cv.notify_all()
                return

            stats.t_dispatch = self._clock()
            try:
                with self.observer.span(
                    stats.job_id,
                    stats.label,
                    cat=self.metric_prefix,
                    nprocs=stats.nprocs,
                ):
                    result = self._execute(job, prepared, grant)
                if result.causal is not None:
                    stats.causal_events = len(result.causal)
                    stats.causal_depth = result.causal.depth
            finally:
                stats.t_done = self._clock()
                with self._cv:
                    self._release(job, grant)
                    self._cv.notify_all()
            stats.ok = True
            self._c_completed.inc()
            job.future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - future carries it
            stats.ok = False
            self._c_failed.inc()
            if not job.future.done():
                job.future.set_exception(exc)
        finally:
            with self._cv:
                self._inflight -= 1
                self._g_inflight.set(self._inflight)
                self._threads.remove(threading.current_thread())
                self._cv.notify_all()

    # -- accounting ----------------------------------------------------------

    def job_stats(self) -> list[JobStats]:
        """Per-job records in submission order (snapshot)."""
        with self._cv:
            return list(self._records)

    def stats(self) -> dict[str, Any]:
        """Aggregate statistics over every finished job.

        ``throughput_jobs_per_s`` spans first submission to last
        completion; subclasses add their capacity-shaped aggregates
        (slot utilization, per-daemon placement counts) via
        :meth:`_stats_extra`.
        """
        with self._cv:
            records = list(self._records)
        done = [r for r in records if r.t_done is not None]
        out: dict[str, Any] = {
            "jobs_submitted": len(records),
            "jobs_done": len(done),
            "jobs_failed": sum(1 for r in done if r.ok is False),
            "max_inflight": self.max_inflight,
            "inflight_hwm": self._g_inflight.high_water,
            "queue_depth_hwm": self._g_queued.high_water,
        }
        if not done:
            self._stats_extra(out, done, 0.0)
            return out
        t0 = min(r.t_submit for r in done)
        t1 = max(r.t_done for r in done)
        elapsed = max(t1 - t0, 1e-9)
        latencies = sorted(r.latency_s for r in done)
        waits = sorted(
            r.queue_wait_s for r in done if r.queue_wait_s is not None
        )
        out.update(
            elapsed_s=elapsed,
            throughput_jobs_per_s=len(done) / elapsed,
            latency_p50_s=percentile(latencies, 0.50),
            latency_p95_s=percentile(latencies, 0.95),
            queue_wait_p50_s=percentile(waits, 0.50) if waits else 0.0,
            queue_wait_p95_s=percentile(waits, 0.95) if waits else 0.0,
        )
        self._stats_extra(out, done, elapsed)
        return out
