"""``python -m repro bench`` — the engine-comparison benchmark harness.

Runs the FDTD programs (Versions A and C) across the execution backends
and several process-grid shapes, checks the paper's §4 correctness
result *across backends* — near fields bitwise identical to the
sequential code, and identical between engines — and writes the
measurements to ``benchmarks/BENCH_engines.json``.

Besides the three plain engines, two multiprocess variants are
benchmarked by default:

* ``multiprocess+pool`` — the same engine with ``pool=True``: workers
  boot once and are re-dispatched across the ``--repeat`` runs, so
  ``runs_total_s`` (the summed wall time of all repeats) amortizes the
  interpreter-boot cost the per-run-boot rows pay every time;
* ``multiprocess+batch`` — the plain engine running the *batched*
  program (``build_parallel_fdtd(..., batch_exchanges=True)``): all
  field components of one ghost exchange fold into a single wire frame
  per neighbour pair, which the ``frames`` column makes visible.

With ``--overlap both`` (the default) every engine row is measured
twice — on the baseline program and on the overlapped shell/interior
program (``build_parallel_fdtd(..., overlap=True)``; see
docs/ENGINES.md "Overlap refinement") — with per-row bitwise identity
against the sequential fields; an extra *observed* run per engine
records the per-rank compute/blocked split into the ``observed``
block.  The ``overlap_beats_baseline_ge_1p15x`` (multiprocess+pool,
Version A, 4 ranks) and ``overlap_lowers_blocked_time`` checks are
recorded always and enforced on multi-core hosts outside smoke.
``--backend numpy|cupy`` selects the array namespace the kernels run
on (:mod:`repro.xp`); rows record it in the ``backend`` column.

A ``socket`` row runs the cross-host transport
(:class:`~repro.dist.net.engine.SocketEngine`) over ``--daemons N``
loopback worker daemons (default 2), or over external daemons with
``--hosts host:port,...`` — the transport-cost row of the comparison.
``socket+batch`` runs the batched ghost-exchange program over the same
transport: the row on which the vectored data plane's syscall
accounting (``net_syscalls`` vs ``net_syscalls_unvectored``, the
enforced ≥2× ``net_send_syscall_reduction_ge_2x`` check) is most
visible.  Each result row records its ``transport``
(``memory``/``pipe``/``socket``); the meta block records the hostname
and daemon count.

Per-row wire-traffic accounting (``frames``, ``pipe_bytes``,
``shm_bytes``) comes from the multiprocess channels; in-process engines
have no wire, so they report zeros there.

Timing discipline: every engine is constructed **once** per row, given
one untimed **warm-up** run (recorded as ``warmup_s``), then run
``--repeat`` timed times; program construction (``to_parallel()``)
happens outside the timed region, so ``run_s`` measures the engine
alone.  The warm-up run absorbs one-time costs that are not the
engine's steady-state — allocator arena growth, page-cache and
first-touch page provisioning, pool boot — for every engine equally.
The minimum ``run_s`` is reported.  For the multiprocess engine the
headline ``run_s`` excludes worker startup (interpreter boot, imports,
shared memory attach) — the engine holds workers at a barrier and times
from "go" — with ``startup_s`` reported alongside; in-process engines
have no comparable startup phase, so their ``run_s`` is plain wall time
around ``run()``.  The default start method here is ``fork`` so the
steady-state cost of the OS-process backend is compared, not the
price of booting interpreters (``--start-method spawn`` to override).

``--smoke`` shrinks everything (tiny grid, 2 ranks, one repetition)
for CI; the frame-reduction checks still run there, the pool
amortization check needs ``--repeat >= 2`` and is skipped.
``--affinity auto|CPU,CPU,...`` pins multiprocess workers;
``--payload-slab N`` sizes the zero-copy staging slab (0 disables it,
forcing every payload through the pipe).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["run_bench", "run_serve_bench"]

#: (version, grid shape, steps, per-version note) for the full bench.
FULL_CASES = [
    ("A", (121, 121, 121), 3, "near-field only; the paper's Fortran77 code"),
    ("C", (33, 33, 33), 8, "with far-field (NTFF) accumulation + reduce"),
]
SMOKE_CASES = [
    ("A", (11, 9, 9), 4, "smoke"),
    ("C", (11, 9, 9), 4, "smoke"),
]
FULL_PSHAPES = [(2, 1, 1), (2, 2, 1), (2, 2, 2)]
SMOKE_PSHAPES = [(2, 1, 1)]
ENGINES = (
    "cooperative",
    "threaded",
    "multiprocess",
    "multiprocess+pool",
    "multiprocess+batch",
    "socket",
    "socket+batch",
)


def _transport_of(engine_name: str) -> str:
    """Which wire a row's values crossed: in-process engines move
    references in ``memory``, the multiprocess engines speak OS
    ``pipe``s (+ shm slabs), the network engine speaks TCP ``socket``s."""
    base, _ = _parse_engine(engine_name)
    if base == "socket":
        return "socket"
    if base == "multiprocess":
        return "pipe"
    return "memory"

#: Channel-name prefix of the transform's data-exchange channels.
_DX_PREFIX = "dx_"


def _parse_engine(name: str) -> tuple[str, frozenset[str]]:
    """``"multiprocess+pool" -> ("multiprocess", {"pool"})``."""
    base, _, mods = name.partition("+")
    return base, frozenset(mods.split("+")) if mods else frozenset()


def _exchange_frames(frames: dict[str, int], host: int) -> int:
    """Wire frames on grid-to-grid data-exchange channels.

    The transform routes both per-step ghost exchanges *and* end-of-run
    collect/gather traffic over ``dx_{src}_{dst}`` channels; only the
    former is what exchange batching coalesces, so frames on channels
    with the host rank at either end are excluded here.
    """
    total = 0
    for name, n in frames.items():
        if not name.startswith(_DX_PREFIX):
            continue
        try:
            src, dst = map(int, name[len(_DX_PREFIX):].split("_"))
        except ValueError:
            continue
        if src != host and dst != host:
            total += n
    return total


def _build(
    version: str,
    shape: tuple,
    steps: int,
    pshape: tuple,
    batch=False,
    overlap=False,
    backend="numpy",
):
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        YeeGrid,
        build_parallel_fdtd,
    )

    config = FDTDConfig(
        grid=YeeGrid(shape=shape),
        steps=steps,
        sources=[
            PointSource(
                "ez",
                tuple(s // 2 for s in shape),
                GaussianPulse(delay=10, spread=3),
            )
        ],
    )
    ntff = NTFFConfig(gap=3) if version == "C" else None
    return build_parallel_fdtd(
        config,
        pshape,
        version=version,
        ntff=ntff,
        batch_exchanges=batch,
        overlap=overlap,
        backend=backend,
    )


def _sequential_fields(version: str, shape: tuple, steps: int):
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        VersionA,
        VersionC,
        YeeGrid,
    )

    config = FDTDConfig(
        grid=YeeGrid(shape=shape),
        steps=steps,
        sources=[
            PointSource(
                "ez",
                tuple(s // 2 for s in shape),
                GaussianPulse(delay=10, spread=3),
            )
        ],
    )
    if version == "C":
        return VersionC(config, NTFFConfig(gap=3)).run().fields
    return VersionA(config).run().fields


def _make_engine(
    name: str, start_method: str, payload_slab, affinity, hosts=None, daemons=2
):
    base, mods = _parse_engine(name)
    if base == "socket":
        from repro.dist.net.engine import SocketEngine

        return SocketEngine(hosts=hosts, daemons=daemons)
    if base == "cooperative":
        from repro.runtime import CooperativeEngine

        return CooperativeEngine()
    if base == "threaded":
        from repro.runtime import ThreadedEngine

        return ThreadedEngine()
    if base == "multiprocess":
        from repro.dist.engine import MultiprocessEngine

        kwargs: dict[str, Any] = {
            "start_method": start_method,
            "pool": "pool" in mods,
            "affinity": affinity,
        }
        if payload_slab is not None:
            kwargs["payload_slab"] = payload_slab
        return MultiprocessEngine(**kwargs)
    raise ValueError(f"unknown engine {name!r}")


def _fields_of(par, stores) -> dict[str, np.ndarray]:
    from repro.apps.fdtd import COMPONENTS

    host = stores[par.host]
    return {c: np.asarray(host[c]) for c in COMPONENTS}


def _identical(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    from repro.util import bitwise_equal_arrays

    return all(bitwise_equal_arrays(a[c], b[c]) for c in a)


def run_bench(args: list[str], out=print) -> bool:
    """Run the harness; returns False on any equality or check failure."""
    smoke = False
    repeat = 3
    start_method = "fork"
    out_path = Path("benchmarks") / "BENCH_engines.json"
    engines = list(ENGINES)
    affinity = None
    payload_slab = None  # None = engine default (DEFAULT_SLAB)
    hosts = None
    daemons = 2
    overlap_arg = "both"
    backend = "numpy"
    rest = list(args)
    while rest:
        flag = rest.pop(0)
        if flag == "--smoke":
            smoke = True
        elif flag == "--repeat" and rest:
            repeat = int(rest.pop(0))
        elif flag == "--start-method" and rest:
            start_method = rest.pop(0)
        elif flag == "--out" and rest:
            out_path = Path(rest.pop(0))
        elif flag == "--engines" and rest:
            engines = rest.pop(0).split(",")
        elif flag == "--hosts" and rest:
            hosts = rest.pop(0)
        elif flag == "--daemons" and rest:
            daemons = int(rest.pop(0))
        elif flag == "--overlap" and rest:
            overlap_arg = rest.pop(0)
        elif flag == "--backend" and rest:
            backend = rest.pop(0)
        elif flag == "--affinity" and rest:
            spec = rest.pop(0)
            affinity = (
                "auto" if spec == "auto" else [int(c) for c in spec.split(",")]
            )
        elif flag == "--payload-slab" and rest:
            payload_slab = int(rest.pop(0))
        else:
            out(f"unknown or incomplete bench option {flag!r}")
            return False

    if overlap_arg not in ("off", "on", "both"):
        out(f"--overlap must be off|on|both, not {overlap_arg!r}")
        return False
    overlap_modes = {"off": [False], "on": [True], "both": [False, True]}[
        overlap_arg
    ]

    cases = SMOKE_CASES if smoke else FULL_CASES
    pshapes = SMOKE_PSHAPES if smoke else FULL_PSHAPES
    if smoke:
        repeat = min(repeat, 1)

    from repro.util import format_table

    header = "engine-comparison benchmark" + (" (smoke)" if smoke else "")
    out(f"\n{header}\n{'=' * len(header)}")
    out(
        f"engines={','.join(engines)}  pshapes={pshapes}  repeat={repeat}  "
        f"multiprocess start method={start_method}  cores={os.cpu_count()}  "
        f"affinity={affinity}  payload_slab={payload_slab}  "
        f"overlap={overlap_arg}  backend={backend}\n"
    )

    results: list[dict[str, Any]] = []
    all_ok = True
    for version, shape, steps, note in cases:
        seq_fields = _sequential_fields(version, shape, steps)
        for pshape in pshapes:
            progs = {
                ov: _build(
                    version, shape, steps, pshape, overlap=ov, backend=backend
                )
                for ov in overlap_modes
            }
            par_batch = None
            if any("batch" in _parse_engine(e)[1] for e in engines):
                par_batch = _build(
                    version, shape, steps, pshape, batch=True, backend=backend
                )
            ranks = int(np.prod(pshape))
            reference_fields = None  # threaded result, per case
            per_engine_fields = {}
            for engine_name, overlap_flag in (
                (e, ov) for ov in overlap_modes for e in engines
            ):
                _, mods = _parse_engine(engine_name)
                if "batch" in mods:
                    # The overlapped program already coalesces each
                    # phase's exchange into one frame per neighbour, so
                    # a separate batch variant only exists at overlap
                    # off.
                    if overlap_flag:
                        continue
                    prog = par_batch
                else:
                    prog = progs[overlap_flag]
                engine = _make_engine(
                    engine_name, start_method, payload_slab, affinity,
                    hosts=hosts, daemons=daemons,
                )
                best = None
                result = None
                runs_total = 0.0
                try:
                    # One untimed warm-up run per row: pool boot,
                    # allocator growth, and first-touch page costs are
                    # paid here, for every engine alike, so the timed
                    # repeats measure steady state.
                    t0 = time.perf_counter()
                    engine.run(prog.to_parallel())
                    warmup_s = time.perf_counter() - t0
                    for _ in range(repeat):
                        # Hoisted: program construction is not part of
                        # the measurement.
                        system = prog.to_parallel()
                        t0 = time.perf_counter()
                        result = engine.run(system)
                        wall = time.perf_counter() - t0
                        timing = getattr(engine, "last_timing", None) or {
                            "run_s": wall,
                            "startup_s": 0.0,
                            "total_s": wall,
                        }
                        runs_total += timing["total_s"]
                        if best is None or timing["run_s"] < best["run_s"]:
                            best = dict(timing)
                finally:
                    close = getattr(engine, "close", None)
                    if close is not None:
                        close()
                fields = _fields_of(prog, result.stores)
                per_engine_fields[(engine_name, overlap_flag)] = fields
                near_ok = _identical(fields, seq_fields)
                all_ok &= near_ok
                frames = getattr(result, "channel_frames", {})
                row = {
                    "version": version,
                    "grid": list(shape),
                    "steps": steps,
                    "pshape": list(pshape),
                    "ranks": ranks,
                    "nprocs": ranks + 1,  # + host process
                    "engine": engine_name,
                    "overlap": overlap_flag,
                    "backend": backend,
                    "transport": _transport_of(engine_name),
                    "start_method": (
                        start_method
                        if engine_name.startswith("multiprocess")
                        else None
                    ),
                    "run_s": round(best["run_s"], 6),
                    "startup_s": round(best["startup_s"], 6),
                    "total_s": round(best["total_s"], 6),
                    "warmup_s": round(warmup_s, 6),
                    "runs_total_s": round(runs_total, 6),
                    "near_identical_to_sequential": near_ok,
                    "messages": sum(
                        s for s, _ in result.channel_stats.values()
                    ),
                    "bytes": sum(result.channel_bytes.values()),
                    "frames": sum(frames.values()),
                    "dx_frames": _exchange_frames(frames, prog.host),
                    "pipe_bytes": sum(
                        getattr(
                            result, "channel_pipe_bytes", {}
                        ).values()
                    ),
                    "shm_bytes": sum(
                        getattr(result, "channel_shm_bytes", {}).values()
                    ),
                    # Socket-transport syscall accounting (zero off the
                    # socket rows): vectored sends actually issued, the
                    # unvectored sender's count for the same frames,
                    # frames that left in multi-frame gather batches,
                    # and the deepest feeder coalescing window.
                    "net_syscalls": sum(
                        getattr(
                            result, "channel_net_syscalls", {}
                        ).values()
                    ),
                    "net_syscalls_unvectored": sum(
                        getattr(
                            result, "channel_net_syscalls_unvectored", {}
                        ).values()
                    ),
                    "net_vectored": sum(
                        getattr(
                            result, "channel_net_vectored", {}
                        ).values()
                    ),
                    "coalesce_hwm": max(
                        getattr(
                            result, "channel_coalesce_hwm", {}
                        ).values(),
                        default=0,
                    ),
                }
                results.append(row)
                if engine_name == "threaded" and reference_fields is None:
                    reference_fields = fields
            # Cross-backend equality (Theorem 1, now across engines —
            # including the pooled, batched and overlapped variants).
            if reference_fields is not None:
                for (engine_name, ov), fields in per_engine_fields.items():
                    same = _identical(fields, reference_fields)
                    all_ok &= same
                    if not same:
                        out(
                            f"MISMATCH: V{version} {pshape} {engine_name}"
                            f"{' overlap' if ov else ''} "
                            "differs from threaded"
                        )

    rows = [
        [
            f"V{r['version']}",
            "x".join(map(str, r["grid"])),
            "x".join(map(str, r["pshape"])),
            r["engine"],
            "on" if r["overlap"] else "off",
            f"{r['run_s'] * 1e3:.1f}",
            f"{r['startup_s'] * 1e3:.1f}",
            f"{r['runs_total_s'] * 1e3:.1f}",
            str(r["frames"]),
            "yes" if r["near_identical_to_sequential"] else "NO",
        ]
        for r in results
    ]
    out(
        format_table(
            [
                "version",
                "grid",
                "pshape",
                "engine",
                "overlap",
                "run ms",
                "startup ms",
                "all-runs ms",
                "frames",
                "identical",
            ],
            rows,
        )
    )

    # The long-standing engine-vs-engine checks compare the *baseline*
    # (overlap off) rows; overlap rows get their own checks below.
    def _rows_of(engine_name, overlap=False):
        return [
            r
            for r in results
            if r["engine"] == engine_name and r["overlap"] == overlap
        ]

    def _row_at(engine_name, version, pshape, overlap=False):
        for r in _rows_of(engine_name, overlap):
            if r["version"] == version and tuple(r["pshape"]) == pshape:
                return r
        return None

    checks: dict[str, Any] = {}

    # Headline check: OS-process backend at 4 ranks must not lose to
    # the GIL-bound threaded engine on the Version-A benchmark grid.
    if not smoke:
        mp_row = _row_at("multiprocess", "A", (2, 2, 1))
        th_row = _row_at("threaded", "A", (2, 2, 1))
        if mp_row is not None and th_row is not None:
            mp, th = mp_row["run_s"], th_row["run_s"]
            checks["multiprocess_le_threaded_versionA_4ranks"] = mp <= th
            checks["multiprocess_over_threaded_ratio"] = round(mp / th, 4)
            out(
                f"\nVersion A, 4 ranks: multiprocess {mp * 1e3:.1f} ms vs "
                f"threaded {th * 1e3:.1f} ms "
                f"({'OK' if mp <= th else 'SLOWER'})"
            )
            all_ok &= mp <= th

    # Batching check: the batched program must move strictly fewer wire
    # frames than the per-variable program, in every case — and on the
    # data-exchange channels proper, the reduction must be >= 2x.
    if "multiprocess" in engines and "multiprocess+batch" in engines:
        fewer = True
        ratios = []
        for r in _rows_of("multiprocess"):
            b = _row_at(
                "multiprocess+batch", r["version"], tuple(r["pshape"])
            )
            if b is None:
                continue
            fewer &= b["frames"] < r["frames"]
            if b["dx_frames"]:
                ratios.append(r["dx_frames"] / b["dx_frames"])
        checks["batched_frames_lt_unbatched"] = fewer
        all_ok &= fewer
        if ratios:
            worst = min(ratios)
            checks["batched_dx_frame_reduction_ge_2x"] = worst >= 2.0
            checks["batched_dx_frame_reduction_min_ratio"] = round(worst, 4)
            out(
                f"ghost-exchange frame reduction (batched): worst "
                f"{worst:.2f}x ({'OK' if worst >= 2.0 else 'BELOW 2x'})"
            )
            all_ok &= worst >= 2.0

    # Vectored-send check: on every socket row, the fast path must
    # issue at most half the send syscalls the unvectored sender (one
    # sendall per prefix, one per payload) would have issued for the
    # same frames — both counters are measured exactly by the framing
    # layer, so the ratio needs no re-run of the slow path.  Enforced
    # like the frame-reduction checks (the CI net-fastpath smoke job
    # asserts it on the batched ghost-exchange row).
    socket_rows = [
        r
        for r in results
        if r["transport"] == "socket" and r["net_syscalls"]
    ]
    if socket_rows:
        ratios = [
            r["net_syscalls_unvectored"] / r["net_syscalls"]
            for r in socket_rows
        ]
        worst = min(ratios)
        checks["net_send_syscall_reduction_ge_2x"] = worst >= 2.0
        checks["net_send_syscall_reduction_min_ratio"] = round(worst, 4)
        out(
            f"send-syscall reduction (vectored socket path): worst "
            f"{worst:.2f}x ({'OK' if worst >= 2.0 else 'BELOW 2x'})"
        )
        all_ok &= worst >= 2.0

    # Pool check: summed wall time of the timed repeats must be lower
    # with the persistent pool (parked workers re-dispatched, segments
    # recycled) than with per-run worker boot.  Needs at least two
    # repeats to amortize anything, so skipped in smoke.
    if (
        repeat >= 2
        and "multiprocess" in engines
        and "multiprocess+pool" in engines
    ):
        boot = sum(r["runs_total_s"] for r in _rows_of("multiprocess"))
        pooled = sum(
            r["runs_total_s"] for r in _rows_of("multiprocess+pool")
        )
        if boot and pooled:
            checks["pooled_total_lt_boot_total"] = pooled < boot
            checks["pooled_over_boot_ratio"] = round(pooled / boot, 4)
            out(
                f"pool amortization over {repeat} runs: pooled "
                f"{pooled * 1e3:.1f} ms vs per-run boot "
                f"{boot * 1e3:.1f} ms "
                f"({'OK' if pooled < boot else 'SLOWER'})"
            )
            all_ok &= pooled < boot

    # Overlap checks: moving sends earlier and receives later only buys
    # wall time where there is real concurrency to hide communication
    # in, so the throughput and blocked-time checks are recorded always
    # but enforced only on multi-core hosts (and outside smoke, whose
    # grids are noise-sized).
    observed = []
    if len(overlap_modes) == 2:
        multicore = bool(os.cpu_count() and os.cpu_count() > 1)
        enforce = multicore and not smoke
        check_pshape = (2, 2, 1) if (2, 2, 1) in pshapes else pshapes[0]

        base_row = _row_at("multiprocess+pool", "A", check_pshape)
        over_row = _row_at(
            "multiprocess+pool", "A", check_pshape, overlap=True
        )
        if base_row is not None and over_row is not None:
            speedup = base_row["run_s"] / over_row["run_s"]
            checks["overlap_speedup_multiprocess_pool"] = round(speedup, 4)
            checks["overlap_beats_baseline_ge_1p15x"] = speedup >= 1.15
            checks["overlap_checks_enforced"] = enforce
            out(
                f"\noverlap speedup (multiprocess+pool, Version A, "
                f"{'x'.join(map(str, check_pshape))}): {speedup:.2f}x "
                + ("(enforced)" if enforce else "(recorded only)")
            )
            if enforce:
                all_ok &= speedup >= 1.15

        # Compute/blocked split: one extra *observed* run per engine and
        # overlap mode, so the refinement's effect shows up in the
        # telemetry, not just the wall clock.
        from repro.runtime import make_engine

        obs_engines = [
            e for e in ("threaded", "multiprocess+pool") if e in engines
        ]
        obs_case = next((c for c in cases if c[0] == "A"), None)
        if obs_engines and obs_case is not None:
            _, obs_shape, obs_steps, _ = obs_case
            for engine_name in obs_engines:
                for ov in (False, True):
                    prog = _build(
                        "A",
                        obs_shape,
                        obs_steps,
                        check_pshape,
                        overlap=ov,
                        backend=backend,
                    )
                    kwargs: dict[str, Any] = {"observe": True}
                    if engine_name.startswith("multiprocess"):
                        kwargs.update(
                            start_method=start_method, affinity=affinity
                        )
                    engine = make_engine(engine_name, **kwargs)
                    try:
                        engine.run(prog.to_parallel())  # warm-up
                        result = engine.run(prog.to_parallel())
                    finally:
                        close = getattr(engine, "close", None)
                        if close is not None:
                            close()
                    report = result.report
                    grid_procs = [
                        p for p in report.processes if p.rank != prog.host
                    ]
                    n = len(grid_procs) or 1
                    observed.append(
                        {
                            "engine": engine_name,
                            "version": "A",
                            "pshape": list(check_pshape),
                            "overlap": ov,
                            "backend": backend,
                            "blocked_s_per_rank_mean": round(
                                sum(p.blocked for p in grid_procs) / n, 6
                            ),
                            "compute_s_per_rank_mean": round(
                                sum(p.compute for p in grid_procs) / n, 6
                            ),
                        }
                    )

        def _obs_at(engine_name, ov):
            for r in observed:
                if r["engine"] == engine_name and r["overlap"] == ov:
                    return r
            return None

        for engine_name in ("multiprocess+pool", "threaded"):
            b, o = _obs_at(engine_name, False), _obs_at(engine_name, True)
            if b is None or o is None:
                continue
            bb = b["blocked_s_per_rank_mean"]
            ob = o["blocked_s_per_rank_mean"]
            out(
                f"blocked time per rank ({engine_name}): "
                f"{bb * 1e3:.1f} ms off -> {ob * 1e3:.1f} ms on"
            )
            if "overlap_lowers_blocked_time" not in checks:
                # First engine with both rows (preferring the OS-process
                # backend) carries the enforced check.
                checks["overlap_lowers_blocked_time"] = ob < bb
                checks["overlap_blocked_ratio"] = round(
                    ob / bb, 4
                ) if bb else None
                if enforce:
                    all_ok &= ob < bb

    checks["all_near_fields_identical"] = all(
        r["near_identical_to_sequential"] for r in results
    )

    payload = {
        "meta": {
            "smoke": smoke,
            "repeat": repeat,
            "start_method": start_method,
            "overlap_modes": overlap_arg,
            "backend": backend,
            "engines": engines,
            "transports": sorted({_transport_of(e) for e in engines}),
            "hostname": platform.node(),
            "hosts": hosts,
            "daemons": (
                (len(hosts.split(",")) if hosts else daemons)
                if any(_transport_of(e) == "socket" for e in engines)
                else 0
            ),
            "affinity": affinity,
            "payload_slab": payload_slab,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "timing_note": (
                "every row gets one untimed warm-up run (warmup_s) before "
                "the timed repeats; run_s excludes worker startup for the "
                "multiprocess engine (post-barrier timing); startup_s "
                "reports it; in-process engines report wall time around "
                "run(); runs_total_s sums total_s over the timed repeats "
                "(what the pool amortizes); frames/pipe_bytes/shm_bytes "
                "are wire traffic and are zero for in-process engines; "
                "dx_frames counts grid-to-grid exchange-channel frames "
                "(host-facing collect traffic excluded); each row's "
                "transport names the wire its values crossed (memory/"
                "pipe/socket); daemons counts the socket rows' worker "
                "daemons (hosts when external, loopback otherwise); "
                "net_syscalls / net_syscalls_unvectored / net_vectored / "
                "coalesce_hwm are the socket rows' vectored-send "
                "accounting (send syscalls issued vs the unvectored "
                "sender's count for the same frames, frames leaving in "
                "multi-frame gather batches, deepest feeder coalescing "
                "window) and are zero on every other transport; on a "
                "single-core host loopback daemons timeshare one CPU, so "
                "socket-row timings measure transport cost, not "
                "parallel speedup"
            ),
        },
        "results": results,
        "observed": observed,
        "checks": checks,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    out(f"\nwrote {out_path}")
    return all_ok


# ---------------------------------------------------------------------------
# serve-bench — job-level serving throughput (python -m repro serve-bench)
# ---------------------------------------------------------------------------

#: (grid shape, steps, process grid) for the serving workload: many
#: *small* Version-A jobs, so job turnaround — not per-job compute — is
#: what the harness stresses.
SERVE_FULL_CASE = ((15, 15, 15), 3, (2, 1, 1))
SERVE_SMOKE_CASE = ((9, 9, 9), 2, (2, 1, 1))


def _serve_systems(par, jobs: int) -> list:
    """``jobs`` independent Systems of one parallel program (client-side
    construction, hoisted out of every timed region)."""
    return [par.to_parallel() for _ in range(jobs)]


def _latency_stats(latencies: list[float]) -> dict[str, float]:
    lat = sorted(latencies)

    def pct(q):
        return lat[min(len(lat) - 1, int(round(q * (len(lat) - 1))))]

    return {
        "latency_p50_s": round(pct(0.50), 6),
        "latency_p95_s": round(pct(0.95), 6),
    }


def _serve_row(mode, batch, jobs, elapsed, latencies, identical, **extra):
    row = {
        "mode": mode,
        "batch": batch,
        "jobs": jobs,
        "elapsed_s": round(elapsed, 6),
        "jobs_per_s": round(jobs / elapsed, 4) if elapsed else 0.0,
        "all_identical": identical,
        **_latency_stats(latencies),
        **extra,
    }
    return row


def run_serve_bench(args: list[str], out=print) -> bool:
    """``python -m repro serve-bench`` — JobServer throughput harness.

    Closed-loop rows (every job's result checked bitwise against the
    sequential seed):

    * ``engine-serial[+batch]`` — a pooled engine run in a plain loop:
      the serialized-submission baseline;
    * ``serve-serial`` — the JobServer throttled to ``max_inflight=1``
      (server overhead at zero concurrency);
    * ``serve-concurrent[+batch]`` — the JobServer with
      ``--max-inflight`` jobs admitted at once over a pool sized to
      hold them all.

    Open-loop rows submit at fixed offered rates (0.5x / 1x / 2x the
    measured concurrent throughput) with ``on_full="reject"``,
    recording accepted/rejected counts and accepted-job latency.

    The concurrent-vs-serialized throughput checks are recorded always
    but only *enforced* on multi-core hosts — on one core, concurrent
    CPU-bound jobs cannot beat serialized execution and the numbers
    are reported as-is; result-identity checks are enforced
    everywhere.
    """
    smoke = False
    jobs = 16
    max_inflight = 4
    start_method = "fork"
    out_path = Path("benchmarks") / "BENCH_serve.json"
    affinity = None
    rest = list(args)
    while rest:
        flag = rest.pop(0)
        if flag == "--smoke":
            smoke = True
        elif flag == "--jobs" and rest:
            jobs = int(rest.pop(0))
        elif flag == "--max-inflight" and rest:
            max_inflight = int(rest.pop(0))
        elif flag == "--start-method" and rest:
            start_method = rest.pop(0)
        elif flag == "--out" and rest:
            out_path = Path(rest.pop(0))
        elif flag == "--affinity" and rest:
            spec = rest.pop(0)
            affinity = (
                "auto" if spec == "auto" else [int(c) for c in spec.split(",")]
            )
        else:
            out(f"unknown or incomplete serve-bench option {flag!r}")
            return False

    shape, steps, pshape = SERVE_SMOKE_CASE if smoke else SERVE_FULL_CASE
    if smoke:
        jobs = min(jobs, 6)
        max_inflight = min(max_inflight, 2)

    from repro.dist.engine import MultiprocessEngine
    from repro.dist.serve import JobServer, ServerSaturatedError
    from repro.util import format_table

    par = _build("A", shape, steps, pshape)
    par_batch = _build("A", shape, steps, pshape, batch=True)
    job_nprocs = int(np.prod(pshape)) + 1  # ranks + host
    pool_size = job_nprocs * max_inflight
    seq_fields = _sequential_fields("A", shape, steps)
    cpu_count = os.cpu_count()

    header = "serving benchmark" + (" (smoke)" if smoke else "")
    out(f"\n{header}\n{'=' * len(header)}")
    out(
        f"grid={shape} steps={steps} pshape={pshape} jobs={jobs} "
        f"max_inflight={max_inflight} pool_size={pool_size} slots "
        f"start_method={start_method} cores={cpu_count} "
        f"affinity={affinity}\n"
    )

    results: list[dict[str, Any]] = []
    all_ok = True

    def check_all(par_used, run_results) -> bool:
        nonlocal all_ok
        good = all(
            _identical(_fields_of(par_used, r.stores), seq_fields)
            for r in run_results
        )
        all_ok &= good
        return good

    # -- closed loop: serialized engine baseline ---------------------------
    for batch, par_used in ((False, par), (True, par_batch)):
        engine = MultiprocessEngine(
            start_method=start_method, pool=True, affinity=affinity
        )
        try:
            engine.run(par_used.to_parallel())  # warm-up: pool boot
            systems = _serve_systems(par_used, jobs)
            lat, runs = [], []
            t0 = time.perf_counter()
            for system in systems:
                j0 = time.perf_counter()
                runs.append(engine.run(system))
                lat.append(time.perf_counter() - j0)
            elapsed = time.perf_counter() - t0
        finally:
            engine.close()
        results.append(
            _serve_row(
                "engine-serial", batch, jobs, elapsed, lat,
                check_all(par_used, runs),
            )
        )

    # -- closed loop: server, serialized and concurrent --------------------
    def serve_closed(mode, batch, par_used, inflight):
        with JobServer(
            pool_size,
            max_inflight=inflight,
            start_method=start_method,
            affinity=affinity,
        ) as server:
            server.submit(par_used.to_parallel()).result()  # warm-up
            systems = _serve_systems(par_used, jobs)
            t0 = time.perf_counter()
            futs = [server.submit(s) for s in systems]
            runs = [f.result() for f in futs]
            elapsed = time.perf_counter() - t0
            records = server.job_stats()[1:]  # minus the warm-up job
            stats = server.stats()
        lat = [r.latency_s for r in records]
        busy = sum(r.service_s * r.nprocs for r in records)
        results.append(
            _serve_row(
                mode, batch, jobs, elapsed, lat,
                check_all(par_used, runs),
                max_inflight=inflight,
                pool_size=pool_size,
                slot_utilization=round(busy / (pool_size * elapsed), 4),
                inflight_hwm=stats["inflight_hwm"],
            )
        )
        return jobs / elapsed

    serve_closed("serve-serial", False, par, 1)
    thr_concurrent = serve_closed("serve-concurrent", False, par, max_inflight)
    serve_closed("serve-concurrent", True, par_batch, max_inflight)

    # -- open loop: offered load with rejection ----------------------------
    for factor in (0.5, 1.0, 2.0):
        rate = max(thr_concurrent * factor, jobs / 30.0)  # bound the run
        with JobServer(
            pool_size,
            max_inflight=max_inflight,
            on_full="reject",
            start_method=start_method,
            affinity=affinity,
        ) as server:
            server.submit(par.to_parallel()).result()  # warm-up
            systems = _serve_systems(par, jobs)
            futs = []
            rejected = 0
            t0 = time.perf_counter()
            for i, system in enumerate(systems):
                due = t0 + i / rate
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    futs.append(server.submit(system))
                except ServerSaturatedError:
                    rejected += 1
            runs = [f.result() for f in futs]
            elapsed = time.perf_counter() - t0
            records = server.job_stats()[1:]
        lat = [r.latency_s for r in records if r.latency_s is not None]
        results.append(
            _serve_row(
                "serve-open", False, len(runs), elapsed, lat or [0.0],
                check_all(par, runs),
                max_inflight=max_inflight,
                offered_factor=factor,
                offered_jobs_per_s=round(rate, 4),
                accepted=len(runs),
                rejected=rejected,
            )
        )

    rows = [
        [
            r["mode"] + ("+batch" if r["batch"] else ""),
            str(r["jobs"]),
            str(r.get("max_inflight", "-")),
            f"{r['jobs_per_s']:.2f}",
            f"{r['latency_p50_s'] * 1e3:.1f}",
            f"{r['latency_p95_s'] * 1e3:.1f}",
            str(r.get("rejected", "-")),
            "yes" if r["all_identical"] else "NO",
        ]
        for r in results
    ]
    out(
        format_table(
            [
                "mode",
                "jobs",
                "inflight",
                "jobs/s",
                "p50 ms",
                "p95 ms",
                "rejected",
                "identical",
            ],
            rows,
        )
    )

    def _thr(mode, batch=False):
        for r in results:
            if r["mode"] == mode and r["batch"] == batch:
                return r["jobs_per_s"]
        return None

    checks: dict[str, Any] = {}
    serialized = _thr("serve-serial")
    concurrent = _thr("serve-concurrent")
    multicore = bool(cpu_count and cpu_count > 1)
    if serialized and concurrent:
        ratio = concurrent / serialized
        checks["concurrent_over_serialized_ratio"] = round(ratio, 4)
        checks["concurrent_beats_serialized"] = ratio > 1.0
        checks["concurrent_ge_1p5x_serialized"] = ratio >= 1.5
        checks["throughput_checks_enforced"] = multicore
        out(
            f"\nconcurrent ({max_inflight} in flight) vs serialized: "
            f"{concurrent:.2f} vs {serialized:.2f} jobs/s = {ratio:.2f}x "
            + (
                "(enforced)"
                if multicore
                else f"(recorded only: {cpu_count} core)"
            )
        )
        if multicore:
            all_ok &= ratio > 1.0
            if not smoke:
                all_ok &= ratio >= 1.5
    checks["all_job_results_identical"] = all(
        r["all_identical"] for r in results
    )

    payload = {
        "meta": {
            "smoke": smoke,
            "transport": "pipe",  # serving runs on the pool's pipes
            "hostname": platform.node(),
            "daemons": 0,
            "jobs": jobs,
            "max_inflight": max_inflight,
            "pool_size_slots": pool_size,
            "job_nprocs": job_nprocs,
            "grid": list(shape),
            "steps": steps,
            "pshape": list(pshape),
            "start_method": start_method,
            "affinity": affinity,
            "cpu_count": cpu_count,
            "python": sys.version.split()[0],
            "timing_note": (
                "closed-loop rows submit all jobs at once (serve modes) or "
                "loop engine.run (engine-serial); every server gets one "
                "untimed warm-up job (pool boot) excluded from latencies; "
                "open-loop rows submit at the offered rate with "
                "on_full=reject; throughput checks are enforced only on "
                "multi-core hosts, result-identity checks everywhere"
            ),
        },
        "results": results,
        "checks": checks,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    out(f"\nwrote {out_path}")
    return all_ok
