"""``python -m repro bench`` — the engine-comparison benchmark harness.

Runs the FDTD programs (Versions A and C) across all three execution
backends and several process-grid shapes, checks the paper's §4
correctness result *across backends* — near fields bitwise identical to
the sequential code, and identical between engines — and writes the
measurements to ``benchmarks/BENCH_engines.json``.

Timing discipline: every engine is run ``--repeat`` times per case and
the minimum is reported.  For the multiprocess engine the headline
``run_s`` excludes worker startup (interpreter boot, imports, shared
memory attach) — the engine holds workers at a barrier and times from
"go" — with ``startup_s`` reported alongside; in-process engines have
no comparable startup phase, so their ``run_s`` is plain wall time
around ``run()``.  The default start method here is ``fork`` so the
steady-state cost of the OS-process backend is compared, not the
price of booting interpreters (``--start-method spawn`` to override).

``--smoke`` shrinks everything (tiny grid, 2 ranks, one repetition)
for CI.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["run_bench"]

#: (version, grid shape, steps, per-version note) for the full bench.
FULL_CASES = [
    ("A", (121, 121, 121), 3, "near-field only; the paper's Fortran77 code"),
    ("C", (33, 33, 33), 8, "with far-field (NTFF) accumulation + reduce"),
]
SMOKE_CASES = [
    ("A", (11, 9, 9), 4, "smoke"),
    ("C", (11, 9, 9), 4, "smoke"),
]
FULL_PSHAPES = [(2, 1, 1), (2, 2, 1), (2, 2, 2)]
SMOKE_PSHAPES = [(2, 1, 1)]
ENGINES = ("cooperative", "threaded", "multiprocess")


def _build(version: str, shape: tuple, steps: int, pshape: tuple):
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        YeeGrid,
        build_parallel_fdtd,
    )

    config = FDTDConfig(
        grid=YeeGrid(shape=shape),
        steps=steps,
        sources=[
            PointSource(
                "ez",
                tuple(s // 2 for s in shape),
                GaussianPulse(delay=10, spread=3),
            )
        ],
    )
    if version == "C":
        return build_parallel_fdtd(
            config, pshape, version="C", ntff=NTFFConfig(gap=3)
        )
    return build_parallel_fdtd(config, pshape, version="A")


def _sequential_fields(version: str, shape: tuple, steps: int):
    from repro.apps.fdtd import (
        FDTDConfig,
        GaussianPulse,
        NTFFConfig,
        PointSource,
        VersionA,
        VersionC,
        YeeGrid,
    )

    config = FDTDConfig(
        grid=YeeGrid(shape=shape),
        steps=steps,
        sources=[
            PointSource(
                "ez",
                tuple(s // 2 for s in shape),
                GaussianPulse(delay=10, spread=3),
            )
        ],
    )
    if version == "C":
        return VersionC(config, NTFFConfig(gap=3)).run().fields
    return VersionA(config).run().fields


def _make_engine(name: str, start_method: str):
    if name == "cooperative":
        from repro.runtime import CooperativeEngine

        return CooperativeEngine()
    if name == "threaded":
        from repro.runtime import ThreadedEngine

        return ThreadedEngine()
    if name == "multiprocess":
        from repro.dist.engine import MultiprocessEngine

        return MultiprocessEngine(start_method=start_method)
    raise ValueError(f"unknown engine {name!r}")


def _fields_of(par, stores) -> dict[str, np.ndarray]:
    from repro.apps.fdtd import COMPONENTS

    host = stores[par.host]
    return {c: np.asarray(host[c]) for c in COMPONENTS}


def _identical(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    from repro.util import bitwise_equal_arrays

    return all(bitwise_equal_arrays(a[c], b[c]) for c in a)


def run_bench(args: list[str], out=print) -> bool:
    """Run the harness; returns False on any equality or check failure."""
    smoke = False
    repeat = 3
    start_method = "fork"
    out_path = Path("benchmarks") / "BENCH_engines.json"
    engines = list(ENGINES)
    rest = list(args)
    while rest:
        flag = rest.pop(0)
        if flag == "--smoke":
            smoke = True
        elif flag == "--repeat" and rest:
            repeat = int(rest.pop(0))
        elif flag == "--start-method" and rest:
            start_method = rest.pop(0)
        elif flag == "--out" and rest:
            out_path = Path(rest.pop(0))
        elif flag == "--engines" and rest:
            engines = rest.pop(0).split(",")
        else:
            out(f"unknown or incomplete bench option {flag!r}")
            return False

    cases = SMOKE_CASES if smoke else FULL_CASES
    pshapes = SMOKE_PSHAPES if smoke else FULL_PSHAPES
    if smoke:
        repeat = min(repeat, 1)

    from repro.util import format_table

    header = "engine-comparison benchmark" + (" (smoke)" if smoke else "")
    out(f"\n{header}\n{'=' * len(header)}")
    out(
        f"engines={','.join(engines)}  pshapes={pshapes}  repeat={repeat}  "
        f"multiprocess start method={start_method}  cores={os.cpu_count()}\n"
    )

    results: list[dict[str, Any]] = []
    all_ok = True
    for version, shape, steps, note in cases:
        seq_fields = _sequential_fields(version, shape, steps)
        for pshape in pshapes:
            par = _build(version, shape, steps, pshape)
            ranks = int(np.prod(pshape))
            reference_fields = None  # threaded result, per case
            per_engine_fields = {}
            for engine_name in engines:
                engine = _make_engine(engine_name, start_method)
                best = None
                result = None
                for _ in range(repeat):
                    t0 = time.perf_counter()
                    result = engine.run(par.to_parallel())
                    wall = time.perf_counter() - t0
                    timing = getattr(engine, "last_timing", None) or {
                        "run_s": wall,
                        "startup_s": 0.0,
                        "total_s": wall,
                    }
                    if best is None or timing["run_s"] < best["run_s"]:
                        best = dict(timing)
                fields = _fields_of(par, result.stores)
                per_engine_fields[engine_name] = fields
                near_ok = _identical(fields, seq_fields)
                all_ok &= near_ok
                row = {
                    "version": version,
                    "grid": list(shape),
                    "steps": steps,
                    "pshape": list(pshape),
                    "ranks": ranks,
                    "nprocs": ranks + 1,  # + host process
                    "engine": engine_name,
                    "start_method": (
                        start_method if engine_name == "multiprocess" else None
                    ),
                    "run_s": round(best["run_s"], 6),
                    "startup_s": round(best["startup_s"], 6),
                    "total_s": round(best["total_s"], 6),
                    "near_identical_to_sequential": near_ok,
                    "messages": sum(
                        s for s, _ in result.channel_stats.values()
                    ),
                    "bytes": sum(result.channel_bytes.values()),
                }
                results.append(row)
                if engine_name == "threaded":
                    reference_fields = fields
            # Cross-backend equality (Theorem 1, now across engines).
            if reference_fields is not None:
                for engine_name, fields in per_engine_fields.items():
                    same = _identical(fields, reference_fields)
                    all_ok &= same
                    if not same:
                        out(
                            f"MISMATCH: V{version} {pshape} {engine_name} "
                            "differs from threaded"
                        )

    rows = [
        [
            f"V{r['version']}",
            "x".join(map(str, r["grid"])),
            "x".join(map(str, r["pshape"])),
            r["engine"],
            f"{r['run_s'] * 1e3:.1f}",
            f"{r['startup_s'] * 1e3:.1f}",
            "yes" if r["near_identical_to_sequential"] else "NO",
        ]
        for r in results
    ]
    out(
        format_table(
            [
                "version",
                "grid",
                "pshape",
                "engine",
                "run ms",
                "startup ms",
                "identical",
            ],
            rows,
        )
    )

    # Headline check: OS-process backend at 4 ranks must not lose to
    # the GIL-bound threaded engine on the Version-A benchmark grid.
    checks: dict[str, Any] = {}
    if not smoke:
        timings = {
            (r["version"], tuple(r["pshape"]), r["engine"]): r["run_s"]
            for r in results
        }
        mp = timings.get(("A", (2, 2, 1), "multiprocess"))
        th = timings.get(("A", (2, 2, 1), "threaded"))
        if mp is not None and th is not None:
            checks["multiprocess_le_threaded_versionA_4ranks"] = mp <= th
            checks["multiprocess_over_threaded_ratio"] = round(mp / th, 4)
            out(
                f"\nVersion A, 4 ranks: multiprocess {mp * 1e3:.1f} ms vs "
                f"threaded {th * 1e3:.1f} ms "
                f"({'OK' if mp <= th else 'SLOWER'})"
            )
            all_ok &= mp <= th
    checks["all_near_fields_identical"] = all(
        r["near_identical_to_sequential"] for r in results
    )

    payload = {
        "meta": {
            "smoke": smoke,
            "repeat": repeat,
            "start_method": start_method,
            "engines": engines,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "timing_note": (
                "run_s excludes worker startup for the multiprocess engine "
                "(post-barrier timing); startup_s reports it; in-process "
                "engines report wall time around run()"
            ),
        },
        "results": results,
        "checks": checks,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    out(f"\nwrote {out_path}")
    return all_ok
