"""Job-level serving on the worker pool: many small systems, one pool.

The whole-run :class:`~repro.dist.engine.MultiprocessEngine` maps one
:class:`~repro.runtime.system.System` onto the pool at a time; a
:class:`JobServer` accepts many — :meth:`JobServer.submit` returns a
:class:`concurrent.futures.Future` immediately and the server keeps
every pool slot busy: each admitted job is prepared (bodies pickled)
*concurrently with* other jobs' execution, waits for enough free slots,
borrows them exclusively via :meth:`~repro.dist.pool.WorkerPool.checkout`,
runs through exactly the engine's dispatch/collect machinery
(:func:`~repro.dist.engine.build_channel_endpoints` /
:func:`~repro.dist.engine.collect_results`), and returns its slots and
shared segments the moment it completes.

**Why concurrent jobs are safe** (the determinacy argument): each job
is a closed system in the paper's model — its ranks talk only over that
job's own SRSW channels, its store arrays live in that job's own shared
segments, and its workers hold no state between jobs (a parked pool
worker runs one ``run_job`` at a time and touches nothing global).  Two
jobs in flight therefore share *no* channel, segment, or rank, so by
Theorem 1 every interleaving of their steps — including any schedule
the OS picks across the pool — leaves each job's final state exactly
what its sequential specification says.  Serving adds throughput, not
nondeterminism; the engine-equivalence tests assert this directly.

**Backpressure**: ``max_inflight`` bounds admitted-but-unfinished jobs.
At the bound, ``on_full="block"`` makes :meth:`submit` wait for a slot
(closed-loop clients) and ``on_full="reject"`` raises
:class:`ServerSaturatedError` immediately (open-loop clients shed
load).  Admitted jobs that need more slots than are currently free wait
in an internal ready queue ordered by admission.

**Observability**: the server owns an
:class:`~repro.obs.observer.Observer`; every job becomes a span
(queued + service phases), counters track submissions / completions /
failures / rejections, gauges track in-flight and queued depth (with
high-water marks), and :meth:`stats` aggregates per-job latencies into
throughput, p50/p95, and slot utilization.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.dist import closures
from repro.dist.engine import (
    MultiprocessEngine,
    _affinity_sets,
    build_channel_endpoints,
    collect_results,
)
from repro.dist.shm import DEFAULT_SLAB, DEFAULT_THRESHOLD
from repro.errors import ProcessFailedError
from repro.obs.observer import Observer
from repro.runtime.system import RunResult, System, assemble_run_result

__all__ = ["JobServer", "ServerSaturatedError", "ServerClosedError", "JobStats"]


class ServerSaturatedError(RuntimeError):
    """``submit`` on a full server with ``on_full="reject"``."""


class ServerClosedError(RuntimeError):
    """``submit`` on a closed server, or a queued job cancelled by
    ``close(drain=False)``."""


@dataclass
class JobStats:
    """One served job's accounting (see :meth:`JobServer.job_stats`)."""

    job_id: int
    label: str
    nprocs: int
    t_submit: float
    t_dispatch: float | None = None
    t_done: float | None = None
    ok: bool | None = None  # None while in flight
    #: Causal span-tree summary when the job ran with causal tracing:
    #: merged event count and trace depth (longest causal chain).
    causal_events: int | None = None
    causal_depth: int | None = None

    @property
    def queue_wait_s(self) -> float | None:
        if self.t_dispatch is None:
            return None
        return self.t_dispatch - self.t_submit

    @property
    def service_s(self) -> float | None:
        if self.t_done is None or self.t_dispatch is None:
            return None
        return self.t_done - self.t_dispatch

    @property
    def latency_s(self) -> float | None:
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit


@dataclass
class _Job:
    stats: JobStats
    system: System
    future: Future = field(default_factory=Future)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(idx)]


class JobServer:
    """Serve many Systems concurrently on one worker pool.

    Parameters
    ----------
    pool_size:
        Number of pool slots the server schedules over — the maximum
        ranks simultaneously executing.  A job with ``nprocs`` larger
        than this can never run and is rejected at submit.
    max_inflight:
        Bound on admitted-but-unfinished jobs (defaults to
        ``pool_size``): the backpressure knob.  With more in-flight
        jobs than free slots the surplus waits in the ready queue, so
        a finishing job's slots are re-dispatched without a round trip
        to the client.
    on_full:
        ``"block"`` (default) or ``"reject"`` — what :meth:`submit`
        does at the ``max_inflight`` bound.
    pool:
        Use (but do not own) an existing
        :class:`~repro.dist.pool.WorkerPool`; by default the server
        creates one and shuts it down on :meth:`close`.  Do not run a
        pooled engine and a server on the same pool concurrently —
        ``ensure`` and ``checkout`` hand out the same slots.
    observer:
        An :class:`~repro.obs.observer.Observer` to record into
        (default: a fresh one, exposed as :attr:`observer`).
    start_method / recv_timeout / observe / shm_threshold /
    payload_slab / crash_grace / affinity / trace_causal:
        As on :class:`~repro.dist.engine.MultiprocessEngine`, applied
        per job.  With ``trace_causal=True`` each job's result carries
        its own :class:`~repro.obs.causal.CausalTrace` and the job's
        :class:`JobStats` summarises it (event count, causal depth) —
        the per-job span trees the fleet-serving telemetry builds on.
    """

    def __init__(
        self,
        pool_size: int,
        *,
        max_inflight: int | None = None,
        on_full: str = "block",
        pool=None,
        observer: Observer | None = None,
        start_method: str = "fork",
        recv_timeout: float | None = None,
        observe: bool = False,
        shm_threshold: int = DEFAULT_THRESHOLD,
        payload_slab: int = DEFAULT_SLAB,
        crash_grace: float = 5.0,
        affinity=None,
        trace_causal: bool = False,
    ):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if on_full not in ("block", "reject"):
            raise ValueError(f"on_full must be block|reject, got {on_full!r}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if pool is None:
            from repro.dist.pool import WorkerPool

            pool = WorkerPool(start_method)
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        self.pool_size = pool_size
        self.max_inflight = max_inflight or pool_size
        self.on_full = on_full
        self.observer = observer or Observer()
        self._recv_timeout = recv_timeout
        self._observe = bool(observe)
        self._shm_threshold = shm_threshold
        self._payload_slab = max(0, int(payload_slab))
        self._crash_grace = crash_grace
        self._affinity = affinity
        self._trace_causal = bool(trace_causal)

        self._cv = threading.Condition()
        self._free_slots = pool_size  # scheduling capacity (not processes)
        self._inflight = 0
        self._closed = False
        self._abort_queued = False  # close(drain=False) sheds the queue
        self._arena_lock = threading.Lock()  # arena is not thread-safe
        self._threads: list[threading.Thread] = []
        self._records: list[JobStats] = []
        self._queued: list[_Job] = []  # admitted, waiting for slots
        self._seq = 0
        self._clock = self.observer.clock

        # Boot every worker NOW, while this process is single-threaded:
        # forking from a live serving thread-pool can copy another
        # thread's held lock (pickler, resource sharer, import system)
        # into the child, which then wedges in its first recv.  With
        # the pool pre-sized, checkout never forks on the serving path
        # (only crash respawns do, and those are rare).
        self.pool.ensure(pool_size)

        reg = self.observer.registry
        self._c_submitted = reg.counter("serve/jobs_submitted")
        self._c_completed = reg.counter("serve/jobs_completed")
        self._c_failed = reg.counter("serve/jobs_failed")
        self._c_rejected = reg.counter("serve/jobs_rejected")
        self._g_inflight = reg.gauge("serve/inflight")
        self._g_queued = reg.gauge("serve/queue_depth")

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Stop admitting jobs and settle the in-flight ones.

        ``drain=True`` (default) waits for every admitted job — queued
        and dispatched alike — to finish.  ``drain=False`` cancels jobs
        still waiting for slots (their futures get
        :class:`ServerClosedError` unless already cancelled), waits
        only for the dispatched ones, and returns.  Either way the
        owned pool is then shut down — no worker and no shared segment
        survives a close (the no-leak tests assert this).  Idempotent.
        """
        with self._cv:
            if self._closed:
                threads = list(self._threads)
            else:
                self._closed = True
                if not drain:
                    self._abort_queued = True
                    for job in list(self._queued):
                        job.future.cancel()
                threads = list(self._threads)
                self._cv.notify_all()
        for t in threads:
            t.join()
        if self._owns_pool:
            self.pool.shutdown()

    # -- submission ----------------------------------------------------------

    def submit(self, system: System, label: str = "") -> Future:
        """Admit one job; returns a Future resolving to its
        :class:`~repro.runtime.system.RunResult` (or raising the job's
        :class:`~repro.errors.ProcessFailedError`)."""
        if system.nprocs > self.pool_size:
            raise ValueError(
                f"job needs {system.nprocs} ranks but the server schedules "
                f"over {self.pool_size} slots"
            )
        with self._cv:
            if self._closed:
                raise ServerClosedError("server is closed")
            if self._inflight >= self.max_inflight:
                if self.on_full == "reject":
                    self._c_rejected.inc()
                    raise ServerSaturatedError(
                        f"{self._inflight} jobs in flight "
                        f"(max_inflight={self.max_inflight})"
                    )
                while self._inflight >= self.max_inflight and not self._closed:
                    self._cv.wait()
                if self._closed:
                    raise ServerClosedError("server closed while waiting")
            self._inflight += 1
            self._g_inflight.set(self._inflight)
            self._seq += 1
            stats = JobStats(
                job_id=self._seq,
                label=label or f"job-{self._seq}",
                nprocs=system.nprocs,
                t_submit=self._clock(),
            )
            job = _Job(stats=stats, system=system)
            self._records.append(stats)
            self._c_submitted.inc()
            thread = threading.Thread(
                target=self._serve_one,
                args=(job,),
                name=f"repro-serve-{stats.job_id}",
                daemon=True,
            )
            self._threads.append(thread)
        thread.start()
        return job.future

    # -- the per-job pipeline ------------------------------------------------

    def _serve_one(self, job: _Job) -> None:
        stats = job.stats
        try:
            # Prepare while other jobs execute: body pickling is pure
            # CPU on this side and needs no slots.
            system = job.system
            nprocs = system.nprocs
            bodies = [
                ("pickle", closures.dumps(p.body)) for p in system.processes
            ]

            # Wait for slots (ready queue, admission order).
            with self._cv:
                self._queued.append(job)
                self._g_queued.set(len(self._queued))
                self._g_queued.update_max(len(self._queued))
                while (
                    not self._abort_queued
                    and not job.future.cancelled()
                    and (
                        self._free_slots < nprocs
                        or self._queued[0] is not job
                    )
                ):
                    self._cv.wait()
                self._queued.remove(job)
                self._g_queued.set(len(self._queued))
                if self._abort_queued or job.future.cancelled():
                    if not job.future.cancelled():
                        job.future.set_exception(
                            ServerClosedError("server closed before dispatch")
                        )
                    return
                self._free_slots -= nprocs
                self._cv.notify_all()
            if not job.future.set_running_or_notify_cancel():
                with self._cv:
                    self._free_slots += nprocs
                    self._cv.notify_all()
                return

            stats.t_dispatch = self._clock()
            try:
                with self.observer.span(
                    stats.job_id, stats.label, cat="serve", nprocs=nprocs
                ):
                    result = self._run_job(system, bodies)
                if result.causal is not None:
                    stats.causal_events = len(result.causal)
                    stats.causal_depth = result.causal.depth
            finally:
                stats.t_done = self._clock()
                with self._cv:
                    self._free_slots += nprocs
                    self._cv.notify_all()
            stats.ok = True
            self._c_completed.inc()
            job.future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - future carries it
            stats.ok = False
            self._c_failed.inc()
            if not job.future.done():
                job.future.set_exception(exc)
        finally:
            with self._cv:
                self._inflight -= 1
                self._g_inflight.set(self._inflight)
                self._threads.remove(threading.current_thread())
                self._cv.notify_all()

    def _run_job(self, system: System, bodies: list) -> RunResult:
        """One job through checkout → dispatch → collect → readback.

        The same protocol as a pooled engine run; segment names are
        tracked so exactly this job's segments recycle at the end.
        """
        pool = self.pool
        arena = pool.arena
        nprocs = system.nprocs
        affinity = _affinity_sets(self._affinity, nprocs)
        seg_names: list[str] = []
        parent_conns: dict[Any, int] = {}
        slots: list = []
        collected = False
        try:
            with self._arena_lock:
                w_specs, r_specs, channel_conns, names = (
                    build_channel_endpoints(
                        system, pool.ctx, arena, self._payload_slab
                    )
                )
                seg_names.extend(names)
                plans, rests = [], []
                for p in system.processes:
                    plan, rest = arena.share_store(
                        p.store, self._shm_threshold
                    )
                    plans.append(plan)
                    rests.append(rest)
                    seg_names.extend(
                        name for name, _dt, _sh in plan.values()
                    )

            child_conns = []
            for p in system.processes:
                parent_conn, child_conn = pool.ctx.Pipe(duplex=True)
                parent_conns[parent_conn] = p.rank
                child_conns.append(child_conn)

            slots = pool.checkout(nprocs)
            for p in system.processes:
                rank = p.rank
                pool.dispatch(
                    slots[rank],
                    {
                        "rank": rank,
                        "name": p.name,
                        "nprocs": nprocs,
                        "result_conn": child_conns[rank],
                        "body": bodies[rank],
                        "plan": plans[rank],
                        "rest": ("pickle", closures.dumps(rests[rank])),
                        "w_specs": w_specs[rank],
                        "r_specs": r_specs[rank],
                        "recv_timeout": self._recv_timeout,
                        "observe": self._observe,
                        "affinity": affinity[rank],
                        "trace_causal": self._trace_causal,
                    },
                )
            # Workers hold fd duplicates; close ours so EOF stays exact.
            for conn in channel_conns:
                conn.close()
            for conn in child_conns:
                conn.close()

            procs = [slot.proc for slot in slots]
            (
                returns,
                overrides,
                stats,
                observations,
                causal_payloads,
                errors,
                _t0,
                _t1,
            ) = collect_results(
                system, procs, parent_conns, self._crash_grace
            )
            collected = True

            stores: list[dict[str, Any]] = []
            with self._arena_lock:
                for rank in range(nprocs):
                    store = arena.readback(plans[rank])
                    if rank in overrides:
                        store.update(overrides[rank])
                    else:
                        store.update(rests[rank])
                    stores.append(store)
        finally:
            if slots:
                pool.checkin(slots)
            if collected:
                # Only quiescent segments recycle; an abandoned setup
                # keeps its segments out of reuse until pool shutdown.
                with self._arena_lock:
                    arena.recycle(seg_names)
            for conn in parent_conns:
                try:
                    conn.close()
                except OSError:
                    pass

        if errors:
            rank = min(errors)
            raise ProcessFailedError(rank, errors[rank]) from errors[rank]
        records = MultiprocessEngine._merge_channel_stats(system, stats)
        report = None
        if self._observe:
            from repro.obs.report import merge_worker_observations

            report = merge_worker_observations(
                "serve", nprocs, observations, records
            )
        causal = None
        if causal_payloads:
            from repro.obs.causal import merge_causal_events

            causal = merge_causal_events(
                causal_payloads, nprocs, engine="multiprocess"
            )
        return assemble_run_result(
            stores=stores,
            returns=[returns.get(r) for r in range(nprocs)],
            engine="multiprocess",
            channel_stats=records,
            report=report,
            causal=causal,
        )

    # -- accounting ----------------------------------------------------------

    def job_stats(self) -> list[JobStats]:
        """Per-job records in submission order (snapshot)."""
        with self._cv:
            return list(self._records)

    def stats(self) -> dict[str, Any]:
        """Aggregate serving statistics over every finished job.

        ``throughput_jobs_per_s`` spans first submission to last
        completion; ``slot_utilization`` is busy slot-seconds (each
        job's service time × its ranks) over ``pool_size`` ×
        that same span.
        """
        with self._cv:
            records = list(self._records)
        done = [r for r in records if r.t_done is not None]
        out: dict[str, Any] = {
            "jobs_submitted": len(records),
            "jobs_done": len(done),
            "jobs_failed": sum(1 for r in done if r.ok is False),
            "pool_size": self.pool_size,
            "max_inflight": self.max_inflight,
            "inflight_hwm": self._g_inflight.high_water,
            "queue_depth_hwm": self._g_queued.high_water,
        }
        if not done:
            return out
        t0 = min(r.t_submit for r in done)
        t1 = max(r.t_done for r in done)
        elapsed = max(t1 - t0, 1e-9)
        latencies = sorted(r.latency_s for r in done)
        waits = sorted(r.queue_wait_s for r in done if r.queue_wait_s is not None)
        busy = sum(
            r.service_s * r.nprocs for r in done if r.service_s is not None
        )
        out.update(
            elapsed_s=elapsed,
            throughput_jobs_per_s=len(done) / elapsed,
            latency_p50_s=_percentile(latencies, 0.50),
            latency_p95_s=_percentile(latencies, 0.95),
            queue_wait_p50_s=_percentile(waits, 0.50) if waits else 0.0,
            queue_wait_p95_s=_percentile(waits, 0.95) if waits else 0.0,
            slot_utilization=busy / (self.pool_size * elapsed),
        )
        return out
