"""Job-level serving on the worker pool: many small systems, one pool.

The whole-run :class:`~repro.dist.engine.MultiprocessEngine` maps one
:class:`~repro.runtime.system.System` onto the pool at a time; a
:class:`JobServer` accepts many — :meth:`JobServer.submit` returns a
:class:`concurrent.futures.Future` immediately and the server keeps
every pool slot busy: each admitted job is prepared (bodies pickled)
*concurrently with* other jobs' execution, waits for enough free slots,
borrows them exclusively via :meth:`~repro.dist.pool.WorkerPool.checkout`,
runs through exactly the engine's dispatch/collect machinery
(:func:`~repro.dist.engine.build_channel_endpoints` /
:func:`~repro.dist.engine.collect_results`), and returns its slots and
shared segments the moment it completes.

The submit/Future/backpressure machinery itself lives in
:mod:`repro.dist.serving` (:class:`~repro.dist.serving.JobServerCore`)
and is shared with the multi-host
:class:`~repro.dist.fleet.FleetScheduler`; this module binds it to one
local :class:`~repro.dist.pool.WorkerPool`, where "capacity" means pool
slots.

**Why concurrent jobs are safe** (the determinacy argument): each job
is a closed system in the paper's model — its ranks talk only over that
job's own SRSW channels, its store arrays live in that job's own shared
segments, and its workers hold no state between jobs (a parked pool
worker runs one ``run_job`` at a time and touches nothing global).  Two
jobs in flight therefore share *no* channel, segment, or rank, so by
Theorem 1 every interleaving of their steps — including any schedule
the OS picks across the pool — leaves each job's final state exactly
what its sequential specification says.  Serving adds throughput, not
nondeterminism; the engine-equivalence tests assert this directly.

**Backpressure**: ``max_inflight`` bounds admitted-but-unfinished jobs.
At the bound, ``on_full="block"`` makes :meth:`submit` wait for a slot
(closed-loop clients) and ``on_full="reject"`` raises
:class:`ServerSaturatedError` immediately (open-loop clients shed
load).  Admitted jobs that need more slots than are currently free wait
in an internal ready queue ordered by admission.

**Observability**: the server owns an
:class:`~repro.obs.observer.Observer`; every job becomes a span
(queued + service phases), counters track submissions / completions /
failures / rejections, gauges track in-flight and queued depth (with
high-water marks), and :meth:`stats` aggregates per-job latencies into
throughput, p50/p95, and slot utilization.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.dist import closures
from repro.dist.engine import (
    MultiprocessEngine,
    _affinity_sets,
    build_channel_endpoints,
    collect_results,
)
from repro.dist.serving import (
    JobServerCore,
    JobStats,
    ServerClosedError,
    ServerSaturatedError,
    _Job,
)
from repro.dist.shm import DEFAULT_SLAB, DEFAULT_THRESHOLD
from repro.errors import ProcessFailedError
from repro.obs.observer import Observer
from repro.runtime.system import RunResult, System, assemble_run_result

__all__ = ["JobServer", "ServerSaturatedError", "ServerClosedError", "JobStats"]


class JobServer(JobServerCore):
    """Serve many Systems concurrently on one worker pool.

    Parameters
    ----------
    pool_size:
        Number of pool slots the server schedules over — the maximum
        ranks simultaneously executing.  A job with ``nprocs`` larger
        than this can never run and is rejected at submit.
    max_inflight:
        Bound on admitted-but-unfinished jobs (defaults to
        ``pool_size``): the backpressure knob.  With more in-flight
        jobs than free slots the surplus waits in the ready queue, so
        a finishing job's slots are re-dispatched without a round trip
        to the client.
    on_full:
        ``"block"`` (default) or ``"reject"`` — what :meth:`submit`
        does at the ``max_inflight`` bound.
    pool:
        Use (but do not own) an existing
        :class:`~repro.dist.pool.WorkerPool`; by default the server
        creates one and shuts it down on :meth:`close`.  Do not run a
        pooled engine and a server on the same pool concurrently —
        ``ensure`` and ``checkout`` hand out the same slots.
    observer:
        An :class:`~repro.obs.observer.Observer` to record into
        (default: a fresh one, exposed as :attr:`observer`).
    start_method / recv_timeout / observe / shm_threshold /
    payload_slab / crash_grace / affinity / trace_causal:
        As on :class:`~repro.dist.engine.MultiprocessEngine`, applied
        per job.  With ``trace_causal=True`` each job's result carries
        its own :class:`~repro.obs.causal.CausalTrace` and the job's
        :class:`JobStats` summarises it (event count, causal depth) —
        the per-job span trees the fleet-serving telemetry builds on.
    """

    def __init__(
        self,
        pool_size: int,
        *,
        max_inflight: int | None = None,
        on_full: str = "block",
        pool=None,
        observer: Observer | None = None,
        start_method: str = "fork",
        recv_timeout: float | None = None,
        observe: bool = False,
        shm_threshold: int = DEFAULT_THRESHOLD,
        payload_slab: int = DEFAULT_SLAB,
        crash_grace: float = 5.0,
        affinity=None,
        trace_causal: bool = False,
    ):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        super().__init__(
            max_inflight=max_inflight or pool_size,
            on_full=on_full,
            observer=observer,
        )
        if pool is None:
            from repro.dist.pool import WorkerPool

            pool = WorkerPool(start_method)
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool
        self.pool_size = pool_size
        self._recv_timeout = recv_timeout
        self._observe = bool(observe)
        self._shm_threshold = shm_threshold
        self._payload_slab = max(0, int(payload_slab))
        self._crash_grace = crash_grace
        self._affinity = affinity
        self._trace_causal = bool(trace_causal)

        self._free_slots = pool_size  # scheduling capacity (not processes)
        self._arena_lock = threading.Lock()  # arena is not thread-safe

        # Boot every worker NOW, while this process is single-threaded:
        # forking from a live serving thread-pool can copy another
        # thread's held lock (pickler, resource sharer, import system)
        # into the child, which then wedges in its first recv.  With
        # the pool pre-sized, checkout never forks on the serving path
        # (only crash respawns do, and those are rare).
        self.pool.ensure(pool_size)

    # -- capacity: pool slots ------------------------------------------------

    def _check_admissible(self, system: System) -> None:
        if system.nprocs > self.pool_size:
            raise ValueError(
                f"job needs {system.nprocs} ranks but the server schedules "
                f"over {self.pool_size} slots"
            )

    def _try_reserve(self, job: _Job):
        nprocs = job.system.nprocs
        if self._free_slots < nprocs:
            return None
        self._free_slots -= nprocs
        return nprocs

    def _release(self, job: _Job, grant) -> None:
        self._free_slots += grant

    def _close_resources(self) -> None:
        if self._owns_pool:
            self.pool.shutdown()

    def _stats_extra(self, out, done, elapsed) -> None:
        out["pool_size"] = self.pool_size
        if not done or not elapsed:
            return
        busy = sum(
            r.service_s * r.nprocs for r in done if r.service_s is not None
        )
        out["slot_utilization"] = busy / (self.pool_size * elapsed)

    # -- the per-job pipeline ------------------------------------------------

    def _prepare(self, job: _Job):
        # Body pickling is pure CPU on this side and needs no slots.
        return [
            ("pickle", closures.dumps(p.body)) for p in job.system.processes
        ]

    def _execute(self, job: _Job, prepared, grant) -> RunResult:
        return self._run_job(job.system, prepared)

    def _run_job(self, system: System, bodies: list) -> RunResult:
        """One job through checkout → dispatch → collect → readback.

        The same protocol as a pooled engine run; segment names are
        tracked so exactly this job's segments recycle at the end.
        """
        pool = self.pool
        arena = pool.arena
        nprocs = system.nprocs
        affinity = _affinity_sets(self._affinity, nprocs)
        seg_names: list[str] = []
        parent_conns: dict[Any, int] = {}
        slots: list = []
        collected = False
        try:
            with self._arena_lock:
                w_specs, r_specs, channel_conns, names = (
                    build_channel_endpoints(
                        system, pool.ctx, arena, self._payload_slab
                    )
                )
                seg_names.extend(names)
                plans, rests = [], []
                for p in system.processes:
                    plan, rest = arena.share_store(
                        p.store, self._shm_threshold
                    )
                    plans.append(plan)
                    rests.append(rest)
                    seg_names.extend(
                        name for name, _dt, _sh in plan.values()
                    )

            child_conns = []
            for p in system.processes:
                parent_conn, child_conn = pool.ctx.Pipe(duplex=True)
                parent_conns[parent_conn] = p.rank
                child_conns.append(child_conn)

            slots = pool.checkout(nprocs)
            for p in system.processes:
                rank = p.rank
                pool.dispatch(
                    slots[rank],
                    {
                        "rank": rank,
                        "name": p.name,
                        "nprocs": nprocs,
                        "result_conn": child_conns[rank],
                        "body": bodies[rank],
                        "plan": plans[rank],
                        "rest": ("pickle", closures.dumps(rests[rank])),
                        "w_specs": w_specs[rank],
                        "r_specs": r_specs[rank],
                        "recv_timeout": self._recv_timeout,
                        "observe": self._observe,
                        "affinity": affinity[rank],
                        "trace_causal": self._trace_causal,
                    },
                )
            # Workers hold fd duplicates; close ours so EOF stays exact.
            for conn in channel_conns:
                conn.close()
            for conn in child_conns:
                conn.close()

            procs = [slot.proc for slot in slots]
            (
                returns,
                overrides,
                stats,
                observations,
                causal_payloads,
                errors,
                _t0,
                _t1,
            ) = collect_results(
                system, procs, parent_conns, self._crash_grace
            )
            collected = True

            stores: list[dict[str, Any]] = []
            with self._arena_lock:
                for rank in range(nprocs):
                    store = arena.readback(plans[rank])
                    if rank in overrides:
                        store.update(overrides[rank])
                    else:
                        store.update(rests[rank])
                    stores.append(store)
        finally:
            if slots:
                pool.checkin(slots)
            if collected:
                # Only quiescent segments recycle; an abandoned setup
                # keeps its segments out of reuse until pool shutdown.
                with self._arena_lock:
                    arena.recycle(seg_names)
            for conn in parent_conns:
                try:
                    conn.close()
                except OSError:
                    pass

        if errors:
            rank = min(errors)
            raise ProcessFailedError(rank, errors[rank]) from errors[rank]
        records = MultiprocessEngine._merge_channel_stats(system, stats)
        report = None
        if self._observe:
            from repro.obs.report import merge_worker_observations

            report = merge_worker_observations(
                "serve", nprocs, observations, records
            )
        causal = None
        if causal_payloads:
            from repro.obs.causal import merge_causal_events

            causal = merge_causal_events(
                causal_payloads, nprocs, engine="multiprocess"
            )
        return assemble_run_result(
            stores=stores,
            returns=[returns.get(r) for r in range(nprocs)],
            engine="multiprocess",
            channel_stats=records,
            report=report,
            causal=causal,
        )
