"""Multiprocess execution backend: each rank is a real OS process.

The paper's Theorem 1 (deterministic processes + SRSW channels of
infinite slack => every maximal interleaving terminates in the same
final state) is what licenses this package: the *same*
:class:`~repro.runtime.system.System` objects that run on the threaded
and cooperative engines run here on genuinely parallel OS processes,
and the final state must be — and is tested to be — bitwise identical.

Pieces:

* :mod:`~repro.dist.closures` — value-pickling for the dynamic
  functions (closures, lambdas) that process bodies are made of, so a
  body can cross a ``spawn`` process boundary;
* :mod:`~repro.dist.wire` — the message encoding used on cross-process
  channels, with a fast path that ships contiguous NumPy arrays as raw
  buffer-protocol frames (no pickle of array data);
* :mod:`~repro.dist.shm` — ``multiprocessing.shared_memory`` backing
  for process stores, so block-decomposed grid arrays are placed in
  shared segments once instead of being copied through pipes, with
  deterministic parent-owned cleanup;
* :mod:`~repro.dist.channels` — SRSW channels over OS pipes that keep
  the model's *infinite slack* (sends never block: a per-writer feeder
  thread drains an unbounded local queue into the pipe);
* :mod:`~repro.dist.engine` — :class:`MultiprocessEngine`, the third
  execution backend, honouring the same ``System``/``RunResult``
  contract as the threaded and cooperative engines;
* :mod:`~repro.dist.net` — the cross-host transport: length-prefixed
  socket framing of the same wire format, TCP
  :class:`~repro.dist.net.transport.SocketChannel` endpoints sharing
  the pipe transport's queue+feeder core, rank rendezvous, the
  ``python -m repro worker-daemon`` per-host daemon, and
  :class:`~repro.dist.net.engine.SocketEngine`
  (``make_engine("socket")``) — the only backend whose ranks can live
  on different machines;
* :mod:`~repro.dist.serve` — :class:`JobServer`, job-level serving of
  many small systems concurrently on one
  :class:`~repro.dist.pool.WorkerPool`, with bounded backpressure and
  per-job latency/throughput accounting;
* :mod:`~repro.dist.bench` — the engine-comparison and serving
  benchmark harnesses behind ``python -m repro bench`` and
  ``python -m repro serve-bench``.
"""

from repro.dist.engine import MultiprocessEngine
from repro.dist.serve import JobServer, ServerSaturatedError

__all__ = ["MultiprocessEngine", "JobServer", "ServerSaturatedError"]
