"""Shared-memory backing for process stores.

The multiprocess engine places every sufficiently large array of every
rank's initial store into a ``multiprocessing.shared_memory`` segment.
Workers attach the segments and run their bodies *in place*: the
block-decomposed FDTD field and coefficient arrays are written once by
the parent and read once at the end, instead of being pickled through
a pipe in each direction.

Ownership and lifecycle are deliberately asymmetric:

* the **parent** creates every segment inside a
  :class:`SharedStoreArena` and is the only unlinker —
  :meth:`SharedStoreArena.cleanup` runs in a ``finally`` around the
  run, so segments are reclaimed even when a worker crashed mid-step;
* **workers** attach by name and only ever ``close()``.  (CPython's
  ``resource_tracker`` also registers on attach, but the tracker
  process — and its per-type name *set* — is inherited by workers
  under both start methods, so the attach-side register is a no-op
  and the parent's unlink unregisters exactly once.  Sending an
  explicit unregister from a worker would remove the parent's entry
  early — do not.)

A module-level registry (:func:`live_segment_names`) records which
segment names this process has created and not yet unlinked; the leak
tests assert it is empty after both clean and crashing runs.
"""

from __future__ import annotations

import os
import struct
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.util import deep_copy_value

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_SLAB",
    "SharedStoreArena",
    "SharedCounter",
    "attach_store",
    "flush_store",
    "live_segment_names",
]

#: Arrays below this many bytes ride in the worker bootstrap pickle
#: instead of a shared segment (a segment costs a file descriptor and
#: a 4 KiB page; tiny scalars are not worth one).
DEFAULT_THRESHOLD = 256

#: Default per-channel payload-staging slab size (bytes).  Sized so one
#: batched ghost exchange on the full benchmark grid (three ~120 KiB
#: face strips) plus a couple of in-flight predecessors fit without
#: triggering the copy-on-send pipe fallback.
DEFAULT_SLAB = 1 << 20

#: Segment names created by this process and not yet unlinked.
_LIVE_SEGMENTS: set[str] = set()


def live_segment_names() -> frozenset[str]:
    """Names of shared segments this process currently owns."""
    return frozenset(_LIVE_SEGMENTS)


def _shareable(value: Any, threshold: int) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in "biufcSU"
        and value.dtype.names is None
        and value.nbytes >= threshold
    )


class SharedCounter:
    """One 8-byte integer in a named shared segment.

    Used as a channel's cross-process *receive counter*: written only
    by the reader, read only by the writer (to compute the queue
    occupancy high-water mark), so a plain aligned store/load suffices
    — the value is monotone and only feeds statistics.
    """

    __slots__ = ("_seg",)

    SIZE = 8

    def __init__(self, seg: shared_memory.SharedMemory):
        self._seg = seg

    @classmethod
    def attach(cls, name: str) -> "SharedCounter":
        return cls(shared_memory.SharedMemory(name=name))

    @property
    def value(self) -> int:
        return struct.unpack_from("q", self._seg.buf, 0)[0]

    @value.setter
    def value(self, v: int) -> None:
        struct.pack_into("q", self._seg.buf, 0, v)

    def close(self) -> None:
        try:
            self._seg.close()
        except Exception:
            pass


class SharedStoreArena:
    """Parent-side owner of every shared segment backing one run.

    A pooled engine keeps one arena alive across runs: :meth:`recycle`
    parks every in-use segment on a size-keyed free list instead of
    unlinking it, and :meth:`_new_segment` satisfies a later request of
    the same size from that list — so repeated runs over matching grid
    shapes reuse their segments (and fds) instead of re-creating them.
    :meth:`cleanup` remains the only unlinker, reclaiming free and
    in-use segments alike.
    """

    def __init__(self, tag: str = ""):
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}
        self._counter = 0
        self.recycled = 0  # segments served from the free list (stats)
        self._tag = tag or f"{os.getpid():x}_{os.urandom(4).hex()}"

    def __len__(self) -> int:
        return len(self._segments)

    # -- creation ----------------------------------------------------------

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        size = max(1, nbytes)
        bucket = self._free.get(size)
        if bucket:
            seg = bucket.pop()
            self._segments[seg.name] = seg
            self.recycled += 1
            return seg
        name = f"repro_{self._tag}_{self._counter}"
        self._counter += 1
        seg = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments[name] = seg
        _LIVE_SEGMENTS.add(name)
        return seg

    def share_array(self, arr: np.ndarray) -> tuple[str, str, tuple]:
        """Copy ``arr`` into a fresh segment; returns its attach spec."""
        arr = np.ascontiguousarray(arr)
        seg = self._new_segment(arr.nbytes)
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        return (seg.name, arr.dtype.str, tuple(arr.shape))

    def share_store(
        self, store: dict[str, Any], threshold: int = DEFAULT_THRESHOLD
    ) -> tuple[dict[str, tuple], dict[str, Any]]:
        """Split one rank's store into ``(shm_plan, pickled_rest)``."""
        plan: dict[str, tuple] = {}
        rest: dict[str, Any] = {}
        for key, value in store.items():
            if _shareable(value, threshold):
                plan[key] = self.share_array(value)
            else:
                rest[key] = value
        return plan, rest

    def new_counter(self) -> str:
        """A zeroed :class:`SharedCounter` segment; returns its name."""
        seg = self._new_segment(SharedCounter.SIZE)
        struct.pack_into("q", seg.buf, 0, 0)
        return seg.name

    def new_slab(self, nbytes: int) -> str:
        """A payload-staging slab segment (see :mod:`repro.dist.wire`);
        returns its name.  Contents are never zeroed: a slab region is
        only read after being written for the same message."""
        return self._new_segment(nbytes).name

    # -- readback and teardown ---------------------------------------------

    def readback(self, plan: dict[str, tuple]) -> dict[str, np.ndarray]:
        """Copy a rank's shared arrays back out (before :meth:`cleanup`)."""
        out: dict[str, np.ndarray] = {}
        for key, (name, dtype_str, shape) in plan.items():
            seg = self._segments[name]
            out[key] = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=seg.buf
            ).copy()
        return out

    def recycle(self, names: "list[str] | None" = None) -> None:
        """Park in-use segments on the size-keyed free list.

        Called between pooled runs *after* :meth:`readback`: the
        segments stay mapped and owned (still counted by
        :func:`live_segment_names`), ready for same-size reuse.

        ``names=None`` parks everything (the whole-run engine path);
        an explicit list parks only those segments — the serving layer
        recycles each job's segments as that job completes, while other
        jobs' segments are still live.  Unknown names are ignored (the
        job may have failed before sharing anything).
        """
        if names is None:
            targets = list(self._segments.values())
        else:
            targets = [
                seg
                for name in names
                if (seg := self._segments.get(name)) is not None
            ]
        for seg in targets:
            del self._segments[seg.name]
            self._free.setdefault(seg.size, []).append(seg)

    def cleanup(self) -> None:
        """Close and unlink every segment; idempotent, crash-tolerant."""
        freed = [s for bucket in self._free.values() for s in bucket]
        self._free.clear()
        for seg in list(self._segments.values()) + freed:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
            _LIVE_SEGMENTS.discard(seg.name)
        self._segments.clear()


# -- worker side --------------------------------------------------------------


def attach_store(
    plan: dict[str, tuple], rest: dict[str, Any]
) -> tuple[dict[str, Any], dict[str, tuple]]:
    """Build a live store from an attach plan plus the pickled remainder.

    Returns ``(store, handles)`` where ``handles`` maps each shm-backed
    key to its ``(segment, array)`` pair — needed by :func:`flush_store`
    and for closing the segments on worker exit.
    """
    store: dict[str, Any] = {}
    handles: dict[str, tuple] = {}
    for key, (name, dtype_str, shape) in plan.items():
        seg = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf)
        store[key] = arr
        handles[key] = (seg, arr)
    for key, value in rest.items():
        store[key] = deep_copy_value(value)
    return store, handles


def flush_store(
    store: dict[str, Any], handles: dict[str, tuple]
) -> dict[str, Any]:
    """Reconcile a finished store with its shared segments.

    In-place mutation of a shm-backed array needs nothing.  A store
    entry *rebound* to a new array of the same shape/dtype is copied
    back into its segment; any other rebinding — and every entry that
    was never shm-backed — is returned as an override for the parent to
    apply on top of the segment readback.
    """
    overrides: dict[str, Any] = {}
    for key, value in store.items():
        handle = handles.get(key)
        if handle is None:
            overrides[key] = value
            continue
        _seg, arr = handle
        if value is arr:
            continue
        if (
            isinstance(value, np.ndarray)
            and value.shape == arr.shape
            and value.dtype == arr.dtype
        ):
            arr[...] = value
        else:
            overrides[key] = value
    return overrides


def close_handles(handles: dict[str, tuple]) -> None:
    """Worker-side detach (never unlinks: the parent owns the segments)."""
    for seg, _arr in handles.values():
        try:
            seg.close()
        except Exception:
            pass
