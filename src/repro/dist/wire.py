"""Message encoding for cross-process channels.

A channel value is shipped as a *header frame* followed by zero or more
*array frames*:

* the header is a pickle of the value's skeleton — the original nested
  dicts/lists/tuples with every eligible NumPy array replaced by an
  :class:`_ArrayRef` placeholder — plus per-array ``(dtype, shape)``
  metadata;
* each array frame is the array's raw buffer, written straight from
  the array's memory (buffer protocol) with **no pickle copy**, and
  received straight into a freshly allocated array with
  ``Connection.recv_bytes_into`` (no intermediate bytes object).

Eligible arrays are unstructured, non-object dtypes supporting the
buffer protocol; everything else rides in the header pickle, which
uses :mod:`repro.dist.closures` so even function-valued payloads (rare,
but legal on in-process channels) survive the crossing.

Frame sequences never interleave: channels are single-reader
single-writer and each endpoint performs one send/receive at a time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dist import closures

__all__ = ["send", "recv", "encode", "decode"]

#: dtype kinds eligible for the raw-buffer fast path.
_FAST_KINDS = frozenset("biufcSU")


class _ArrayRef:
    """Placeholder for the i-th extracted array in a skeleton."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (_ArrayRef, (self.index,))


def _fast_path(value: Any) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in _FAST_KINDS
        and value.dtype.names is None
    )


def _extract(value: Any, buffers: list, metas: list) -> Any:
    if _fast_path(value):
        arr = np.ascontiguousarray(value)
        metas.append((arr.dtype.str, arr.shape))
        buffers.append(arr)
        return _ArrayRef(len(buffers) - 1)
    if isinstance(value, dict):
        return {k: _extract(v, buffers, metas) for k, v in value.items()}
    if isinstance(value, list):
        return [_extract(v, buffers, metas) for v in value]
    if isinstance(value, tuple):
        return tuple(_extract(v, buffers, metas) for v in value)
    return value


def _inflate(value: Any, arrays: list) -> Any:
    if isinstance(value, _ArrayRef):
        return arrays[value.index]
    if isinstance(value, dict):
        return {k: _inflate(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_inflate(v, arrays) for v in value]
    if isinstance(value, tuple):
        return tuple(_inflate(v, arrays) for v in value)
    return value


def encode(value: Any) -> tuple[bytes, list[np.ndarray]]:
    """``value`` as ``(header_bytes, array_frames)``."""
    buffers: list[np.ndarray] = []
    metas: list[tuple[str, tuple]] = []
    skeleton = _extract(value, buffers, metas)
    return closures.dumps((skeleton, metas)), buffers


def decode(header: bytes, arrays: list[np.ndarray]) -> Any:
    """Rebuild the value from a header and its received array frames."""
    skeleton, _metas = closures.loads(header)
    return _inflate(skeleton, arrays)


def send(conn, value: Any) -> None:
    """Write one value to a :class:`multiprocessing.connection.Connection`."""
    header, buffers = encode(value)
    conn.send_bytes(header)
    for arr in buffers:
        if arr.nbytes:
            # Always flatten to a 1-D byte view: send_bytes only casts
            # when itemsize > 1, so a multi-dimensional int8/bool array
            # passed directly would be truncated to its first axis.
            conn.send_bytes(memoryview(arr).cast("B"))


def recv(conn) -> Any:
    """Read one value written by :func:`send` from the paired connection.

    Raises :class:`EOFError` when the writing end has been closed with
    no (complete) value pending — the cross-process analogue of a
    closed channel.
    """
    header = conn.recv_bytes()
    skeleton, metas = closures.loads(header)
    arrays: list[np.ndarray] = []
    for dtype_str, shape in metas:
        arr = np.empty(shape, dtype=np.dtype(dtype_str))
        if arr.nbytes:
            conn.recv_bytes_into(memoryview(arr).cast("B"))
        arrays.append(arr)
    return _inflate(skeleton, arrays)
