"""Message encoding for cross-process channels.

A channel value is shipped as a *header frame* followed by zero or more
*array frames*:

* the header is a pickle of the value's skeleton — the original nested
  dicts/lists/tuples with every eligible NumPy array replaced by an
  :class:`_ArrayRef` placeholder — plus per-array ``(dtype, shape)``
  metadata;
* each array frame is the array's raw buffer, written straight from
  the array's memory (buffer protocol) with **no pickle copy**, and
  received straight into a freshly allocated array with
  ``Connection.recv_bytes_into`` (no intermediate bytes object).

Eligible arrays are unstructured, non-object dtypes supporting the
buffer protocol; everything else rides in the header pickle, which
uses :mod:`repro.dist.closures` so even function-valued payloads (rare,
but legal on in-process channels) survive the crossing.

**Zero-copy shm payloads.**  When a channel carries a payload-staging
*slab* — a shared-memory ring written by a :class:`SlabWriter` and read
by a :class:`SlabReader` — eligible arrays skip the pipe entirely: the
sender copies the array into the slab *at send time* (freezing its
value, which is what keeps the model's single-assignment semantics — a
body may mutate its store right after sending) and the header's meta
becomes a four-tuple ``(dtype, shape, offset, watermark)`` descriptor.
The receiver copies the region out and publishes ``watermark`` through
a shared consumed-counter, releasing slab space back to the writer.
When an array is larger than the slab, or the reader has fallen a full
slab behind, the array falls back to an ordinary pipe frame — the
*copy-on-send fallback* — so slack stays infinite and nothing blocks.

Frame sequences never interleave: channels are single-reader
single-writer and each endpoint performs one send/receive at a time.
FIFO pipe order plus in-order descriptor consumption is what makes the
single consumed-counter sufficient.

**Causal stamps.**  With causal tracing on (see :mod:`repro.obs.causal`)
every value additionally carries its sender's Lamport clock: the header
pickle grows a third element ``(skeleton, metas, clock)`` and slab
descriptor metas a fifth ``(dtype, shape, offset, watermark, clock)``;
:func:`recv_traced` returns ``(value, clock)``, max-merging the stamps
found in the header, the descriptors, and — on clock-aware connections
like :class:`~repro.dist.net.frames.FrameStream` — the frame header
itself.  With tracing off (the default) every byte on the wire is
identical to before: tracing is a pure refinement of the transport.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.dist import closures

__all__ = [
    "send",
    "recv",
    "recv_traced",
    "encode",
    "decode",
    "encoded_frames",
    "send_encoded",
    "SlabWriter",
    "SlabReader",
]

#: dtype kinds eligible for the raw-buffer fast path.
_FAST_KINDS = frozenset("biufcSU")

#: Slab allocations are rounded up to this many bytes so every staged
#: array starts on an aligned offset (safe for any fast-path dtype).
_SLAB_ALIGN = 16


class SlabWriter:
    """Sender half of a channel's payload-staging slab.

    A bump allocator over a shared ring: ``allocated`` is the monotone
    byte watermark of everything ever staged (alignment padding and
    wrap-around skips included); the paired reader publishes its own
    monotone ``consumed`` watermark through a :class:`SharedCounter`.
    Free space is exactly ``size - (allocated - consumed)``, sampled at
    each stage attempt — an over-estimate never happens because the
    reader only ever advances.
    """

    __slots__ = ("_seg", "size", "allocated", "_consumed")

    def __init__(self, name: str, size: int, counter_name: str):
        from repro.dist.shm import SharedCounter

        self._seg = shared_memory.SharedMemory(name=name)
        # Rounding the ring size down to the alignment keeps every
        # offset handed out a multiple of _SLAB_ALIGN, wrap included.
        self.size = max(_SLAB_ALIGN, size // _SLAB_ALIGN * _SLAB_ALIGN)
        self.allocated = 0
        self._consumed = SharedCounter.attach(counter_name)

    def stage(self, arr: np.ndarray) -> tuple[int, int] | None:
        """Copy ``arr`` into the slab; ``(offset, watermark)`` or ``None``.

        ``None`` means no space (array bigger than the slab, or the
        reader too far behind): the caller ships the array as a pipe
        frame instead.
        """
        nbytes = arr.nbytes
        if nbytes == 0 or nbytes > self.size:
            return None
        padded = -(-nbytes // _SLAB_ALIGN) * _SLAB_ALIGN
        alloc = self.allocated
        offset = alloc % self.size
        if offset + padded > self.size:  # would straddle the ring edge
            alloc += self.size - offset
            offset = 0
        watermark = alloc + padded
        if watermark - self._consumed.value > self.size:
            return None
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._seg.buf, offset=offset)[
            ...
        ] = arr
        self.allocated = watermark
        return offset, watermark

    def close(self) -> None:
        try:
            self._seg.close()
        except OSError:
            pass
        self._consumed.close()


class SlabReader:
    """Receiver half of a channel's payload-staging slab."""

    __slots__ = ("_seg", "_consumed")

    def __init__(self, name: str, counter_name: str):
        from repro.dist.shm import SharedCounter

        self._seg = shared_memory.SharedMemory(name=name)
        self._consumed = SharedCounter.attach(counter_name)

    def fetch(
        self, dtype_str: str, shape: tuple, offset: int, watermark: int
    ) -> np.ndarray:
        """Copy one staged array out and release its slab space."""
        out = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=self._seg.buf, offset=offset
        ).copy()
        self._consumed.value = watermark
        return out

    def close(self) -> None:
        try:
            self._seg.close()
        except OSError:
            pass
        self._consumed.close()


class _ArrayRef:
    """Placeholder for the i-th extracted array in a skeleton."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (_ArrayRef, (self.index,))


def _fast_path(value: Any) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in _FAST_KINDS
        and value.dtype.names is None
    )


def _extract(value: Any, buffers: list, metas: list) -> Any:
    if _fast_path(value):
        arr = np.ascontiguousarray(value)
        metas.append((arr.dtype.str, arr.shape))
        buffers.append(arr)
        return _ArrayRef(len(buffers) - 1)
    if isinstance(value, dict):
        return {k: _extract(v, buffers, metas) for k, v in value.items()}
    if isinstance(value, list):
        return [_extract(v, buffers, metas) for v in value]
    if isinstance(value, tuple):
        return tuple(_extract(v, buffers, metas) for v in value)
    return value


def _inflate(value: Any, arrays: list) -> Any:
    if isinstance(value, _ArrayRef):
        return arrays[value.index]
    if isinstance(value, dict):
        return {k: _inflate(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_inflate(v, arrays) for v in value]
    if isinstance(value, tuple):
        return tuple(_inflate(v, arrays) for v in value)
    return value


def encode(
    value: Any, slab: SlabWriter | None = None, clock: int | None = None
) -> tuple[bytes, list[np.ndarray], int]:
    """``value`` as ``(header_bytes, pipe_array_frames, slab_bytes)``.

    With a ``slab``, every eligible array that fits is staged into it
    here — at encode time, in the sender's main thread — and travels as
    a descriptor meta; the returned frames list holds only the arrays
    that fell back to the pipe.  ``slab_bytes`` counts the staged bytes.
    With a ``clock``, the header pickle carries it as a third element
    and slab descriptors as a fifth; ``None`` (tracing off) keeps the
    legacy two-element header byte-for-byte.
    """
    buffers: list[np.ndarray] = []
    metas: list[tuple] = []
    skeleton = _extract(value, buffers, metas)
    if slab is None:
        if clock is None:
            return closures.dumps((skeleton, metas)), buffers, 0
        return closures.dumps((skeleton, metas, clock)), buffers, 0
    pipe_buffers: list[np.ndarray] = []
    out_metas: list[tuple] = []
    slab_bytes = 0
    for arr, meta in zip(buffers, metas):
        staged = slab.stage(arr)
        if staged is None:
            out_metas.append(meta)
            pipe_buffers.append(arr)
        elif clock is None:
            out_metas.append((meta[0], meta[1], staged[0], staged[1]))
            slab_bytes += arr.nbytes
        else:
            out_metas.append((meta[0], meta[1], staged[0], staged[1], clock))
            slab_bytes += arr.nbytes
    if clock is None:
        return closures.dumps((skeleton, out_metas)), pipe_buffers, slab_bytes
    return closures.dumps((skeleton, out_metas, clock)), pipe_buffers, slab_bytes


def decode(header: bytes, arrays: list[np.ndarray]) -> Any:
    """Rebuild the value from a header and its received array frames."""
    skeleton = closures.loads(header)[0]
    return _inflate(skeleton, arrays)


def encoded_frames(
    conn, header: bytes, buffers: list[np.ndarray], clock: int | None = None
) -> list[tuple]:
    """One encoded value as a ``(payload, clock)`` frame list.

    The shape :meth:`FrameStream.send_frames` gathers into a single
    syscall: the header frame first (carrying the causal stamp on
    clock-aware connections), then every non-empty array frame.
    """
    hdr_clock = (
        clock if clock is not None and getattr(conn, "supports_clock", False) else None
    )
    frames: list[tuple] = [(header, hdr_clock)]
    for arr in buffers:
        if arr.nbytes:
            # Always flatten to a 1-D byte view: send_bytes only casts
            # when itemsize > 1, so a multi-dimensional int8/bool array
            # passed directly would be truncated to its first axis.
            frames.append((memoryview(arr).cast("B"), None))
    return frames


def send_encoded(
    conn, header: bytes, buffers: list[np.ndarray], clock: int | None = None
) -> None:
    """Write one pre-encoded value's frames to a connection.

    On vectored connections (``send_frames``, i.e. the TCP framing
    layer) the whole value — header plus every array frame — leaves in
    a single gather syscall; on plain connections each frame is its own
    ``send_bytes`` call.  The bytes on the wire are identical either
    way.

    On clock-aware connections (``supports_clock``) a non-``None``
    clock also rides in the header frame's own length-prefix extension,
    so the stamp survives even transports that never open the header
    pickle.
    """
    send_frames = getattr(conn, "send_frames", None)
    if send_frames is not None:
        send_frames(encoded_frames(conn, header, buffers, clock))
        return
    if clock is not None and getattr(conn, "supports_clock", False):
        conn.send_bytes(header, clock=clock)
    else:
        conn.send_bytes(header)
    for arr in buffers:
        if arr.nbytes:
            # See encoded_frames: flatten to a 1-D byte view.
            conn.send_bytes(memoryview(arr).cast("B"))


def send(conn, value: Any) -> None:
    """Write one value to a :class:`multiprocessing.connection.Connection`."""
    header, buffers, _ = encode(value)
    send_encoded(conn, header, buffers)


def recv(conn, slab: SlabReader | None = None) -> Any:
    """Read one value written by :func:`send` from the paired connection.

    Raises :class:`EOFError` when the writing end has been closed with
    no (complete) value pending — the cross-process analogue of a
    closed channel.  Descriptor metas (present only on slab-equipped
    channels) are resolved through ``slab``; metas must be consumed in
    order, which the SRSW discipline guarantees.
    """
    value, _clock = recv_traced(conn, slab)
    return value


def recv_traced(
    conn, slab: SlabReader | None = None
) -> tuple[Any, int | None]:
    """Like :func:`recv`, but also return the sender's causal stamp.

    The stamp is the max over every place the sender may have put it —
    the connection's frame header (``last_clock`` on clock-aware
    streams), the header pickle's third element, and any slab
    descriptor's fifth — or ``None`` when the message carried no stamp
    (tracing off at the sender).
    """
    header = conn.recv_bytes()
    clock: int | None = getattr(conn, "last_clock", None)
    if clock is not None:
        conn.last_clock = None  # consumed: one stamp per message
    loaded = closures.loads(header)
    skeleton, metas = loaded[0], loaded[1]
    if len(loaded) > 2 and loaded[2] is not None:
        clock = loaded[2] if clock is None else max(clock, loaded[2])
    arrays: list[np.ndarray] = []
    for meta in metas:
        if len(meta) >= 4:
            arrays.append(slab.fetch(*meta[:4]))
            if len(meta) > 4 and meta[4] is not None:
                clock = meta[4] if clock is None else max(clock, meta[4])
            continue
        dtype_str, shape = meta
        arr = np.empty(shape, dtype=np.dtype(dtype_str))
        if arr.nbytes:
            conn.recv_bytes_into(memoryview(arr).cast("B"))
        arrays.append(arr)
    return _inflate(skeleton, arrays), clock
