"""Persistent worker pool: boot OS processes once, dispatch many runs.

The one-shot :class:`~repro.dist.engine.MultiprocessEngine` pays for a
full process boot (interpreter, imports, shm attach) on every ``run``.
A :class:`WorkerPool` keeps a set of long-lived worker processes parked
on a *control pipe*; each engine run ships per-run jobs — body, store
plan, channel endpoints, a fresh result pipe — down that pipe and the
workers execute :func:`repro.dist.worker.run_job` exactly as a one-shot
worker would, then park again.  The result-pipe protocol (ready / go /
done / error) is unchanged, so the engine's collection loop, barrier
timing, and crash reaping all work identically; only process boot is
amortized.

Mechanics worth noting:

* **Live pipe handles cross a live pipe.**  Job payloads are sent with
  plain ``Connection.send`` — multiprocessing's ``ForkingPickler``
  reduces each embedded ``Connection`` by duplicating its fd at pickle
  time and handing it over through the resource sharer, under both
  ``fork`` and ``spawn`` contexts — so the parent can close its copies
  immediately after dispatch and EOF semantics stay exact.  Bodies and
  store remainders are pre-pickled with :mod:`repro.dist.closures`
  (pool workers outlive the fork point, so even under ``fork`` bodies
  created later must cross by value).
* **Crash containment.**  A worker that dies mid-job is detected by the
  engine via its process sentinel, exactly as in one-shot mode; the
  engine then calls :meth:`WorkerPool.reap` so the dead slot is
  discarded and the next :meth:`ensure` respawns a replacement.  A body
  that merely *raises* reports an error frame and parks again — the
  worker survives.
* **Segment recycling.**  The pool owns a persistent
  :class:`~repro.dist.shm.SharedStoreArena`; between runs the engine
  calls ``arena.recycle()`` so same-shape grids reuse their segments.
  :meth:`shutdown` unlinks everything — the pool holds the only
  parent-side ownership, and the no-leak tests assert emptiness after.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any

from repro.dist.shm import SharedStoreArena
from repro.dist.worker import run_job

__all__ = ["WorkerPool", "pool_worker_main"]


def pool_worker_main(slot: int, ctrl) -> None:
    """Long-lived worker loop: park on the control pipe, run jobs."""
    try:
        while True:
            try:
                msg = ctrl.recv()
            except (EOFError, OSError):
                break  # pool parent went away: exit quietly
            if msg[0] == "stop":
                break
            if msg[0] != "job":  # unknown frame: ignore, keep parking
                continue
            job = msg[1]
            result_conn = job["result_conn"]
            try:
                run_job(
                    job["rank"],
                    job["name"],
                    job["nprocs"],
                    result_conn,
                    job["body"],
                    job["plan"],
                    job["rest"],
                    job["w_specs"],
                    job["r_specs"],
                    job["recv_timeout"],
                    job["observe"],
                    job["affinity"],
                )
            finally:
                try:
                    result_conn.close()
                except OSError:
                    pass
    finally:
        try:
            ctrl.close()
        except OSError:
            pass


@dataclass
class _Slot:
    proc: Any
    conn: Any  # parent end of the control pipe


class WorkerPool:
    """A reusable set of parked worker processes plus their arena.

    Usable as a context manager; :meth:`shutdown` is idempotent.  One
    pool serves one engine at a time (slots are assigned to ranks by
    position), but many consecutive runs — of different systems and
    sizes — reuse it: :meth:`ensure` grows the pool on demand and
    respawns any worker that died.
    """

    def __init__(self, start_method: str = "fork"):
        if start_method not in ("spawn", "fork"):
            raise ValueError(f"unsupported start method {start_method!r}")
        self.start_method = start_method
        self.ctx = multiprocessing.get_context(start_method)
        self.arena = SharedStoreArena()
        self._slots: list[_Slot] = []
        self._closed = False
        self.spawned = 0  # total workers ever started (tests/bench)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __len__(self) -> int:
        return len(self._slots)

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self) -> _Slot:
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=pool_worker_main,
            name=f"repro-pool-{self.spawned}",
            args=(self.spawned, child),
            daemon=True,
        )
        proc.start()
        child.close()
        self.spawned += 1
        return _Slot(proc, parent)

    def reap(self) -> int:
        """Drop dead workers; returns how many were discarded."""
        dead = [s for s in self._slots if not s.proc.is_alive()]
        for slot in dead:
            slot.proc.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots = [s for s in self._slots if s.proc.is_alive()]
        return len(dead)

    def ensure(self, n: int) -> list[_Slot]:
        """At least ``n`` live workers; returns the first ``n`` slots."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        self.reap()
        while len(self._slots) < n:
            self._slots.append(self._spawn())
        return self._slots[:n]

    def dispatch(self, slot: _Slot, job: dict[str, Any]) -> None:
        """Ship one run's job to a parked worker (plain pickle: the
        embedded Connections must go through ForkingPickler)."""
        slot.conn.send(("job", job))

    def shutdown(self) -> None:
        """Stop every worker and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots:
            slot.proc.join(timeout=5.0)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots.clear()
        self.arena.cleanup()
