"""Persistent worker pool: boot OS processes once, dispatch many runs.

The one-shot :class:`~repro.dist.engine.MultiprocessEngine` pays for a
full process boot (interpreter, imports, shm attach) on every ``run``.
A :class:`WorkerPool` keeps a set of long-lived worker processes parked
on a *control pipe*; each engine run ships per-run jobs — body, store
plan, channel endpoints, a fresh result pipe — down that pipe and the
workers execute :func:`repro.dist.worker.run_job` exactly as a one-shot
worker would, then park again.  The result-pipe protocol (ready / go /
done / error) is unchanged, so the engine's collection loop, barrier
timing, and crash reaping all work identically; only process boot is
amortized.

Mechanics worth noting:

* **Live pipe handles cross a live pipe.**  Job payloads are sent with
  plain ``Connection.send`` — multiprocessing's ``ForkingPickler``
  reduces each embedded ``Connection`` by duplicating its fd at pickle
  time and handing it over through the resource sharer, under both
  ``fork`` and ``spawn`` contexts — so the parent can close its copies
  immediately after dispatch and EOF semantics stay exact.  Bodies and
  store remainders are pre-pickled with :mod:`repro.dist.closures`
  (pool workers outlive the fork point, so even under ``fork`` bodies
  created later must cross by value).
* **Crash containment.**  A worker that dies mid-job is detected by the
  engine via its process sentinel, exactly as in one-shot mode; the
  engine then calls :meth:`WorkerPool.reap` so the dead slot is
  discarded and the next :meth:`ensure` respawns a replacement.  A body
  that merely *raises* reports an error frame and parks again — the
  worker survives.
* **Segment recycling.**  The pool owns a persistent
  :class:`~repro.dist.shm.SharedStoreArena`; between runs the engine
  calls ``arena.recycle()`` so same-shape grids reuse their segments.
  :meth:`shutdown` unlinks everything — the pool holds the only
  parent-side ownership, and the no-leak tests assert emptiness after.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from typing import Any

from repro.dist.shm import SharedStoreArena
from repro.dist.worker import run_job

__all__ = ["WorkerPool", "pool_worker_main"]


def pool_worker_main(slot: int, ctrl) -> None:
    """Long-lived worker loop: park on the control pipe, run jobs."""
    try:
        while True:
            try:
                msg = ctrl.recv()
            except (EOFError, OSError):
                break  # pool parent went away: exit quietly
            if msg[0] == "stop":
                break
            if msg[0] != "job":  # unknown frame: ignore, keep parking
                continue
            job = msg[1]
            result_conn = job["result_conn"]
            try:
                run_job(
                    job["rank"],
                    job["name"],
                    job["nprocs"],
                    result_conn,
                    job["body"],
                    job["plan"],
                    job["rest"],
                    job["w_specs"],
                    job["r_specs"],
                    job["recv_timeout"],
                    job["observe"],
                    job["affinity"],
                    job.get("trace_causal", False),
                )
            finally:
                try:
                    result_conn.close()
                except OSError:
                    pass
    finally:
        try:
            ctrl.close()
        except OSError:
            pass


@dataclass
class _Slot:
    proc: Any
    conn: Any  # parent end of the control pipe


class WorkerPool:
    """A reusable set of parked worker processes plus their arena.

    Usable as a context manager; :meth:`shutdown` is idempotent.  One
    pool serves one engine at a time through :meth:`ensure` (slots are
    assigned to ranks by position), but many consecutive runs — of
    different systems and sizes — reuse it: :meth:`ensure` grows the
    pool on demand and respawns any worker that died.

    The serving layer instead borrows slots with :meth:`checkout` /
    :meth:`checkin`, which are safe to call from multiple threads and
    concurrently with :meth:`shutdown`: every mutation of the slot
    lists happens under one lock, borrowed slots are tracked so a
    shutdown racing a job terminates them too (a parked worker gets a
    polite ``stop``; a borrowed one is mid-job and is terminated), and
    a checkin after shutdown stops the returned workers instead of
    re-parking them.
    """

    def __init__(self, start_method: str = "fork"):
        if start_method not in ("spawn", "fork"):
            raise ValueError(f"unsupported start method {start_method!r}")
        self.start_method = start_method
        self.ctx = multiprocessing.get_context(start_method)
        self.arena = SharedStoreArena()
        self._slots: list[_Slot] = []
        self._lent: list[_Slot] = []
        self._lock = threading.RLock()
        self._closed = False
        self.spawned = 0  # total workers ever started (tests/bench)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots) + len(self._lent)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self) -> _Slot:
        # Workers must inherit the parent's resource tracker.  A worker
        # forked before the tracker exists (no shared segment created
        # yet — e.g. a pre-sized serving pool) would lazily boot its
        # own private tracker on first attach; its registrations then
        # never see the parent's unlinks, and that orphan tracker
        # "cleans up" already-unlinked segments at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=pool_worker_main,
            name=f"repro-pool-{self.spawned}",
            args=(self.spawned, child),
            daemon=True,
        )
        proc.start()
        child.close()
        self.spawned += 1
        return _Slot(proc, parent)

    @staticmethod
    def _discard(slot: _Slot) -> None:
        slot.proc.join(timeout=1.0)
        if slot.proc.is_alive():
            slot.proc.terminate()
            slot.proc.join(timeout=1.0)
        try:
            slot.conn.close()
        except OSError:
            pass

    def reap(self) -> int:
        """Drop dead *parked* workers; returns how many were discarded.

        Borrowed slots are never reaped here — the job that borrowed
        them detects the crash (process sentinel) and returns them via
        :meth:`checkin`, which discards the dead.
        """
        with self._lock:
            dead = [s for s in self._slots if not s.proc.is_alive()]
            self._slots = [s for s in self._slots if s.proc.is_alive()]
        for slot in dead:
            self._discard(slot)
        return len(dead)

    def ensure(self, n: int) -> list[_Slot]:
        """At least ``n`` live parked workers; returns the first ``n``.

        Whole-run engine path: the caller uses the slots and leaves
        them parked (no checkin).  Do not mix with a concurrent
        :meth:`checkout` on the same pool — use one or the other.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            self.reap()
            while len(self._slots) < n:
                self._slots.append(self._spawn())
            return self._slots[:n]

    def checkout(self, n: int) -> list[_Slot]:
        """Borrow ``n`` live workers exclusively (serving path).

        The returned slots are removed from the parked list until
        :meth:`checkin`; concurrent checkouts never share a slot.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            self.reap()
            while len(self._slots) < n:
                self._slots.append(self._spawn())
            taken = self._slots[:n]
            del self._slots[:n]
            self._lent.extend(taken)
            return taken

    def checkin(self, slots: list[_Slot]) -> None:
        """Return borrowed slots: live ones park again, dead ones are
        discarded.  After :meth:`shutdown` the returned workers are
        stopped instead — never re-parked on a closed pool."""
        with self._lock:
            for slot in slots:
                if slot in self._lent:
                    self._lent.remove(slot)
            if self._closed:
                doomed, parked = list(slots), []
            else:
                doomed = [s for s in slots if not s.proc.is_alive()]
                parked = [s for s in slots if s.proc.is_alive()]
                self._slots.extend(parked)
        for slot in doomed:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._discard(slot)

    def dispatch(self, slot: _Slot, job: dict[str, Any]) -> None:
        """Ship one run's job to a parked worker (plain pickle: the
        embedded Connections must go through ForkingPickler)."""
        slot.conn.send(("job", job))

    def shutdown(self) -> None:
        """Stop every worker and unlink every shared segment.

        Idempotent and safe while jobs are in flight: parked workers
        get a ``stop`` frame; borrowed (mid-job) workers are terminated
        outright — their parent-side collector sees the sentinel and
        fails that job, exactly like a crash.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            parked = list(self._slots)
            lent = list(self._lent)
            self._slots.clear()
            self._lent.clear()
        for slot in parked:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in lent:
            slot.proc.terminate()
        for slot in parked + lent:
            slot.proc.join(timeout=5.0)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self.arena.cleanup()
