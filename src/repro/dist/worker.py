"""What runs inside each worker OS process.

:func:`worker_main` is the target of every one-shot
``multiprocessing.Process`` the engine spawns; :func:`run_job` is the
engine-facing core it shares with the persistent pool workers of
:mod:`repro.dist.pool`.  A job rebuilds one rank's world — store
(attached to the parent's shared segments), channel endpoints, context,
optional observer — runs the unmodified process body, and reports back
over a dedicated duplex result pipe.

Result-pipe protocol (all frames via :mod:`repro.dist.wire`):

* worker → parent ``("ready", rank)`` once fully constructed;
* parent → worker ``("go",)`` — the start barrier, so engine timing
  can separate process startup from the run proper — or ``("abort",)``
  to unwind without running (a sibling failed during startup);
* worker → parent ``("done", rank, payload)`` with the body's return
  value, store overrides (entries not backed by shared memory, see
  :func:`repro.dist.shm.flush_store`), per-endpoint channel statistics,
  and the observation payload when observing;
* worker → parent ``("error", rank, exc_info)`` when the body raised.

Whatever happens, the ``finally`` block closes the rank's write
endpoints — flushing queued values and signalling EOF downstream, the
cross-process analogue of the threaded engine's close-wakes-readers
cascade — and detaches from shared memory.  A hard crash (the process
dying without reporting) closes every fd anyway; the parent notices via
the process sentinel.
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from repro.dist import closures, wire
from repro.dist.channels import EndpointSpec, ProcChannel
from repro.dist.shm import attach_store, close_handles, flush_store
from repro.errors import TransportError
from repro.runtime.context import ProcessContext

__all__ = ["worker_main", "run_job", "apply_affinity", "report_error"]


def _open_channel(spec) -> ProcChannel:
    """Build the channel endpoint a spec describes.

    Pipe specs (:class:`~repro.dist.channels.EndpointSpec`) are the
    default; specs tagged ``transport="socket"`` come from the network
    engine and get a :class:`~repro.dist.net.transport.SocketChannel`.
    The import is lazy so pipe-only runs never load the net package.
    """
    if getattr(spec, "transport", "pipe") == "socket":
        from repro.dist.net.transport import SocketChannel

        return SocketChannel(spec)
    return ProcChannel(spec)


class _ProcExecutor:
    """Immediate-execution executor for one worker process.

    Like the threaded executor minus total-order tracing (a global
    trace needs a global observation order, which separate address
    spaces do not have); *causal* tracing needs only the local
    Lamport clock, so a :class:`~repro.obs.causal.CausalRecorder` can
    be attached — sends/receives tick it through the channels, local
    steps through :meth:`exec_step`.  With an observer attached,
    blocked-receive intervals are timed exactly as the threaded
    engine times them.
    """

    def __init__(self, recv_timeout: float | None, observer=None, causal=None):
        self._recv_timeout = recv_timeout
        self._obs = observer
        self._causal = causal

    def exec_send(self, rank: int, channel: ProcChannel, value: Any) -> None:
        channel.send(value, rank=rank)

    def exec_recv(self, rank: int, channel: ProcChannel) -> Any:
        if self._obs is not None:
            t0 = self._obs.clock()
            value = channel.recv(rank=rank, timeout=self._recv_timeout)
            self._obs.recv_blocked(rank, channel.name, t0, self._obs.clock())
            return value
        return channel.recv(rank=rank, timeout=self._recv_timeout)

    def exec_step(self, rank: int, label: str) -> None:
        if self._causal is not None:
            self._causal.on_step(label)


def apply_affinity(cpus) -> None:
    """Pin the calling process to ``cpus`` (best effort, Linux only)."""
    if not cpus or not hasattr(os, "sched_setaffinity"):
        return
    try:
        os.sched_setaffinity(0, cpus)
    except OSError:
        pass  # cpu set not permitted/offline: run unpinned


def _unpack(payload: tuple[str, Any]) -> Any:
    kind, data = payload
    return closures.loads(data) if kind == "pickle" else data


def _exc_info(exc: BaseException) -> tuple[str, Any, str]:
    """A best-effort shippable form of a worker exception."""
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        return ("pickle", closures.dumps(exc), tb)
    except Exception:
        return ("repr", f"{type(exc).__name__}: {exc}", tb)


def _wire_metrics(observer, channels) -> None:
    """Fold this rank's pipe/slab traffic into the observer's registry.

    Merged across workers by summing (``merge_worker_observations``),
    so the report carries run-total wire counters next to the modelled
    message counts.
    """
    frames = pipe_bytes = shm_bytes = net_frames = net_bytes = 0
    net_syscalls = net_unvectored = net_vectored = 0
    for ch in channels:
        if getattr(ch, "transport", "pipe") == "socket":
            net_frames += ch.frames
            net_bytes += ch.pipe_bytes
            net_syscalls += ch.net_syscalls
            net_unvectored += ch.net_syscalls_unvectored
            net_vectored += ch.net_vectored
        else:
            frames += ch.frames
            pipe_bytes += ch.pipe_bytes
            shm_bytes += ch.shm_bytes
    registry = observer.registry
    registry.counter("wire/frames").inc(frames)
    registry.counter("wire/pipe_bytes").inc(pipe_bytes)
    registry.counter("wire/shm_bytes").inc(shm_bytes)
    if net_frames or net_bytes:
        registry.counter("wire/net_frames").inc(net_frames)
        registry.counter("wire/net_bytes").inc(net_bytes)
    if net_syscalls:
        registry.counter("wire/net_syscalls").inc(net_syscalls)
        registry.counter("wire/net_syscalls_unvectored").inc(net_unvectored)
        registry.counter("wire/net_vectored").inc(net_vectored)


def run_job(
    rank: int,
    name: str,
    nprocs: int,
    result_conn,
    body_payload: tuple[str, Any],
    plan: dict[str, tuple],
    rest_payload: tuple[str, Any],
    w_specs: list[EndpointSpec],
    r_specs: list[EndpointSpec],
    recv_timeout: float | None,
    observe: bool,
    affinity=None,
    trace_causal: bool = False,
) -> None:
    """Execute one dispatched rank: build, barrier, run body, report.

    Never raises: failures are shipped to the parent as ``("error", …)``
    frames.  Does **not** close ``result_conn`` — one-shot workers close
    it on exit, pool workers close it per job.
    """
    out: dict[str, ProcChannel] = {}
    inc: dict[str, ProcChannel] = {}
    handles: dict[str, tuple] = {}
    try:
        apply_affinity(affinity)
        body = _unpack(body_payload)
        rest = _unpack(rest_payload)
        store, handles = attach_store(plan, rest)
        out = {spec.name: _open_channel(spec) for spec in w_specs}
        inc = {spec.name: _open_channel(spec) for spec in r_specs}

        observer = None
        if observe:
            from repro.obs.observer import Observer

            observer = Observer()

        recorder = None
        if trace_causal:
            from repro.obs.causal import CausalRecorder

            recorder = CausalRecorder(rank)
            for ch in (*out.values(), *inc.values()):
                ch.causal = recorder

        executor = _ProcExecutor(recv_timeout, observer, recorder)
        ctx = ProcessContext(
            rank=rank,
            nprocs=nprocs,
            store=store,
            out_channels=out,
            in_channels=inc,
            executor=executor,
            name=name,
            observer=observer,
        )

        wire.send(result_conn, ("ready", rank))
        msg = wire.recv(result_conn)
        if msg[0] != "go":
            return

        if observer is not None:
            observer.process_started(rank, name)
        try:
            ret = body(ctx)
        finally:
            if observer is not None:
                observer.process_finished(rank)
            # Flush-and-close before reporting: once the parent sees
            # "done", every value this rank sent is in its pipe.
            for ch in out.values():
                ch.close()

        overrides = flush_store(store, handles)
        stats = {ch.name: ch.stats() for ch in (*out.values(), *inc.values())}
        obs_payload = None
        if observer is not None:
            from repro.obs.report import worker_observation

            _wire_metrics(observer, out.values())
            obs_payload = worker_observation(observer)

        wire.send(
            result_conn,
            (
                "done",
                rank,
                {
                    "return": ret,
                    "overrides": overrides,
                    "stats": stats,
                    "obs": obs_payload,
                    "causal": recorder.payload() if recorder else None,
                },
            ),
        )
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        report_error(result_conn, rank, exc)
    finally:
        for ch in out.values():
            ch.close()
        for ch in inc.values():
            ch.close()
        close_handles(handles)


def worker_main(
    rank: int,
    name: str,
    nprocs: int,
    result_conn,
    body_payload: tuple[str, Any],
    plan: dict[str, tuple],
    rest_payload: tuple[str, Any],
    w_specs: list[EndpointSpec],
    r_specs: list[EndpointSpec],
    recv_timeout: float | None,
    observe: bool,
    foreign_conns,
    affinity=None,
    trace_causal: bool = False,
) -> None:
    # Under fork every child inherits every pipe fd; dropping the ends
    # this rank does not own restores spawn's EOF semantics (a writer's
    # death must surface as EOF at its reader, not as a silent hang).
    if foreign_conns:
        for conn in foreign_conns:
            try:
                conn.close()
            except OSError:
                pass
    try:
        run_job(
            rank,
            name,
            nprocs,
            result_conn,
            body_payload,
            plan,
            rest_payload,
            w_specs,
            r_specs,
            recv_timeout,
            observe,
            affinity,
            trace_causal,
        )
    finally:
        try:
            result_conn.close()
        except OSError:
            pass


def report_error(result_conn, rank: int, exc: BaseException) -> None:
    """Ship ``exc`` to the coordinator as this rank's ``("error", …)``
    frame (shared with the worker daemon, which reports rendezvous
    failures before :func:`run_job` ever starts)."""
    try:
        wire.send(result_conn, ("error", rank, _exc_info(exc)))
    except OSError:
        pass
    except TransportError:
        pass
