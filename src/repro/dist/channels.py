"""SRSW channels over OS pipes, with the model's infinite slack intact.

A cross-process channel is one OS pipe (``multiprocessing.Pipe``,
non-duplex): the writer rank holds the send end, the reader rank holds
the receive end, and values cross via :mod:`repro.dist.wire` frames.

The one place a pipe *cannot* imitate the paper's channel directly is
slack: a pipe has finite kernel capacity (~64 KiB on Linux), so a raw
``send`` would block once the reader falls that far behind — and a
balanced exchange pattern that is deadlock-free in the model could then
deadlock in practice.  :class:`ProcChannel` therefore never writes the
pipe from the sending process's main thread.  Sends append to an
unbounded in-process queue — exactly the semantics of
:class:`repro.runtime.channel.Channel` — and a per-channel *feeder
thread* (started lazily on first send) drains that queue into the pipe,
blocking on kernel backpressure where the main thread must not.  That
queue-plus-feeder core is shared with the TCP transport as
:class:`repro.dist.net.feeder.SendFeeder`.

Close/EOF mirrors the threaded engine's cascade: a writer closes its
channels when its body finishes (or its process dies, which closes the
fd either way); the reader's next receive on the emptied pipe raises
:class:`~repro.errors.EmptyChannelError` instead of hanging.

Statistics parity: ``sends``/``receives``/``bytes_sent`` are exact.
``queue_hwm`` is necessarily an estimate — occupancy is distributed
between the local queue, the pipe, and the reader — computed as
``sends - receiver's receive counter`` (a :class:`~repro.dist.shm.SharedCounter`)
sampled at each send, which bounds true occupancy from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dist import wire
from repro.dist.net.feeder import SendFeeder
from repro.dist.shm import SharedCounter
from repro.errors import ChannelError, ChannelOwnershipError, EmptyChannelError
from repro.util import payload_nbytes

__all__ = ["EndpointSpec", "ProcChannel"]


@dataclass
class EndpointSpec:
    """One rank's end of one cross-process channel.

    Shippable to a worker inside ``Process`` args (the ``conn`` handle
    is duplicated across the boundary by multiprocessing's reduction).
    ``counter_name`` names the shared receive counter, or ``""`` when
    high-water-mark tracking is off.  ``slab_name``/``slab_size``/
    ``slab_counter`` describe the channel's payload-staging slab (see
    :class:`repro.dist.wire.SlabWriter`), or are empty/zero when array
    payloads always ride the pipe.
    """

    name: str
    writer: int
    reader: int
    role: str  # "w" | "r"
    conn: Any
    counter_name: str = ""
    slab_name: str = ""
    slab_size: int = 0
    slab_counter: str = ""


class ProcChannel:
    """One endpoint of a cross-process SRSW channel.

    Duck-types the :class:`repro.runtime.channel.Channel` operations a
    process body (or the layers above: communicator, collectives,
    mechanically transformed programs) can reach through its
    :class:`~repro.runtime.context.ProcessContext`.  Unlike ``Channel``,
    an instance lives in *one* process and serves *one* role — the
    other end is a different ``ProcChannel`` in a different process.
    """

    #: Which wire this channel type speaks (obs counters key off this).
    transport = "pipe"

    __slots__ = (
        "spec",
        "_conn",
        "_counter",
        "_slab_w",
        "_slab_r",
        "_feeder",
        "_closed",
        "sends",
        "receives",
        "bytes_sent",
        "queue_hwm",
        "frames",
        "pipe_bytes",
        "shm_bytes",
        "causal",
    )

    def __init__(self, spec: EndpointSpec):
        self.spec = spec
        self._conn = spec.conn
        self._counter = (
            SharedCounter.attach(spec.counter_name) if spec.counter_name else None
        )
        self._slab_w = self._slab_r = None
        if spec.slab_name:
            if spec.role == "w":
                self._slab_w = wire.SlabWriter(
                    spec.slab_name, spec.slab_size, spec.slab_counter
                )
            else:
                self._slab_r = wire.SlabReader(spec.slab_name, spec.slab_counter)
        self._feeder = SendFeeder(
            spec.name,
            self._write_frames,
            self._end_stream,
            write_many=self._batch_writer(),
        )
        self._closed = False
        self.sends = 0
        self.receives = 0
        self.bytes_sent = 0
        self.queue_hwm = 0
        self.frames = 0  # pipe frames written (header + inline arrays)
        self.pipe_bytes = 0  # bytes actually crossing the pipe
        self.shm_bytes = 0  # payload bytes staged through the slab
        #: Optional :class:`~repro.obs.causal.CausalRecorder` attached by
        #: the worker when causal tracing is on; sends then stamp the
        #: wire and receives max-merge the delivered stamp.  Recording
        #: never alters what crosses the channel (pure refinement).
        self.causal = None

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def writer(self) -> int:
        return self.spec.writer

    @property
    def reader(self) -> int:
        return self.spec.reader

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcChannel({self.name!r}, {self.writer}->{self.reader}, "
            f"role={self.spec.role!r})"
        )

    # -- write side --------------------------------------------------------

    def _batch_writer(self):
        """The feeder's optional coalescing drain, or ``None``.

        Pipes gain nothing from batching (each frame is its own
        ``Connection.send_bytes`` either way), so the base class opts
        out; the socket transport overrides this to flush several
        queued values as one vectored write.
        """
        return None

    def _write_frames(self, item: tuple) -> None:
        """Feeder-thread write: one encoded value's frames to the pipe.

        Kernel backpressure blocks *here*, never in the sending body; a
        reader that exits early breaks the pipe and the feeder discards
        the undeliverable remainder.
        """
        header, buffers, clock = item
        wire.send_encoded(self._conn, header, buffers, clock)

    def _end_stream(self) -> None:
        """Feeder finisher: drop the write end so the reader sees EOF."""
        self._conn.close()

    def send(self, value: Any, *, rank: int) -> int:
        """Append ``value``; returns this send's 0-based sequence number.

        Never blocks (infinite slack): the value is encoded here — so
        slab staging freezes array payloads at send time, preserving
        single-assignment semantics — then the header and any fallback
        pipe frames land on the local unbounded queue, and the feeder
        thread owns the actual pipe write.
        """
        if rank != self.writer:
            raise ChannelOwnershipError(
                f"rank {rank} sent on channel {self.name!r} "
                f"owned by writer {self.writer}"
            )
        if self._closed:
            raise ChannelError(
                f"send on closed channel {self.name!r} (writer already "
                "finished once; a channel is closed exactly when its "
                "writer terminates)"
            )
        seq = self.sends
        clock = None
        if self.causal is not None:
            clock = self.causal.on_send(self.name, seq)
        header, buffers, slab_bytes = wire.encode(value, self._slab_w, clock)
        self._feeder.put((header, buffers, clock))
        self.sends += 1
        self.bytes_sent += payload_nbytes(value)
        self.frames += 1 + sum(1 for a in buffers if a.nbytes)
        self.pipe_bytes += len(header) + sum(a.nbytes for a in buffers)
        self.shm_bytes += slab_bytes
        if self._counter is not None:
            depth = self.sends - self._counter.value
            if depth > self.queue_hwm:
                self.queue_hwm = depth
        return seq

    def close(self) -> None:
        """Flush queued values and close the write end (EOF downstream).

        Reader-side close just drops the receive end.  Idempotent —
        including concurrently: the feeder's own lock ensures the flush
        and fd close happen exactly once no matter how many times (or
        from how many threads) close is called.
        """
        if self._closed:
            return
        self._closed = True
        if self.spec.role == "w":
            # Waits for the flush; a dead reader breaks the pipe rather
            # than blocking the join forever.
            self._feeder.close()
        else:
            try:
                self._conn.close()
            except OSError:
                pass
        if self._counter is not None:
            self._counter.close()
        if self._slab_w is not None:
            self._slab_w.close()
        if self._slab_r is not None:
            self._slab_r.close()

    # -- read side ---------------------------------------------------------

    def _count_receive(self) -> None:
        self.receives += 1
        if self._counter is not None:
            self._counter.value = self.receives

    def _recv_value(self) -> Any:
        """One value off the wire, plus receive/causal accounting."""
        if self.causal is not None:
            value, stamp = wire.recv_traced(self._conn, self._slab_r)
            self._count_receive()
            self.causal.on_recv(self.name, self.receives - 1, stamp)
            return value
        value = wire.recv(self._conn, self._slab_r)
        self._count_receive()
        return value

    def recv(self, *, rank: int, timeout: float | None = None) -> Any:
        """Blocking receive; mirrors ``Channel.recv`` failure modes."""
        if rank != self.reader:
            raise ChannelOwnershipError(
                f"rank {rank} received on channel {self.name!r} "
                f"owned by reader {self.reader}"
            )
        if timeout is not None and not self._conn.poll(timeout):
            raise EmptyChannelError(
                f"receive on channel {self.name!r} timed out after "
                f"{timeout}s (likely deadlock)"
            )
        try:
            return self._recv_value()
        except EOFError:
            raise EmptyChannelError(
                f"receive on channel {self.name!r}: writer "
                f"{self.writer} terminated with the channel empty"
            ) from None

    def recv_nowait(self, *, rank: int) -> Any:
        """Non-blocking receive (cooperative-engine parity)."""
        if rank != self.reader:
            raise ChannelOwnershipError(
                f"rank {rank} received on channel {self.name!r} "
                f"owned by reader {self.reader}"
            )
        if not self._conn.poll(0):
            raise EmptyChannelError(
                f"receive on empty channel {self.name!r}"
            )
        try:
            return self._recv_value()
        except EOFError:
            raise EmptyChannelError(
                f"receive on channel {self.name!r}: writer "
                f"{self.writer} terminated with the channel empty"
            ) from None

    def poll(self) -> bool:
        """True iff a receive would find data (or pending EOF) now."""
        try:
            return self._conn.poll(0)
        except OSError:
            return False

    # -- stats handoff -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """This endpoint's contribution to the merged channel stats."""
        if self.spec.role == "w":
            return {
                "sends": self.sends,
                "bytes_sent": self.bytes_sent,
                "queue_hwm": self.queue_hwm,
                "frames": self.frames,
                "pipe_bytes": self.pipe_bytes,
                "shm_bytes": self.shm_bytes,
            }
        return {"receives": self.receives}
