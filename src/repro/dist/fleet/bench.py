"""``python -m repro fleet-bench`` — multi-host serving benchmark.

Measures the :class:`~repro.dist.fleet.FleetScheduler` the way a
capacity planner would read it: for each fleet size (``--daemons
1,2,3`` loopback daemons, or one externally provided fleet via
``--hosts``), a closed-loop row calibrates the fleet's sustainable
throughput, then open-loop rows offer load at fixed multiples of it
(``--rates 0.5,1.0,2.0``) with ``on_full="reject"`` — recording
accepted/rejected counts and accepted-job latency p50/p99.  The
resulting matrix — offered load vs latency percentiles vs daemon count
— is the serving story's scaling picture: where each fleet size
saturates, and what admission control sheds past that point.

Every job's result is checked bitwise against the sequential seed
(Theorem 1 across the whole fleet path: placement, TCP transport, and
any retry that happened mid-bench), enforced everywhere; throughput
scaling across fleet sizes is recorded always but only *enforced* on
multi-core hosts, where daemons actually run in parallel.

Rows merge into ``benchmarks/BENCH_serve.json`` under a ``"fleet"``
key, preserving the single-host serve-bench content already there.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["run_fleet_bench"]

#: (grid shape, steps, process grid): many small Version-A jobs, same
#: workload family as serve-bench so the rows are comparable.
FLEET_FULL_CASE = ((13, 13, 13), 3, (2, 1, 1))
FLEET_SMOKE_CASE = ((9, 9, 9), 2, (2, 1, 1))


def _wire_totals(run_results) -> dict[str, int]:
    """Fleet-wide socket data-plane accounting, summed over a row's
    jobs: frames and bytes on the TCP streams, vectored-send syscall
    counters, and the deepest feeder coalescing window seen by any
    channel of any job (a high-water mark, so max not sum)."""
    totals = {
        "net_frames": 0,
        "net_bytes": 0,
        "net_syscalls": 0,
        "net_syscalls_unvectored": 0,
        "net_vectored": 0,
        "coalesce_hwm": 0,
    }
    for r in run_results:
        totals["net_frames"] += sum(
            getattr(r, "channel_frames", {}).values()
        )
        totals["net_bytes"] += sum(
            getattr(r, "channel_pipe_bytes", {}).values()
        )
        totals["net_syscalls"] += sum(
            getattr(r, "channel_net_syscalls", {}).values()
        )
        totals["net_syscalls_unvectored"] += sum(
            getattr(r, "channel_net_syscalls_unvectored", {}).values()
        )
        totals["net_vectored"] += sum(
            getattr(r, "channel_net_vectored", {}).values()
        )
        totals["coalesce_hwm"] = max(
            totals["coalesce_hwm"],
            max(
                getattr(r, "channel_coalesce_hwm", {}).values(), default=0
            ),
        )
    return totals


def _percentiles(latencies: list[float]) -> dict[str, float]:
    from repro.dist.serving import percentile

    lat = sorted(latencies) or [0.0]
    return {
        "latency_p50_s": round(percentile(lat, 0.50), 6),
        "latency_p99_s": round(percentile(lat, 0.99), 6),
    }


def run_fleet_bench(args: list[str], out=print) -> bool:
    """Run the fleet harness; returns False on any check failure."""
    smoke = False
    jobs = 16
    capacity = 4
    daemon_counts = [1, 2, 3]
    rates = [0.5, 1.0, 2.0]
    hosts = None
    out_path = Path("benchmarks") / "BENCH_serve.json"
    rest = list(args)
    while rest:
        flag = rest.pop(0)
        if flag == "--smoke":
            smoke = True
        elif flag == "--jobs" and rest:
            jobs = int(rest.pop(0))
        elif flag == "--capacity" and rest:
            capacity = int(rest.pop(0))
        elif flag == "--daemons" and rest:
            daemon_counts = [int(n) for n in rest.pop(0).split(",")]
        elif flag == "--rates" and rest:
            rates = [float(r) for r in rest.pop(0).split(",")]
        elif flag == "--hosts" and rest:
            hosts = rest.pop(0)
        elif flag == "--out" and rest:
            out_path = Path(rest.pop(0))
        else:
            out(f"unknown or incomplete fleet-bench option {flag!r}")
            return False

    shape, steps, pshape = FLEET_SMOKE_CASE if smoke else FLEET_FULL_CASE
    if smoke:
        jobs = min(jobs, 6)
        daemon_counts = daemon_counts[-1:]  # largest fleet only
        rates = [r for r in rates if r >= 1.0] or [1.0]

    from repro.dist.bench import (
        _build,
        _fields_of,
        _identical,
        _sequential_fields,
    )
    from repro.dist.fleet import FleetScheduler, ServerSaturatedError
    from repro.util import format_table

    par = _build("A", shape, steps, pshape)
    seq_fields = _sequential_fields("A", shape, steps)
    job_nprocs = int(np.prod(pshape)) + 1  # ranks + host
    cpu_count = os.cpu_count()

    header = "fleet serving benchmark" + (" (smoke)" if smoke else "")
    out(f"\n{header}\n{'=' * len(header)}")
    out(
        f"grid={shape} steps={steps} pshape={pshape} jobs={jobs} "
        f"capacity={capacity}/daemon "
        + (
            f"hosts={hosts} "
            if hosts
            else f"daemon_counts={daemon_counts} "
        )
        + f"rates={rates} cores={cpu_count}\n"
    )

    results: list[dict[str, Any]] = []
    all_ok = True

    def check_all(run_results) -> bool:
        nonlocal all_ok
        good = all(
            _identical(_fields_of(par, r.stores), seq_fields)
            for r in run_results
        )
        all_ok &= good
        return good

    def fleet_kwargs(on_full: str) -> dict[str, Any]:
        kw: dict[str, Any] = {
            "capacity": capacity,
            "on_full": on_full,
            "heartbeat_interval": 0.25,
        }
        if hosts:
            kw["hosts"] = hosts
        return kw

    fleets = (
        [("hosts", len(hosts.split(",")))] if hosts
        else [("loopback", n) for n in daemon_counts]
    )
    for kind, ndaemons in fleets:
        # Closed loop: all jobs at once, block at the admission bound —
        # calibrates this fleet size's sustainable throughput.
        kw = fleet_kwargs("block")
        if not hosts:
            kw["daemons"] = ndaemons
        with FleetScheduler(**kw) as sched:
            sched.submit(par.to_parallel()).result()  # warm-up
            systems = [par.to_parallel() for _ in range(jobs)]
            t0 = time.perf_counter()
            futs = [sched.submit(s) for s in systems]
            runs = [f.result() for f in futs]
            elapsed = time.perf_counter() - t0
            records = sched.job_stats()[1:]  # minus warm-up
            st = sched.stats()
        thr = jobs / elapsed if elapsed else 0.0
        results.append(
            {
                "mode": "fleet-closed",
                "daemons": ndaemons,
                "fleet": kind,
                "jobs": jobs,
                "job_nprocs": job_nprocs,
                "elapsed_s": round(elapsed, 6),
                "jobs_per_s": round(thr, 4),
                "all_identical": check_all(runs),
                "retries": st["retries"],
                "attempts_max": st["attempts_max"],
                **_wire_totals(runs),
                **_percentiles([r.latency_s for r in records]),
            }
        )

        # Open loop: offered load at fixed multiples of the calibrated
        # throughput, shedding the excess at the admission bound.
        for factor in rates:
            rate = max(thr * factor, jobs / 30.0)  # bound the run
            kw = fleet_kwargs("reject")
            if not hosts:
                kw["daemons"] = ndaemons
            with FleetScheduler(**kw) as sched:
                sched.submit(par.to_parallel()).result()  # warm-up
                systems = [par.to_parallel() for _ in range(jobs)]
                futs = []
                rejected = 0
                t0 = time.perf_counter()
                for i, system in enumerate(systems):
                    due = t0 + i / rate
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        futs.append(sched.submit(system))
                    except ServerSaturatedError:
                        rejected += 1
                runs = [f.result() for f in futs]
                elapsed = time.perf_counter() - t0
                records = sched.job_stats()[1:]
                st = sched.stats()
            lat = [
                r.latency_s for r in records if r.latency_s is not None
            ]
            results.append(
                {
                    "mode": "fleet-open",
                    "daemons": ndaemons,
                    "fleet": kind,
                    "jobs": len(runs),
                    "job_nprocs": job_nprocs,
                    "offered_factor": factor,
                    "offered_jobs_per_s": round(rate, 4),
                    "accepted": len(runs),
                    "rejected": rejected,
                    "elapsed_s": round(elapsed, 6),
                    "jobs_per_s": (
                        round(len(runs) / elapsed, 4) if elapsed else 0.0
                    ),
                    "all_identical": check_all(runs),
                    "retries": st["retries"],
                    "attempts_max": st["attempts_max"],
                    **_wire_totals(runs),
                    **_percentiles(lat),
                }
            )

    rows = [
        [
            r["mode"],
            str(r["daemons"]),
            str(r.get("offered_factor", "-")),
            str(r["jobs"]),
            str(r.get("rejected", "-")),
            f"{r['jobs_per_s']:.2f}",
            f"{r['latency_p50_s'] * 1e3:.1f}",
            f"{r['latency_p99_s'] * 1e3:.1f}",
            "yes" if r["all_identical"] else "NO",
        ]
        for r in results
    ]
    out(
        format_table(
            [
                "mode",
                "daemons",
                "offered x",
                "jobs",
                "rejected",
                "jobs/s",
                "p50 ms",
                "p99 ms",
                "identical",
            ],
            rows,
        )
    )

    checks: dict[str, Any] = {
        "all_job_results_identical": all(
            r["all_identical"] for r in results
        ),
    }
    # Vectored-send accounting over the whole fleet path: every row's
    # TCP streams must issue at most half the send syscalls the
    # unvectored sender would have (same exact-counter ratio as the
    # engine bench's socket rows), enforced everywhere — syscall
    # counts, unlike throughput, do not depend on core count.
    syscall_rows = [r for r in results if r["net_syscalls"]]
    if syscall_rows:
        worst = min(
            r["net_syscalls_unvectored"] / r["net_syscalls"]
            for r in syscall_rows
        )
        checks["net_send_syscall_reduction_ge_2x"] = worst >= 2.0
        checks["net_send_syscall_reduction_min_ratio"] = round(worst, 4)
        out(
            f"\nfleet send-syscall reduction (vectored): worst "
            f"{worst:.2f}x ({'OK' if worst >= 2.0 else 'BELOW 2x'})"
        )
        all_ok &= worst >= 2.0
    multicore = bool(cpu_count and cpu_count > 1)
    closed = {
        r["daemons"]: r["jobs_per_s"]
        for r in results
        if r["mode"] == "fleet-closed"
    }
    if len(closed) >= 2:
        lo, hi = min(closed), max(closed)
        ratio = closed[hi] / max(closed[lo], 1e-9)
        checks["scaling_ratio_max_over_min_daemons"] = round(ratio, 4)
        checks["more_daemons_not_slower"] = ratio >= 1.0
        checks["throughput_checks_enforced"] = multicore
        out(
            f"\n{hi} daemons vs {lo}: {closed[hi]:.2f} vs "
            f"{closed[lo]:.2f} jobs/s = {ratio:.2f}x "
            + (
                "(enforced)"
                if multicore
                else f"(recorded only: {cpu_count} core)"
            )
        )
        if multicore:
            all_ok &= ratio >= 1.0
    all_ok &= checks["all_job_results_identical"]

    # Merge under "fleet", preserving the serve-bench payload.
    existing: dict[str, Any] = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except ValueError:
            existing = {}
    existing["fleet"] = {
        "meta": {
            "smoke": smoke,
            "transport": "socket",
            "hostname": platform.node(),
            "hosts": hosts,
            "daemon_counts": [n for _, n in fleets],
            "capacity_per_daemon": capacity,
            "jobs": jobs,
            "job_nprocs": job_nprocs,
            "grid": list(shape),
            "steps": steps,
            "pshape": list(pshape),
            "rates": rates,
            "cpu_count": cpu_count,
            "python": sys.version.split()[0],
            "timing_note": (
                "fleet-closed rows submit all jobs at once (on_full="
                "block) to calibrate sustainable throughput per fleet "
                "size; fleet-open rows submit at offered_factor x that "
                "rate with on_full=reject, recording accepted/rejected "
                "and accepted-job latency; every scheduler gets one "
                "untimed warm-up job; scaling checks enforced only on "
                "multi-core hosts, result-identity checks everywhere; "
                "net_frames/net_bytes/net_syscalls/net_syscalls_"
                "unvectored/net_vectored sum the row's jobs' TCP-stream "
                "traffic and vectored-send accounting, coalesce_hwm is "
                "the deepest feeder coalescing window any channel saw; "
                "the ge-2x syscall-reduction check is enforced on every "
                "host (syscall counts are core-count independent, "
                "unlike the single-core-caveated throughput rows)"
            ),
        },
        "results": results,
        "checks": checks,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(existing, indent=2) + "\n")
    out(f"\nwrote {out_path} (fleet rows merged)")
    return all_ok
