"""Placement policies: which daemon hosts which rank.

A policy sees the live :class:`~repro.dist.fleet.membership.DaemonState`
list (aliveness, elastic capacity, current reservations) and must
return a *gang* placement — every rank of the job placed at once, or
``None`` if the fleet cannot host the whole job right now (the job
keeps waiting in the ready queue; a completion, revival, or capacity
growth re-asks).  Gang placement is what makes waiting safe: a job
never holds some daemons while blocking on others, so the fleet cannot
deadlock on partially-placed jobs.

Two policies ship:

* :class:`LeastLoadedPolicy` (default) — each rank goes to the alive
  daemon with the most free capacity at that instant, ties broken by
  address order.  Spreads load evenly and maximises the parallelism of
  multi-rank jobs across hosts.
* :class:`PackedPolicy` — fill one daemon before touching the next.
  Co-located ranks ride loopback instead of the network, so packing
  minimises cross-host channel traffic at the cost of less parallelism.

Determinacy note: placement *never* affects results — by Theorem 1 a
job's final state is schedule- and host-independent — so policies are
pure performance knobs, swappable per scheduler via
``FleetScheduler(policy="least-loaded" | "packed")``.
"""

from __future__ import annotations

from repro.dist.fleet.membership import DaemonState

__all__ = ["LeastLoadedPolicy", "PackedPolicy", "make_policy"]


class LeastLoadedPolicy:
    """Rank → alive daemon with the most free capacity (greedy)."""

    name = "least-loaded"

    def place(
        self, nprocs: int, daemons: list[DaemonState]
    ) -> list[DaemonState] | None:
        free = {id(d): d.free for d in daemons if d.alive}
        if sum(free.values()) < nprocs:
            return None
        alive = [d for d in daemons if d.alive]
        assign: list[DaemonState] = []
        for _rank in range(nprocs):
            best = max(alive, key=lambda d: free[id(d)])
            if free[id(best)] <= 0:
                return None
            free[id(best)] -= 1
            assign.append(best)
        return assign


class PackedPolicy:
    """Fill daemons in address order — fewest hosts per job."""

    name = "packed"

    def place(
        self, nprocs: int, daemons: list[DaemonState]
    ) -> list[DaemonState] | None:
        assign: list[DaemonState] = []
        for d in sorted(
            (d for d in daemons if d.alive), key=lambda d: d.address
        ):
            take = min(d.free, nprocs - len(assign))
            assign.extend([d] * take)
            if len(assign) == nprocs:
                return assign
        return None


_POLICIES = {p.name: p for p in (LeastLoadedPolicy, PackedPolicy)}


def make_policy(name: str):
    """``"least-loaded"`` or ``"packed"`` → a policy instance."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r} "
            f"(choose from {sorted(_POLICIES)})"
        ) from None
