"""Fleet serving: one ``submit() → Future`` front door over many hosts.

The paper's "network of Suns" at service scale: a
:class:`FleetScheduler` places jobs across worker daemons
(:mod:`repro.dist.net.daemon`), keeps membership honest with
heartbeats, re-places jobs when a daemon dies mid-run (sound by
Theorem 1 — results are deterministic, so a silent re-run is
invisible), and applies the same admission control as the single-host
:class:`~repro.dist.serve.JobServer`.

See :mod:`repro.dist.fleet.scheduler` for the full story.
"""

from repro.dist.fleet.membership import (
    DaemonState,
    HeartbeatMonitor,
    elastic_capacity,
    probe_stats,
)
from repro.dist.fleet.placement import (
    LeastLoadedPolicy,
    PackedPolicy,
    make_policy,
)
from repro.dist.fleet.scheduler import (
    FleetScheduler,
    JobStats,
    ServerClosedError,
    ServerSaturatedError,
)

__all__ = [
    "FleetScheduler",
    "JobStats",
    "ServerClosedError",
    "ServerSaturatedError",
    "DaemonState",
    "HeartbeatMonitor",
    "elastic_capacity",
    "probe_stats",
    "LeastLoadedPolicy",
    "PackedPolicy",
    "make_policy",
]
