"""The fleet scheduler: ``submit() → Future`` across many hosts.

:class:`FleetScheduler` is the multi-host sibling of the single-pool
:class:`~repro.dist.serve.JobServer` — the same
:class:`~repro.dist.serving.JobServerCore` front door (admission
control, ready queue, futures, accounting), with "capacity" redefined
from pool slots to *per-daemon rank reservations* across a fleet of
:class:`~repro.dist.net.daemon.WorkerDaemon`\\ s:

* **placement** — a policy (:mod:`repro.dist.fleet.placement`) gang-
  places every rank of a job onto alive daemons with free capacity,
  least-loaded by default, fed by the daemons' own heartbeat stats;
* **membership** — a :class:`~repro.dist.fleet.membership
  .HeartbeatMonitor` pings every daemon; ``miss_threshold`` missed
  beats mark it dead (excluded from placement, queued jobs re-woken),
  an answered ping revives it, and the elastic controller grows or
  shrinks each daemon's capacity from its observed utilization;
* **retry / re-placement** — a daemon dying mid-job (control-stream
  EOF without goodbye, a refused dial, a reset data stream) fails only
  that *attempt*: the scheduler probes the placement, marks the
  unreachable daemons dead, re-places the job on the survivors under a
  fresh job id, and re-runs — up to ``max_attempts``, after which the
  job's future gets the :class:`~repro.errors.ProcessFailedError`.
  Errors raised by the job's own body are never retried.

**Why a silent re-run is sound** (the determinacy argument): Theorem 1
makes a job's final state a function of the *program*, not the
schedule, the engine, or the hosts — every run of the same system
produces bitwise-identical stores.  A re-placed attempt is therefore
semantically invisible: the caller cannot distinguish "ran once on
daemon A" from "A died; re-ran on daemon B" by any observation of the
result.  Fault tolerance falls out of the paper's theory for free, and
the tests assert exactly this (mid-job daemon kill → bitwise-identical
result).

Jobs run on the daemons through exactly the socket engine's dispatch
path (:func:`~repro.dist.net.engine.run_assigned`) — bodies and stores
travel by value, channels rendezvous peer-to-peer between daemons —
so every transport/goodbye/crash semantic is shared, not re-implemented.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.dist import closures
from repro.dist.engine import WorkerCrashError
from repro.dist.fleet.membership import (
    DaemonState,
    HeartbeatMonitor,
    probe_stats,
)
from repro.dist.fleet.placement import make_policy
from repro.dist.net import rendezvous
from repro.dist.net.engine import (
    fresh_job_id,
    run_assigned,
    spawn_loopback_daemons,
    stop_loopback_daemons,
)
from repro.dist.serving import (
    JobServerCore,
    JobStats,
    ServerClosedError,
    ServerSaturatedError,
    _Job,
)
from repro.errors import (
    ProcessFailedError,
    RendezvousError,
    TransportError,
)
from repro.obs.observer import Observer
from repro.runtime.system import RunResult, System

__all__ = [
    "FleetScheduler",
    "ServerSaturatedError",
    "ServerClosedError",
    "JobStats",
]


class _Grant:
    """One job's current reservation: a daemon per rank.  Mutable — a
    retry re-places in place, so the core's single release-in-finally
    always returns whatever the job holds *now*."""

    __slots__ = ("assign",)

    def __init__(self, assign: list[DaemonState]):
        self.assign = assign


def _retryable(exc: BaseException) -> bool:
    """Infrastructure failure (daemon death, broken rendezvous) — yes;
    the job's own body raising — no."""
    if isinstance(exc, ProcessFailedError):
        return isinstance(
            exc.original,
            (TransportError, WorkerCrashError, EOFError, OSError),
        )
    return isinstance(exc, (TransportError, OSError))


class FleetScheduler(JobServerCore):
    """Serve many Systems concurrently across a fleet of worker daemons.

    Parameters
    ----------
    hosts:
        Operator-started daemons (``"hostA:9001,hostB:9002"`` or a
        list of ``(host, port)`` pairs); left running on :meth:`close`.
    daemons:
        When ``hosts`` is not given: how many loopback daemons to
        spawn and own (default 2).  Their processes are exposed as
        :attr:`local_procs` so tests can kill one mid-job.
    capacity:
        Initial (and floor) ranks placed concurrently per daemon
        (default 4); the elastic controller grows it to
        ``max_capacity`` under saturation and shrinks back when idle.
    max_inflight / on_full:
        Admission control, as on :class:`~repro.dist.serve.JobServer`
        (default ``max_inflight``: the fleet's total floor capacity).
    max_attempts:
        Execution attempts per job before its future fails (default 3).
    heartbeat_interval / miss_threshold / ping_timeout:
        The liveness knobs: a daemon missing ``miss_threshold``
        consecutive pings (every ``heartbeat_interval`` seconds) is
        dead until a ping answers again.
    policy:
        ``"least-loaded"`` (default) or ``"packed"``.
    elastic:
        Enable the per-daemon elastic capacity controller.
    recv_timeout / observe / crash_grace / trace_causal /
    handshake_timeout:
        Per-job run knobs, as on the socket engine.
    """

    metric_prefix = "fleet"

    def __init__(
        self,
        *,
        hosts=None,
        daemons: int = 2,
        capacity: int = 4,
        max_capacity: int = 8,
        max_inflight: int | None = None,
        on_full: str = "block",
        max_attempts: int = 3,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 3,
        ping_timeout: float = 2.0,
        policy: str = "least-loaded",
        elastic: bool = True,
        observer: Observer | None = None,
        recv_timeout: float | None = None,
        observe: bool = False,
        crash_grace: float = 5.0,
        trace_causal: bool = False,
        handshake_timeout: float = 30.0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        max_capacity = max(capacity, max_capacity)

        if isinstance(hosts, str):
            hosts = rendezvous.parse_hosts(hosts)
        if hosts:
            addrs = [tuple(h) for h in hosts]
            self.local_procs: list[Any] = []
            self._owns_daemons = False
        else:
            addrs, self.local_procs = spawn_loopback_daemons(
                daemons, handshake_timeout
            )
            self._owns_daemons = True

        super().__init__(
            max_inflight=max_inflight or len(addrs) * capacity,
            on_full=on_full,
            observer=observer,
        )
        self.max_attempts = max_attempts
        self.max_capacity = max_capacity
        self._recv_timeout = recv_timeout
        self._observe = bool(observe)
        self._crash_grace = crash_grace
        self._trace_causal = bool(trace_causal)
        self._handshake_timeout = handshake_timeout
        self._ping_timeout = ping_timeout
        self._policy = make_policy(policy)
        self._elastic = bool(elastic)
        self._rank_ceiling = len(addrs) * (
            max_capacity if elastic else capacity
        )

        self._daemons = [
            DaemonState(address=a, capacity=capacity, floor=capacity)
            for a in addrs
        ]
        self._retries = 0
        self._deaths = 0

        reg = self.observer.registry
        self._c_retries = reg.counter("fleet/retries")
        self._c_deaths = reg.counter("fleet/daemon_deaths")
        self._g_alive = reg.gauge("fleet/daemons_alive")
        self._g_alive.set(len(self._daemons))
        self._g_reserved = {
            d.host: reg.gauge(f"fleet/daemon/{d.host}/reserved")
            for d in self._daemons
        }

        self._monitor = HeartbeatMonitor(
            self._daemons,
            self._cv,
            interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            ping_timeout=ping_timeout,
            max_capacity=max_capacity,
            elastic=self._elastic,
            notify=self._cv.notify_all,
            on_death=self._record_death,
            on_update=lambda d: None,
        )
        self._monitor.start()

    # -- membership ----------------------------------------------------------

    @property
    def daemon_addresses(self) -> list[rendezvous.Address]:
        return [d.address for d in self._daemons]

    def daemon_states(self) -> list[dict[str, Any]]:
        """Per-daemon membership/load snapshot (for dashboards/tests)."""
        with self._cv:
            return [d.snapshot() for d in self._daemons]

    def _record_death(self, daemon: DaemonState) -> None:
        # Called under _cv (by the monitor or a failure probe).
        self._deaths += 1
        self._c_deaths.inc()
        self._g_alive.set(sum(1 for d in self._daemons if d.alive))

    def _note_failure(self, assign: list[DaemonState]) -> None:
        """After a failed attempt: probe each daemon of the placement
        (fail-fast, outside the lock) and mark the unreachable ones
        dead *now* — re-placement must not wait out miss_threshold
        heartbeats to learn what the crash already proved."""
        seen: dict[int, DaemonState] = {id(d): d for d in assign}
        for d in seen.values():
            stats = probe_stats(d.address, timeout=self._ping_timeout)
            with self._cv:
                if stats is None:
                    if d.alive:
                        d.alive = False
                        d.deaths += 1
                        self._record_death(d)
                    self._cv.notify_all()
                else:
                    d.alive = True
                    d.misses = 0
                    d.stats = stats

    # -- capacity hooks (under _cv) ------------------------------------------

    def _check_admissible(self, system: System) -> None:
        if system.nprocs > self._rank_ceiling:
            raise ValueError(
                f"job needs {system.nprocs} ranks but the fleet tops out "
                f"at {self._rank_ceiling} "
                f"({len(self._daemons)} daemons x {self.max_capacity})"
            )

    def _try_reserve(self, job: _Job):
        if not any(d.alive for d in self._daemons):
            raise ProcessFailedError(
                0, RendezvousError("no alive daemons in the fleet")
            )
        assign = self._policy.place(job.system.nprocs, self._daemons)
        if assign is None:
            return None
        self._reserve(assign)
        return _Grant(assign)

    def _reserve(self, assign: list[DaemonState]) -> None:
        for d in assign:
            d.reserved += 1
        for d in {id(d): d for d in assign}.values():
            d.jobs_placed += 1
            self._g_reserved[d.host].set(d.reserved)
            self._g_reserved[d.host].update_max(d.reserved)

    def _release(self, job: _Job, grant) -> None:
        for d in grant.assign:
            d.reserved -= 1
        for d in {id(d): d for d in grant.assign}.values():
            self._g_reserved[d.host].set(d.reserved)

    # -- execution with retry ------------------------------------------------

    def _prepare(self, job: _Job):
        bodies = [
            ("pickle", closures.dumps(p.body)) for p in job.system.processes
        ]
        rests = [
            ("pickle", closures.dumps(p.store)) for p in job.system.processes
        ]
        return bodies, rests

    def _execute(self, job: _Job, prepared, grant) -> RunResult:
        bodies, rests = prepared
        attempt = 0
        while True:
            attempt += 1
            with self._cv:
                assign = list(grant.assign)
            hosts = [d.host for d in assign]
            job.stats.attempts = attempt
            job.stats.placed_on = hosts
            try:
                with self.observer.span(
                    job.stats.job_id,
                    f"{job.stats.label}#a{attempt}",
                    cat="fleet-place",
                    attempt=attempt,
                    hosts=",".join(sorted(set(hosts))),
                ):
                    return run_assigned(
                        job.system,
                        [d.address for d in assign],
                        fresh_job_id("fleet"),
                        handshake_timeout=self._handshake_timeout,
                        recv_timeout=self._recv_timeout,
                        observe=self._observe,
                        crash_grace=self._crash_grace,
                        trace_causal=self._trace_causal,
                        engine_name="fleet",
                        bodies=bodies,
                        rests=rests,
                    )
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not _retryable(exc):
                    raise
                self._note_failure(assign)
                if attempt >= self.max_attempts:
                    if isinstance(exc, ProcessFailedError):
                        raise
                    raise ProcessFailedError(0, exc) from exc
                self._retries += 1
                self._c_retries.inc()
                self._replace(job, grant)

    def _replace(self, job: _Job, grant) -> None:
        """Swap the job's reservation for a fresh placement on the
        survivors (waiting for capacity if the fleet is busy); raises
        when no alive daemon remains or the server is shed."""
        with self._cv:
            for d in grant.assign:
                d.reserved -= 1
            for d in {id(d): d for d in grant.assign}.values():
                self._g_reserved[d.host].set(d.reserved)
            # The old hold is gone: empty the grant *before* anything
            # below can raise, or the core's release-in-finally would
            # return it a second time.
            grant.assign = []
            self._cv.notify_all()
            while True:
                if self._abort_queued:
                    raise ServerClosedError(
                        "server closed before the job could be re-placed"
                    )
                if not any(d.alive for d in self._daemons):
                    raise ProcessFailedError(
                        0,
                        RendezvousError(
                            "no alive daemons left to re-place the job on"
                        ),
                    )
                assign = self._policy.place(job.system.nprocs, self._daemons)
                if assign is not None:
                    self._reserve(assign)
                    grant.assign = assign
                    return
                self._cv.wait()

    # -- lifecycle / accounting ----------------------------------------------

    def _close_resources(self) -> None:
        self._monitor.stop()
        if self._owns_daemons:
            procs, self.local_procs = self.local_procs, []
            stop_loopback_daemons(self.daemon_addresses, procs)

    def _stats_extra(self, out, done, elapsed) -> None:
        with self._cv:
            out["daemons"] = [d.snapshot() for d in self._daemons]
            out["daemons_alive"] = sum(1 for d in self._daemons if d.alive)
            out["retries"] = self._retries
            out["daemon_deaths"] = self._deaths
        out["attempts_max"] = max((r.attempts for r in done), default=0)
        if done and elapsed:
            busy = sum(
                r.service_s * r.nprocs
                for r in done
                if r.service_s is not None
            )
            out["rank_utilization"] = busy / max(
                1e-9, self._rank_ceiling * elapsed
            )
