"""Fleet membership: who is alive, how loaded, and how big.

The scheduler's view of each worker daemon is one :class:`DaemonState`:
address, aliveness, the scheduler-side *capacity* (how many ranks it
will place there concurrently) and *reserved* count (ranks currently
placed), plus the daemon's last self-reported
:meth:`~repro.dist.net.daemon.WorkerDaemon.stats` snapshot.

The :class:`HeartbeatMonitor` keeps that view honest: one background
thread holds a persistent ``stats`` connection per daemon
(:data:`~repro.dist.net.rendezvous.HELLO_STATS`) and pings every
``interval`` seconds.  Each answered ping zeroes the miss counter,
refreshes the stats snapshot, and feeds the elastic controller; each
missed ping (dial refused, timeout, dead stream) increments it, and
``miss_threshold`` consecutive misses flip the daemon to dead.  A dead
daemon keeps being probed — one cheap single-shot dial per tick — so a
daemon restarted at the same address is *revived* automatically.

All state mutation happens under the scheduler's condition variable
(the same one the ready queue waits on), so a death immediately wakes
queued jobs to fail fast and a revival immediately wakes them to
place; the socket I/O itself happens outside the lock.

Capacity is **elastic**: :func:`elastic_capacity` is an AIMD-style
controller — a daemon observed running at or above its capacity grows
it by one (up to ``max_capacity``); a daemon observed mostly idle
shrinks by one (down to its configured floor, never below, so a burst
arriving into an idle fleet can always place immediately and the
saturation signal can start the growth).
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.dist.net import rendezvous
from repro.dist.net.frames import FrameStream
from repro.errors import TransportError

__all__ = [
    "DaemonState",
    "HeartbeatMonitor",
    "elastic_capacity",
    "probe_stats",
]


@dataclass
class DaemonState:
    """The scheduler's bookkeeping for one worker daemon."""

    address: rendezvous.Address
    #: Ranks the scheduler will place here concurrently (elastic).
    capacity: int
    #: The configured floor capacity (elastic shrink never goes below).
    floor: int
    alive: bool = True
    #: Ranks currently reserved here by in-flight jobs.
    reserved: int = 0
    #: Consecutive missed heartbeats (reset by any answered ping).
    misses: int = 0
    #: Last stats() snapshot the daemon reported over the wire.
    stats: dict[str, Any] = field(default_factory=dict)
    #: Lifetime placements / failures the scheduler charged here.
    jobs_placed: int = 0
    deaths: int = 0

    @property
    def host(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def free(self) -> int:
        """Placement headroom right now (0 when dead)."""
        if not self.alive:
            return 0
        return max(0, self.capacity - self.reserved)

    def snapshot(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "alive": self.alive,
            "capacity": self.capacity,
            "reserved": self.reserved,
            "misses": self.misses,
            "jobs_placed": self.jobs_placed,
            "deaths": self.deaths,
            "ranks_active": self.stats.get("ranks_active"),
        }


def elastic_capacity(
    capacity: int, ranks_active: int, floor: int, ceiling: int
) -> int:
    """One controller step for a daemon's elastic capacity.

    Additive increase on saturation (the daemon is running at or above
    its cap — there is demand the cap is holding back), additive
    decrease when under half-busy (free the scheduler to pack other
    daemons tighter), clamped to ``[floor, ceiling]``.  The floor is
    the configured per-daemon capacity, so an idle fleet never shrinks
    below what placement needs to restart the growth loop.
    """
    if ranks_active >= capacity:
        return min(ceiling, capacity + 1)
    if ranks_active * 2 < capacity:
        return max(floor, capacity - 1)
    return capacity


def probe_stats(
    addr: rendezvous.Address, timeout: float = 1.0
) -> dict[str, Any] | None:
    """One fail-fast stats probe: single connect attempt (no retry
    loop), one ping, ``None`` on any failure.  The scheduler uses this
    after a job failure to decide *which* daemon of the placement died
    without waiting out a full rendezvous timeout per daemon."""
    from repro.dist import wire

    try:
        sock = socket.create_connection(addr, timeout=timeout)
    except OSError:
        return None
    stream = FrameStream(sock)
    try:
        wire.send(stream, (rendezvous.HELLO_STATS,))
        wire.send(stream, ("ping", 0))
        if not stream.poll(timeout):
            return None
        reply = wire.recv(stream)
        if reply[0] != "pong":
            return None
        return reply[2]
    except (EOFError, OSError, TransportError):
        return None
    finally:
        stream.close()


class HeartbeatMonitor:
    """Background heartbeats over persistent ``stats`` connections.

    ``notify`` is called (under ``lock``) after every state change —
    the scheduler passes its condition variable's ``notify_all`` so
    deaths, revivals, and capacity growth wake the ready queue.
    ``on_death`` is called (under ``lock``) once per alive→dead flip.
    """

    def __init__(
        self,
        daemons: list[DaemonState],
        lock: threading.Condition,
        *,
        interval: float = 0.5,
        miss_threshold: int = 3,
        ping_timeout: float = 2.0,
        max_capacity: int = 8,
        elastic: bool = True,
        notify=None,
        on_death=None,
        on_update=None,
    ):
        self.daemons = daemons
        self._lock = lock
        self.interval = interval
        self.miss_threshold = max(1, int(miss_threshold))
        self.ping_timeout = ping_timeout
        self.max_capacity = max_capacity
        self.elastic = elastic
        self._notify = notify or (lambda: None)
        self._on_death = on_death or (lambda d: None)
        self._on_update = on_update or (lambda d: None)
        self._streams: dict[rendezvous.Address, FrameStream] = {}
        self._seq = 0
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="fleet-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=max(2.0, 2 * self.ping_timeout))
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()

    def _loop(self) -> None:
        while not self._stopped.wait(self.interval):
            for daemon in self.daemons:
                if self._stopped.is_set():
                    return
                self.beat(daemon)

    def beat(self, daemon: DaemonState) -> None:
        """One heartbeat for one daemon (I/O outside the lock, state
        mutation inside).  Public so tests can tick deterministically."""
        stats = self._ping(daemon.address)
        with self._lock:
            if stats is None:
                daemon.misses += 1
                if daemon.alive and daemon.misses >= self.miss_threshold:
                    daemon.alive = False
                    daemon.deaths += 1
                    self._on_death(daemon)
                    self._notify()
            else:
                revived = not daemon.alive
                daemon.alive = True
                daemon.misses = 0
                daemon.stats = stats
                if self.elastic:
                    daemon.capacity = elastic_capacity(
                        daemon.capacity,
                        int(stats.get("ranks_active", 0)),
                        daemon.floor,
                        self.max_capacity,
                    )
                self._on_update(daemon)
                if revived:
                    self._notify()

    def _ping(self, addr: rendezvous.Address) -> dict[str, Any] | None:
        """Ping one daemon over its persistent stream, (re)dialling on
        demand — a single fail-fast connect, not the rendezvous retry
        loop, so one dead daemon cannot stall the whole heartbeat
        round."""
        from repro.dist import wire

        stream = self._streams.get(addr)
        if stream is None:
            try:
                sock = socket.create_connection(
                    addr, timeout=self.ping_timeout
                )
            except OSError:
                return None
            stream = FrameStream(sock)
            try:
                wire.send(stream, (rendezvous.HELLO_STATS,))
            except (OSError, TransportError):
                stream.close()
                return None
            self._streams[addr] = stream
        self._seq += 1
        seq = self._seq
        try:
            wire.send(stream, ("ping", seq))
            if not stream.poll(self.ping_timeout):
                raise TimeoutError
            reply = wire.recv(stream)
            if reply[0] != "pong" or reply[1] != seq:
                raise TimeoutError
            return reply[2]
        except (EOFError, OSError, TransportError, TimeoutError):
            stream.close()
            self._streams.pop(addr, None)
            return None
