"""The multiprocess engine: each rank is a real OS process.

:class:`MultiprocessEngine` is the third execution backend, honouring
the same ``run(System) -> RunResult`` contract as
:class:`~repro.runtime.engine_threaded.ThreadedEngine` and the
cooperative engine.  Where the threaded engine shares one address space
(and one GIL), this engine gives every rank genuinely private memory
and a whole interpreter — the paper's model taken literally, and the
only backend on which compute-bound ranks actually run in parallel.

Per run, the parent:

1. allocates a :class:`~repro.dist.shm.SharedStoreArena` and places
   each rank's large store arrays in shared segments (the FDTD Yee-grid
   blocks cross the process boundary exactly twice: written once at
   setup, read once at readback);
2. builds one OS pipe per channel and one duplex *result pipe* per
   rank, then starts the workers (``spawn`` context by default —
   process bodies, typically closures, cross via
   :mod:`repro.dist.closures`; ``fork`` passes them by reference);
3. holds all workers at a start barrier until every one reports ready,
   so :attr:`last_timing` can split startup from the run proper;
4. multiplexes result pipes and process sentinels: ``done`` payloads
   carry returns, store overrides, channel statistics, and observation
   payloads; a worker that dies without reporting is reaped via its
   sentinel into :class:`~repro.errors.ProcessFailedError`, exactly as
   a raising body is;
5. reads the shared segments back and **always** destroys the arena in
   a ``finally`` — no segment outlives the run, even when a worker
   crashed mid-step (the no-leak tests exercise precisely this).

Tracing is unsupported: a trace is a single observation order, and
separate address spaces have none to offer.  Requesting one raises
:class:`~repro.errors.RuntimeModelError` up front.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import os
import time
from typing import Any

from repro.dist import closures, wire
from repro.dist.channels import EndpointSpec
from repro.dist.shm import DEFAULT_SLAB, DEFAULT_THRESHOLD, SharedStoreArena
from repro.dist.worker import worker_main
from repro.errors import (
    RuntimeModelError,
    TransportAbortError,
    wrap_process_failure,
)
from repro.runtime.system import (
    ChannelStatsRecord,
    RunResult,
    System,
    assemble_run_result,
)

__all__ = [
    "MultiprocessEngine",
    "WorkerCrashError",
    "build_channel_endpoints",
    "collect_results",
]

_EMPTY_W = {
    "sends": 0,
    "bytes_sent": 0,
    "queue_hwm": 0,
    "frames": 0,
    "pipe_bytes": 0,
    "shm_bytes": 0,
}
_EMPTY_R = {"receives": 0}


def _affinity_sets(affinity, nprocs: int) -> list:
    """Normalize the ``affinity=`` knob to one CPU set per rank.

    ``None`` → no pinning; ``"auto"`` → ranks round-robin over the CPUs
    this process may use; otherwise a sequence (cycled over ranks) of
    CPU ids or CPU-id iterables.
    """
    if affinity is None:
        return [None] * nprocs
    if not hasattr(os, "sched_getaffinity"):  # non-Linux: knob is a no-op
        return [None] * nprocs
    if affinity == "auto":
        cpus = sorted(os.sched_getaffinity(0))
        return [{cpus[r % len(cpus)]} for r in range(nprocs)]
    items = list(affinity)
    if not items:
        return [None] * nprocs
    sets = []
    for r in range(nprocs):
        item = items[r % len(items)]
        if isinstance(item, int):
            sets.append({item})
        else:
            sets.append({int(c) for c in item})
    return sets


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result.

    Wrapped in :class:`~repro.errors.ProcessFailedError` like any other
    body failure; ``exitcode`` is the process's exit code (negative =
    killed by that signal number).
    """

    def __init__(self, rank: int, exitcode: int | None):
        self.rank = rank
        self.exitcode = exitcode
        super().__init__(
            f"worker process for rank {rank} died without reporting "
            f"(exitcode {exitcode})"
        )


class _RemoteError(RuntimeError):
    """Stand-in for a worker exception that could not be unpickled."""

    def __init__(self, message: str, remote_traceback: str):
        super().__init__(message)
        self.remote_traceback = remote_traceback


def _rebuild_exception(exc_info: tuple[str, Any, str]) -> BaseException:
    kind, data, tb = exc_info
    if kind == "pickle":
        try:
            exc = closures.loads(data)
            exc.remote_traceback = tb
            return exc
        except Exception:
            data = "<unpicklable worker exception>"
    return _RemoteError(str(data), tb)


def collect_results(system: System, procs, parent_conns, crash_grace: float):
    """Multiplex result pipes + sentinels until every rank is terminal.

    The one collection loop shared by the whole-run engine and the
    per-job serving layer: ready/go barrier, done/error frames, sentinel
    reaping into :class:`WorkerCrashError`, and the post-first-failure
    grace window (``crash_grace`` seconds) before survivors are
    terminated.  Returns ``(returns, overrides, stats, observations,
    causal, errors, t_run0, t_run1)`` — ``causal`` maps rank to its
    :meth:`~repro.obs.causal.CausalRecorder.payload` when the job ran
    with causal tracing, else stays empty.

    ``procs`` entries need not be local processes: the socket engine
    passes proxies for ranks living in remote daemons, with
    ``sentinel=None`` (there is no local fd to watch — the result
    connection itself is the liveness signal) and ``is_alive()`` always
    false.  A connection that drops before its rank's terminal report —
    EOF, stream abort, or reset — is therefore treated as that rank's
    crash unless the local process object is demonstrably still alive.
    """
    nprocs = system.nprocs
    sentinels = {
        proc.sentinel: rank
        for rank, proc in enumerate(procs)
        if proc.sentinel is not None
    }
    conn_of = {rank: conn for conn, rank in parent_conns.items()}
    terminal: set[int] = set()
    ready: set[int] = set()
    started = False
    aborted = False
    returns: dict[int, Any] = {}
    overrides: dict[int, dict] = {}
    stats: dict[int, dict] = {}
    observations: dict[int, dict] = {}
    causal: dict[int, dict] = {}
    errors: dict[int, BaseException] = {}
    t_run0: float | None = None
    t_run1: float | None = None
    deadline: float | None = None

    def fail(rank: int, exc: BaseException) -> None:
        nonlocal deadline
        terminal.add(rank)
        errors.setdefault(rank, exc)
        if deadline is None:
            deadline = time.perf_counter() + crash_grace

    def handle(rank: int, msg: tuple) -> None:
        nonlocal started, aborted, t_run0
        kind = msg[0]
        if kind == "ready":
            if aborted:
                wire.send(conn_of[rank], ("abort",))
                terminal.add(rank)
                return
            ready.add(rank)
            if len(ready) == nprocs and not started:
                started = True
                t_run0 = time.perf_counter()
                for r in range(nprocs):
                    wire.send(conn_of[r], ("go",))
        elif kind == "done":
            payload = msg[2]
            returns[rank] = payload["return"]
            overrides[rank] = payload["overrides"]
            stats[rank] = payload["stats"]
            if payload["obs"] is not None:
                observations[rank] = payload["obs"]
            if payload.get("causal") is not None:
                causal[rank] = payload["causal"]
            terminal.add(rank)
        elif kind == "error":
            fail(rank, _rebuild_exception(msg[2]))

    live_conns = dict(parent_conns)
    while len(terminal) < nprocs:
        if deadline is not None and not aborted and not started:
            # Startup failed: release ranks already at the barrier.
            aborted = True
            for r in ready - terminal:
                try:
                    wire.send(conn_of[r], ("abort",))
                except (OSError, TransportAbortError):
                    pass

        timeout = None
        if deadline is not None:
            timeout = deadline - time.perf_counter()
            if timeout <= 0:
                break
        pending_sentinels = [
            s for s, r in sentinels.items() if r not in terminal
        ]
        # Buffered frame streams may hold a complete report in user
        # space with nothing left on the fd — wait() would block past
        # it.  Serve those first; only a fully drained set blocks.
        buffered = [
            c for c in live_conns if getattr(c, "has_buffered", False)
        ]
        if buffered:
            fired = buffered + [
                c
                for c in mp_connection.wait(
                    list(live_conns) + pending_sentinels, 0
                )
                if c not in buffered
            ]
        else:
            fired = mp_connection.wait(
                list(live_conns) + pending_sentinels, timeout
            )
        for obj in fired:
            if obj in live_conns:
                rank = live_conns[obj]
                try:
                    msg = wire.recv(obj)
                except (EOFError, OSError, TransportAbortError):
                    del live_conns[obj]
                    if rank not in terminal:
                        # The result stream died before a terminal
                        # report.  For a local process the sentinel
                        # usually beats us here; for a remote rank this
                        # EOF *is* the death notice.
                        procs[rank].join(timeout=1.0)
                        if not procs[rank].is_alive():
                            fail(
                                rank,
                                WorkerCrashError(
                                    rank, procs[rank].exitcode
                                ),
                            )
                    continue
                handle(rank, msg)
            else:
                rank = sentinels[obj]
                # Drain any final report racing the process exit.
                conn = conn_of[rank]
                try:
                    while conn in live_conns and conn.poll(0):
                        handle(rank, wire.recv(conn))
                except (EOFError, OSError):
                    live_conns.pop(conn, None)
                if rank not in terminal:
                    procs[rank].join(timeout=1.0)
                    fail(
                        rank,
                        WorkerCrashError(rank, procs[rank].exitcode),
                    )
        if started and len(terminal) == nprocs and t_run1 is None:
            t_run1 = time.perf_counter()

    if len(terminal) < nprocs:
        # Grace expired: the survivors are presumed wedged.
        for rank in range(nprocs):
            if rank not in terminal:
                if procs[rank].is_alive():
                    procs[rank].terminate()
                    procs[rank].join(timeout=5.0)
                fail(rank, WorkerCrashError(rank, procs[rank].exitcode))
    if t_run1 is None:
        t_run1 = time.perf_counter()
    return (
        returns,
        overrides,
        stats,
        observations,
        causal,
        errors,
        t_run0,
        t_run1,
    )


def build_channel_endpoints(
    system: System, ctx, arena: SharedStoreArena, payload_slab: int
) -> tuple[list, list, list, list[str]]:
    """One OS pipe + shm counters/slab per channel, split per rank.

    Returns ``(w_specs, r_specs, parent_conns, segment_names)``:
    per-rank writer/reader :class:`EndpointSpec` lists, every parent-side
    pipe end (to close after the workers hold duplicates), and the names
    of the arena segments created — so a per-job caller (the serving
    layer) can recycle exactly these when the job completes.
    """
    nprocs = system.nprocs
    w_specs: list[list[EndpointSpec]] = [[] for _ in range(nprocs)]
    r_specs: list[list[EndpointSpec]] = [[] for _ in range(nprocs)]
    conns: list[Any] = []
    names: list[str] = []
    for spec in system.channel_specs:
        r_conn, w_conn = ctx.Pipe(duplex=False)
        conns.extend((r_conn, w_conn))
        counter = arena.new_counter()
        names.append(counter)
        slab_name, slab_counter = "", ""
        if payload_slab:
            slab_name = arena.new_slab(payload_slab)
            slab_counter = arena.new_counter()
            names.extend((slab_name, slab_counter))
        for mode, rank, conn in (
            ("w", spec.writer, w_conn),
            ("r", spec.reader, r_conn),
        ):
            specs = w_specs if mode == "w" else r_specs
            specs[rank].append(
                EndpointSpec(
                    spec.name,
                    spec.writer,
                    spec.reader,
                    mode,
                    conn,
                    counter,
                    slab_name,
                    payload_slab,
                    slab_counter,
                )
            )
    return w_specs, r_specs, conns, names


class MultiprocessEngine:
    """Run a :class:`~repro.runtime.system.System` on OS processes.

    Parameters
    ----------
    recv_timeout:
        Optional upper bound, in seconds, on any single blocking
        receive inside a worker (same semantics as the threaded
        engine).  ``None`` waits indefinitely.
    observe:
        Truthy runs a fresh per-worker observer in every rank and
        merges the payloads into the result's ``report``.  A shared
        :class:`~repro.obs.observer.Observer` instance cannot span
        address spaces, so unlike the in-process engines only the
        boolean form is accepted.
    start_method:
        ``"spawn"`` (default, per the model: a pristine interpreter per
        rank, bodies crossing by value) or ``"fork"`` (cheaper startup;
        bodies pass by reference).
    shm_threshold:
        Store arrays of at least this many bytes are placed in shared
        segments; smaller values ride the bootstrap pickle.
    crash_grace:
        After the first worker failure, how long to wait for the
        remaining workers to unwind on their own (via the EOF cascade)
        before terminating them.
    payload_slab:
        Per-channel payload-staging slab size in bytes (default 1 MiB);
        array payloads that fit cross via shared memory descriptors
        instead of pipe frames (see :mod:`repro.dist.wire`).  ``0``
        disables slabs: every array rides the pipe.
    affinity:
        CPU pinning per rank: ``None`` (no pinning), ``"auto"``
        (round-robin over available CPUs), or a sequence of CPU ids /
        CPU-id sets cycled over ranks.  Best effort; a no-op where
        ``os.sched_setaffinity`` is unavailable.
    pool:
        ``False`` boots and tears down workers per run (one-shot).
        ``True`` lazily creates an owned
        :class:`~repro.dist.pool.WorkerPool` on first run, reused by
        every subsequent run until :meth:`close`.  An existing
        ``WorkerPool`` instance is used without being owned (the caller
        shuts it down).  Pooled runs always ship bodies by value.
    trace_causal:
        Per-rank Lamport-clock event logs (:mod:`repro.obs.causal`),
        shipped home in the done payload and merged into the result's
        ``causal`` :class:`~repro.obs.causal.CausalTrace`.  This is the
        tracing the process engines *can* do — a happens-before partial
        order needs no global observation order — and it is a pure
        refinement: final field state is bitwise identical on/off.

    Attributes
    ----------
    last_timing:
        ``{"startup_s", "run_s", "total_s"}`` for the most recent run —
        ``run_s`` covers the span from the post-barrier "go" to the
        last worker's terminal report, which is what the benchmark
        harness compares across engines.
    """

    name = "multiprocess"

    def __init__(
        self,
        trace: bool = False,
        recv_timeout: float | None = None,
        observe=False,
        start_method: str = "spawn",
        shm_threshold: int = DEFAULT_THRESHOLD,
        crash_grace: float = 5.0,
        payload_slab: int = DEFAULT_SLAB,
        affinity=None,
        pool=False,
        trace_causal: bool = False,
    ):
        if trace:
            raise RuntimeModelError(
                "the multiprocess engine cannot trace: a trace is a single "
                "observation order, and separate address spaces have none; "
                "use trace_causal=True for the happens-before partial "
                "order, or the threaded/cooperative engine for total-order "
                "traces"
            )
        if start_method not in ("spawn", "fork"):
            raise ValueError(f"unsupported start method {start_method!r}")
        self._recv_timeout = recv_timeout
        self._observe = bool(observe)
        self._start_method = start_method
        self._shm_threshold = shm_threshold
        self._crash_grace = crash_grace
        self._payload_slab = max(0, int(payload_slab))
        self._affinity = affinity
        self._trace_causal = bool(trace_causal)
        self._pool_opt = pool
        self._pool = None if isinstance(pool, bool) else pool
        self._owned_pool = None
        self.last_timing: dict[str, float] = {}

    # -- pool plumbing -------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from repro.dist.pool import WorkerPool

            self._pool = self._owned_pool = WorkerPool(self._start_method)
        return self._pool

    def close(self) -> None:
        """Shut down the owned worker pool, if any.  Idempotent."""
        if self._owned_pool is not None:
            self._owned_pool.shutdown()
            self._owned_pool = None
            self._pool = None

    def __enter__(self) -> "MultiprocessEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run ----------------------------------------------------------------

    def run(self, system: System) -> RunResult:
        t_start = time.perf_counter()
        pool = self._ensure_pool() if self._pool_opt else None
        ctx = (
            pool.ctx if pool is not None
            else multiprocessing.get_context(self._start_method)
        )
        # Pool workers outlive the fork point, so their bodies must
        # always cross by value; one-shot fork passes by reference.
        by_value = pool is not None or self._start_method == "spawn"
        nprocs = system.nprocs
        arena = pool.arena if pool is not None else SharedStoreArena()
        affinity = _affinity_sets(self._affinity, nprocs)
        procs: list[Any] = []
        parent_conns: dict[Any, int] = {}
        all_channel_conns: list[Any] = []
        plans: list[dict[str, tuple]] = []
        rests: list[dict[str, Any]] = []
        collected = False
        try:
            # Channel pipes and per-rank endpoint specs.
            w_specs, r_specs, all_channel_conns, _seg_names = (
                build_channel_endpoints(
                    system, ctx, arena, self._payload_slab
                )
            )

            # Stores: large arrays into shared segments, the rest by value.
            for p in system.processes:
                plan, rest = arena.share_store(p.store, self._shm_threshold)
                plans.append(plan)
                rests.append(rest)

            # Result pipes and workers.
            child_conns: list[Any] = []
            for p in system.processes:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                parent_conns[parent_conn] = p.rank
                child_conns.append(child_conn)
            if pool is not None:
                # Parked workers: ship each rank's job down its control
                # pipe; the embedded pipe ends are fd-duplicated at
                # pickle time, so the parent's copies can close below.
                slots = pool.ensure(nprocs)
                procs = [slot.proc for slot in slots]
                for p in system.processes:
                    rank = p.rank
                    pool.dispatch(
                        slots[rank],
                        {
                            "rank": rank,
                            "name": p.name,
                            "nprocs": nprocs,
                            "result_conn": child_conns[rank],
                            "body": ("pickle", closures.dumps(p.body)),
                            "plan": plans[rank],
                            "rest": ("pickle", closures.dumps(rests[rank])),
                            "w_specs": w_specs[rank],
                            "r_specs": r_specs[rank],
                            "recv_timeout": self._recv_timeout,
                            "observe": self._observe,
                            "affinity": affinity[rank],
                            "trace_causal": self._trace_causal,
                        },
                    )
            else:
                for p in system.processes:
                    rank = p.rank
                    if by_value:
                        body_payload = ("pickle", closures.dumps(p.body))
                        rest_payload = ("pickle", closures.dumps(rests[rank]))
                        foreign = None
                    else:
                        body_payload = ("object", p.body)
                        rest_payload = ("object", rests[rank])
                        own = {
                            id(s.conn) for s in (*w_specs[rank], *r_specs[rank])
                        }
                        own.add(id(child_conns[rank]))
                        foreign = [
                            c
                            for c in (
                                *all_channel_conns,
                                *child_conns,
                                *parent_conns,
                            )
                            if id(c) not in own
                        ]
                    proc = ctx.Process(
                        target=worker_main,
                        name=f"repro-{p.name}",
                        args=(
                            rank,
                            p.name,
                            nprocs,
                            child_conns[rank],
                            body_payload,
                            plans[rank],
                            rest_payload,
                            w_specs[rank],
                            r_specs[rank],
                            self._recv_timeout,
                            self._observe,
                            foreign,
                            affinity[rank],
                            self._trace_causal,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    procs.append(proc)

            # The parent's copies must close so a dead writer's reader
            # sees EOF rather than a silently-held-open pipe.
            for conn in all_channel_conns:
                conn.close()
            for conn in child_conns:
                conn.close()

            (
                returns,
                overrides,
                stats,
                observations,
                causal_payloads,
                errors,
                t_run0,
                t_run1,
            ) = self._collect(system, procs, parent_conns)
            collected = True

            # Workers are finished (or dead): the segments are quiescent.
            stores: list[dict[str, Any]] = []
            for rank in range(nprocs):
                store = arena.readback(plans[rank])
                if rank in overrides:
                    store.update(overrides[rank])
                else:  # failed rank: best-effort initial remainder
                    store.update(rests[rank])
                stores.append(store)
        finally:
            if pool is not None:
                # Keep the workers parked and the segments mapped for
                # the next run; dead slots are respawned by ensure().
                # Segments are only recycled once every rank is known
                # terminal — an abandoned setup may leave a worker
                # briefly attached, and those segments must not be
                # reused (they stay owned until pool shutdown).
                if collected:
                    arena.recycle()
                pool.reap()
            else:
                arena.cleanup()
                for proc in procs:
                    if proc.is_alive():
                        proc.terminate()
                for proc in procs:
                    proc.join(timeout=5.0)
            for conn in parent_conns:
                try:
                    conn.close()
                except OSError:
                    pass

        t_end = time.perf_counter()
        self.last_timing = {
            "startup_s": (t_run0 or t_end) - t_start,
            "run_s": (t_run1 or t_end) - (t_run0 or t_end),
            "total_s": t_end - t_start,
        }

        if errors:
            rank = min(errors)
            raise wrap_process_failure(rank, errors[rank]) from errors[rank]

        records = self._merge_channel_stats(system, stats)
        report = None
        if self._observe:
            from repro.obs.report import merge_worker_observations

            report = merge_worker_observations(
                self.name, nprocs, observations, records
            )
        causal = None
        if causal_payloads:
            from repro.obs.causal import merge_causal_events

            causal = merge_causal_events(
                causal_payloads, nprocs, engine=self.name
            )
        return assemble_run_result(
            stores=stores,
            returns=[returns.get(r) for r in range(nprocs)],
            engine=self.name,
            channel_stats=records,
            report=report,
            causal=causal,
        )

    # -- collection loop -----------------------------------------------------

    def _collect(self, system: System, procs, parent_conns):
        return collect_results(system, procs, parent_conns, self._crash_grace)

    # -- stats merge ---------------------------------------------------------

    @staticmethod
    def _merge_channel_stats(
        system: System, stats: dict[int, dict]
    ) -> list[ChannelStatsRecord]:
        """Fuse the writer and reader endpoint halves per channel."""
        records = []
        for spec in system.channel_specs:
            w = stats.get(spec.writer, {}).get(spec.name, _EMPTY_W)
            r = stats.get(spec.reader, {}).get(spec.name, _EMPTY_R)
            records.append(
                ChannelStatsRecord(
                    name=spec.name,
                    writer=spec.writer,
                    reader=spec.reader,
                    sends=w["sends"],
                    receives=r["receives"],
                    bytes_sent=w["bytes_sent"],
                    queue_hwm=w["queue_hwm"],
                    frames=w.get("frames", 0),
                    pipe_bytes=w.get("pipe_bytes", 0),
                    shm_bytes=w.get("shm_bytes", 0),
                    net_syscalls=w.get("net_syscalls", 0),
                    net_syscalls_unvectored=w.get(
                        "net_syscalls_unvectored", 0
                    ),
                    net_vectored=w.get("net_vectored", 0),
                    coalesce_hwm=w.get("coalesce_hwm", 0),
                )
            )
        return records
