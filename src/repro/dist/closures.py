"""Value-pickling for dynamic functions (closures and lambdas).

The mechanical transform (:mod:`repro.refinement.transform`) and the
mesh skeleton build process bodies out of *closures* — functions
created at run time that capture per-rank data in cells.  Standard
pickle serialises functions by reference (module + qualname), which
fails for anything defined inside another function, so such bodies
cannot cross a ``spawn`` process boundary unaided.

This module extends pickle with value-serialisation for exactly the
objects standard pickle refuses:

* **dynamic functions** — the code object travels via :mod:`marshal`
  (both ends run the same interpreter: ``spawn`` re-executes
  ``sys.executable``), the globals are re-bound by re-importing the
  defining module in the worker, and defaults/kwdefaults/closure/dict
  are carried along;
* **closure cells** — created empty and filled through a deferred
  state setter, so cyclic references (a function reachable from its
  own closure) resolve through pickle's memo.

Everything standard pickle *can* handle — module-level functions,
classes, NumPy arrays, nested data — is delegated to it untouched, so
the worker side needs nothing but :func:`pickle.loads` (the rebuild
helpers here are ordinary module-level functions, picklable by
reference).
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import types

__all__ = ["ClosurePickler", "dumps", "loads"]

#: Protocol 5 is required for the six-element reduce form (deferred
#: state setter) used to fill closure cells after creation.
PROTOCOL = 5


def _module_globals(module: str | None) -> dict:
    """The globals dict a rebuilt function should close over.

    Re-importing the defining module gives the function the same view
    of module state a fresh process would have built anyway.  When the
    module cannot be imported (functions defined in ``exec`` blocks or
    interactive snippets), fall back to a minimal namespace — such
    functions must then be self-contained, importing what they need
    inside their own body.
    """
    if module:
        try:
            return importlib.import_module(module).__dict__
        except Exception:
            pass
    import builtins

    return {"__name__": module or "<dynamic>", "__builtins__": builtins}


def _make_function(
    code_bytes: bytes,
    module: str | None,
    name: str,
    qualname: str,
    defaults: tuple | None,
    kwdefaults: dict | None,
    closure: tuple | None,
    fn_dict: dict | None,
):
    """Rebuild a dynamic function in the receiving process."""
    code = marshal.loads(code_bytes)
    fn = types.FunctionType(code, _module_globals(module), name, defaults, closure)
    fn.__qualname__ = qualname
    fn.__module__ = module
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    if fn_dict:
        fn.__dict__.update(fn_dict)
    return fn


def _make_cell() -> types.CellType:
    return types.CellType()


def _set_cell(cell: types.CellType, state: tuple) -> None:
    has_contents, contents = state
    if has_contents:
        cell.cell_contents = contents


def _resolves_to_self(fn: types.FunctionType) -> bool:
    """True iff reference pickling (module + qualname) would work."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        return False
    try:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except Exception:
        return False
    return obj is fn


class ClosurePickler(pickle.Pickler):
    """A pickler that additionally serialises dynamic functions by value."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _resolves_to_self(obj):
            return self._reduce_dynamic_function(obj)
        if isinstance(obj, types.CellType):
            try:
                state = (True, obj.cell_contents)
            except ValueError:  # empty cell
                state = (False, None)
            # Deferred state: the cell is created (and memoised) empty,
            # then filled — cycles through a closure resolve cleanly.
            return (_make_cell, (), state, None, None, _set_cell)
        return NotImplemented

    @staticmethod
    def _reduce_dynamic_function(fn: types.FunctionType):
        return (
            _make_function,
            (
                marshal.dumps(fn.__code__),
                fn.__module__,
                fn.__name__,
                fn.__qualname__,
                fn.__defaults__,
                fn.__kwdefaults__,
                fn.__closure__,
                fn.__dict__ or None,
            ),
        )


def dumps(obj) -> bytes:
    """Serialise ``obj``, closures and all."""
    buffer = io.BytesIO()
    ClosurePickler(buffer, protocol=PROTOCOL).dump(obj)
    return buffer.getvalue()


#: Deserialisation needs no special machinery: the rebuild helpers are
#: importable module-level functions.
loads = pickle.loads
