"""Rank rendezvous: who runs where, and how channel sockets find peers.

A network-spanning run involves three kinds of parties:

* the **coordinator** (the :class:`~repro.dist.net.engine.SocketEngine`
  in the launching process), which assigns ranks to daemons and opens
  one *control* connection per rank;
* one **worker daemon** per host (:mod:`repro.dist.net.daemon`), which
  listens on a single TCP port for both control and data connections;
* the per-rank **channel dials**: for every channel, the writer rank's
  daemon connects directly to the reader rank's daemon — data never
  relays through the coordinator.

The handshake is one *hello* frame, sent first on every new connection
to a daemon, tagging what the connection is::

    ("control",)                      coordinator -> daemon, one per rank;
                                      the job frame follows, then the
                                      connection becomes the rank's
                                      result pipe (ready/go/done/error)
    ("data", job_id, channel_name)    writer daemon -> reader daemon;
                                      the connection becomes the
                                      channel's byte stream
    ("stats",)                        monitor -> daemon: the connection
                                      becomes a ping/pong telemetry
                                      stream (each ("ping", seq) frame
                                      is answered with ("pong", seq,
                                      stats-dict)) — one-shot pollers
                                      send a single ping
                                      (:func:`poll_stats`), fleet
                                      schedulers keep it open as the
                                      heartbeat wire
    ("shutdown",)                     coordinator -> daemon: stop serving

Ordering is the interesting part: the writer's dial can land before the
reader's job frame has even arrived at its daemon (the coordinator
dispatches ranks one at a time).  Two mechanisms absorb every race:

* :func:`connect_retry` retries refused/unreachable dials with
  exponential backoff until the handshake deadline — so a daemon that
  is still booting, or briefly behind a full accept queue, costs
  latency, not correctness;
* the reader side's :class:`ChannelBroker` is a rendezvous table keyed
  by ``(job_id, channel_name)``: accepted data connections are *offered*
  as their hello arrives (buffered if the claimant is not ready), and
  the rank's setup *claims* them, blocking up to the handshake timeout.
  Either party may be first; ``job_id`` keeps streams of back-to-back
  runs from cross-matching.

A handshake that cannot complete inside the timeout raises
:class:`~repro.errors.RendezvousTimeoutError` — never a silent hang.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.dist.net.frames import FrameStream
from repro.errors import (
    RendezvousError,
    RendezvousTimeoutError,
    TransportError,
)

__all__ = [
    "Address",
    "parse_hosts",
    "assign_ranks",
    "connect_retry",
    "dial_channel",
    "dial_control",
    "dial_stats",
    "poll_stats",
    "request_shutdown",
    "ChannelBroker",
    "HELLO_CONTROL",
    "HELLO_DATA",
    "HELLO_STATS",
    "HELLO_SHUTDOWN",
]

Address = tuple  # (host: str, port: int)

HELLO_CONTROL = "control"
HELLO_DATA = "data"
HELLO_STATS = "stats"
HELLO_SHUTDOWN = "shutdown"

#: First and largest retry sleep, seconds (exponential: 10 ms, 20, 40,
#: ... capped at _BACKOFF_MAX, until the deadline).
_BACKOFF_FIRST = 0.01
_BACKOFF_MAX = 0.5


def parse_hosts(spec: str) -> list[Address]:
    """``"hostA:9001,hostB:9002"`` → ``[("hostA", 9001), ...]``."""
    addrs: list[Address] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"bad daemon address {part!r} (expected host:port)"
            )
        addrs.append((host, int(port)))
    if not addrs:
        raise ValueError(f"no daemon addresses in {spec!r}")
    return addrs


def assign_ranks(nprocs: int, daemons: list[Address]) -> list[Address]:
    """Rank → daemon address, round-robin — rank ``r`` lives on daemon
    ``r % len(daemons)``, so equal-sized systems land identically run
    to run and every daemon carries ⌈nprocs/len⌉ ranks at most."""
    if not daemons:
        raise RendezvousError("no worker daemons to assign ranks to")
    return [daemons[r % len(daemons)] for r in range(nprocs)]


def connect_retry(
    addr: Address, timeout: float, what: str = "daemon"
) -> socket.socket:
    """TCP-connect with exponential backoff until ``timeout`` expires.

    Refused and unreachable errors are retried (the listener may still
    be booting); anything else propagates immediately.
    """
    deadline = time.monotonic() + timeout
    delay = _BACKOFF_FIRST
    last: Exception | None = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RendezvousTimeoutError(
                f"could not connect to {what} at {addr[0]}:{addr[1]} "
                f"within {timeout:.1f}s (last error: {last})"
            )
        try:
            return socket.create_connection(addr, timeout=min(remaining, 5.0))
        except (ConnectionRefusedError, ConnectionResetError, OSError) as exc:
            last = exc
        time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
        delay = min(delay * 2, _BACKOFF_MAX)


def _hello(addr: Address, payload: tuple, timeout: float, what: str) -> FrameStream:
    from repro.dist import wire

    sock = connect_retry(addr, timeout, what)
    stream = FrameStream(sock)
    try:
        wire.send(stream, payload)
    except (TransportError, OSError) as exc:
        stream.close()
        raise RendezvousError(
            f"handshake with {what} at {addr[0]}:{addr[1]} failed: {exc}"
        ) from exc
    return stream


def dial_control(addr: Address, timeout: float) -> FrameStream:
    """Coordinator side: open one rank's control connection."""
    return _hello(addr, (HELLO_CONTROL,), timeout, "worker daemon")


def dial_channel(
    addr: Address, job_id: str, channel: str, timeout: float
) -> FrameStream:
    """Writer side: connect a channel's stream to the reader's daemon."""
    return _hello(
        addr,
        (HELLO_DATA, job_id, channel),
        timeout,
        f"reader daemon for channel {channel!r}",
    )


def dial_stats(addr: Address, timeout: float) -> FrameStream:
    """Monitor side: open a persistent ping/pong telemetry stream.

    The returned stream speaks the stats protocol: send ``("ping",
    seq)`` frames, receive ``("pong", seq, stats)`` replies.  Fleet
    heartbeats hold one of these open per daemon.
    """
    return _hello(addr, (HELLO_STATS,), timeout, "worker daemon")


def poll_stats(addr: Address, timeout: float = 5.0) -> dict:
    """One-shot remote :meth:`~repro.dist.net.daemon.WorkerDaemon.stats`
    snapshot: dial, ping once, return the stats dict.

    Raises :class:`~repro.errors.RendezvousError` (or a subclass) when
    the daemon cannot be reached or does not answer within ``timeout``.
    """
    from repro.dist import wire

    deadline = time.monotonic() + timeout
    stream = dial_stats(addr, timeout)
    try:
        try:
            # The dial can win a race with a closing daemon: the TCP
            # connect succeeds, then the first write hits the reset.
            wire.send(stream, ("ping", 0))
        except (TransportError, OSError) as exc:
            raise RendezvousError(
                f"stats stream to {addr[0]}:{addr[1]} closed before the "
                f"ping could be sent"
            ) from exc
        if not stream.poll(max(0.0, deadline - time.monotonic())):
            raise RendezvousTimeoutError(
                f"daemon at {addr[0]}:{addr[1]} did not answer a stats "
                f"ping within {timeout:.1f}s"
            )
        try:
            reply = wire.recv(stream)
        except (EOFError, TransportError, OSError) as exc:
            raise RendezvousError(
                f"stats stream to {addr[0]}:{addr[1]} closed mid-poll"
            ) from exc
        if reply[0] != "pong" or reply[1] != 0:
            raise RendezvousError(
                f"unexpected stats reply from {addr[0]}:{addr[1]}: "
                f"{reply[0]!r}"
            )
        return reply[2]
    finally:
        stream.close()


def request_shutdown(addr: Address, timeout: float = 2.0) -> None:
    """Ask the daemon at ``addr`` to stop serving (best effort)."""
    try:
        stream = _hello(addr, (HELLO_SHUTDOWN,), timeout, "worker daemon")
    except (RendezvousError, OSError):
        return  # already gone
    stream.close()


class ChannelBroker:
    """Reader-side rendezvous table for incoming channel streams.

    The daemon's acceptor thread :meth:`offer`\\ s each data connection
    under its hello key; the rank's setup :meth:`claim`\\ s it.  Offers
    for keys nobody has claimed yet are buffered (the writer dialled
    early); claims for keys nobody has offered yet block (the reader
    built early).  :meth:`drop_job` discards leftovers of an aborted
    job so its streams cannot leak into a later run.
    """

    def __init__(self):
        self._waiting: dict[tuple, FrameStream] = {}
        self._cond = threading.Condition()

    def offer(self, key: tuple, stream: FrameStream) -> None:
        with self._cond:
            # SRSW: at most one writer per (job, channel); a duplicate
            # key means a confused or malicious dialler — keep the
            # first stream, drop the newcomer.
            if key in self._waiting:
                stream.close()
                return
            self._waiting[key] = stream
            self._cond.notify_all()

    def claim(self, key: tuple, timeout: float) -> FrameStream:
        deadline = time.monotonic() + timeout
        with self._cond:
            while key not in self._waiting:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RendezvousTimeoutError(
                        f"no writer connected for channel {key[1]!r} "
                        f"(job {key[0]}) within {timeout:.1f}s"
                    )
                self._cond.wait(remaining)
            return self._waiting.pop(key)

    def drop_job(self, job_id: str) -> None:
        with self._cond:
            doomed = [k for k in self._waiting if k[0] == job_id]
            streams = [self._waiting.pop(k) for k in doomed]
        for stream in streams:
            stream.close()
