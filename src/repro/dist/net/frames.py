"""Length-prefixed framing of the wire format over a stream socket.

:mod:`repro.dist.wire` speaks to a ``Connection``-shaped object through
exactly three methods — ``send_bytes``, ``recv_bytes``,
``recv_bytes_into`` — plus ``poll`` for timeouts.  :class:`FrameStream`
implements that surface over a TCP (or Unix/socketpair) stream socket,
so the *same* encoder/decoder that serves the pipe transport serves the
network: a channel value is still a header frame plus zero or more raw
array frames, only now each frame rides behind an 8-byte big-endian
length prefix.

**Vectored fast path (send).**  The bytes on the wire are unchanged,
but how they enter the kernel is not: every send gathers its pieces —
length prefix, optional clock word, payload, and (via
:meth:`FrameStream.send_frames`) *all* frames of one encoded channel
value, or of several coalesced values — into a single
``socket.sendmsg`` call.  Prefixes are packed into a per-stream
reusable header scratch, so the hot path allocates no per-frame
``bytes``.  Partial gather-writes resume from the exact byte offset, so
short writes cost extra syscalls, never corruption.  The stream counts
``send_syscalls`` (gather calls actually issued, retries included) next
to ``send_syscalls_unvectored`` (what the historical
one-``sendall``-per-piece sender would have issued for the same
frames), which is how the bench's syscall-reduction check measures the
fast path without re-running the slow one.

**Buffered fast path (receive).**  Reads land in a reusable 64 KiB
scratch via bulk ``recv_into``, so one syscall can deliver many small
frames (prefixes, clock words, headers, ghost strips) which are then
parsed out of user memory.  Frames at or above
:data:`_DIRECT_THRESHOLD` fall through to the original zero-copy path:
any prefetched prefix is copied out of the scratch and the remainder is
``recv_into``'d straight into the destination array's buffer.  ``poll``
answers from the scratch first, so a frame already buffered in user
space is never mistaken for "no data"; :attr:`FrameStream.has_buffered`
exposes the same fact to multiplexers that wait on raw fds
(:func:`repro.dist.engine.collect_results`).

Stream sockets guarantee neither whole reads nor whole writes, so both
directions loop until the frame is complete.

End-of-stream is where sockets need more care than pipes.  A pipe's
closed write end always means "writer finished"; a TCP FIN cannot
distinguish a writer that finished cleanly from one that was killed
after its last complete frame.  The framing layer therefore makes the
clean case explicit: a finishing writer sends a *goodbye* frame (the
all-ones length prefix) before closing, and the reader maps

* goodbye frame            → ``EOFError``   (clean close: channel empty),
* EOF without goodbye,
  EOF mid-frame, or reset  → :class:`~repro.errors.TransportAbortError`
                             (the writer died — never silently empty).

The *send* side speaks the same language: a peer that vanished surfaces
as ``BrokenPipeError``/``ConnectionResetError`` in the kernel, which
every write method maps to :class:`~repro.errors.TransportAbortError`
so a killed reader fails the writer with transport semantics rather
than a raw ``ConnectionError`` escaping a feeder thread.

**Causal clock field.**  With causal tracing on, a frame's length
prefix may set the top bit (:data:`_CLOCK_FLAG`) to announce one extra
8-byte word between the prefix and the payload: the sender's Lamport
clock (see :mod:`repro.obs.causal`), exposed to the decoder as
:attr:`FrameStream.last_clock`.  The flag cannot collide with real
lengths (a frame of 2^63 bytes is not a thing) nor with the goodbye
sentinel, which is all-ones and is checked first.  Untraced frames are
byte-identical to the original format either way — vectoring changes
the syscall packaging, never the stream — so a fast-path sender
remains readable by the original unbuffered decoder and vice versa.
"""

from __future__ import annotations

import select
import socket
import struct

from repro.errors import TransportAbortError

__all__ = ["FrameStream", "GOODBYE"]

_LEN = struct.Struct(">Q")

#: Length-prefix sentinel announcing a clean writer close.
GOODBYE = (1 << 64) - 1

#: Length-prefix bit announcing a causal-clock word after the prefix.
_CLOCK_FLAG = 1 << 63

#: Per-read chunk bound on the direct path; recv_into is called with at
#: most this many bytes outstanding so a huge frame cannot force one
#: giant syscall.
_CHUNK = 1 << 20

#: Size of the reusable receive scratch: one bulk recv_into can deliver
#: this many bytes' worth of small frames to parse from user memory.
_RECV_BUF = 1 << 16

#: Frames with payloads at or above this many bytes skip the scratch
#: and are received straight into the destination buffer (zero-copy);
#: smaller frames are pulled through the scratch so neighbouring frames
#: share syscalls.  Tuned well below the scratch size so a threshold
#: frame plus its successor's header still fit in one fill.
_DIRECT_THRESHOLD = 1 << 14

#: Gather-write buffer cap per sendmsg call, conservatively below any
#: platform IOV_MAX (Linux: 1024).
_IOV_CAP = 512

#: ``sendmsg`` is POSIX; the (rare) platform without it falls back to
#: one concatenated ``sendall`` per batch — still one logical write.
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


class FrameStream:
    """One length-prefixed frame stream over a connected socket.

    Duck-types the ``Connection`` surface :mod:`repro.dist.wire` and the
    engine's collection loop use: ``send_bytes`` / ``recv_bytes`` /
    ``recv_bytes_into`` / ``poll`` / ``fileno`` / ``close`` — plus the
    vectored extension ``send_frames`` (a list of frames in one
    syscall).  Instances are SRSW like everything above them: one
    thread sends, one thread receives.
    """

    __slots__ = (
        "_sock",
        "_closed",
        "_hdr",
        "_rbuf",
        "_rview",
        "_rpos",
        "_rend",
        "last_clock",
        "send_syscalls",
        "send_syscalls_unvectored",
        "vectored_frames",
        "recv_syscalls",
    )

    #: :func:`repro.dist.wire.send_encoded` checks this before passing a
    #: causal stamp into :meth:`send_bytes`/:meth:`send_frames`.
    supports_clock = True

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (socketpair, Unix domain): already unbuffered
        sock.settimeout(None)  # blocking; timeouts go through poll()
        self._sock = sock
        self._closed = False
        # Reusable header scratch: prefixes (+ clock words) of a whole
        # gather batch are packed here, so steady-state sends allocate
        # nothing per frame.  Grown on demand, never shrunk.
        self._hdr = bytearray(2 * _LEN.size)
        # Receive scratch ring: [._rpos, ._rend) holds unparsed bytes.
        self._rbuf = bytearray(_RECV_BUF)
        self._rview = memoryview(self._rbuf)
        self._rpos = 0
        self._rend = 0
        #: Causal stamp carried by the most recent clock-flagged frame;
        #: consumed (reset to None) by :func:`repro.dist.wire.recv_traced`.
        self.last_clock: int | None = None
        #: Send-side syscalls actually issued (gather calls, retries
        #: after short writes, and the goodbye included).
        self.send_syscalls = 0
        #: Syscalls the unvectored sender (one ``sendall`` per prefix,
        #: one per payload) would have issued for the same frames — the
        #: before of the before/after syscall accounting.
        self.send_syscalls_unvectored = 0
        #: Frames that left the socket in a gather batch carrying more
        #: than one frame (i.e. genuinely coalesced with siblings).
        self.vectored_frames = 0
        #: Receive-side recv_into syscalls (bulk fills + direct reads).
        self.recv_syscalls = 0

    def fileno(self) -> int:
        """Expose the fd so ``multiprocessing.connection.wait`` (and any
        selector) can multiplex frame streams next to pipes/sentinels.
        Callers multiplexing on the fd must also consult
        :attr:`has_buffered` — a complete frame may already sit in the
        user-space scratch while the fd shows idle."""
        return self._sock.fileno()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameStream(fd={-1 if self._closed else self.fileno()})"

    # -- write side ---------------------------------------------------------

    def _gather(self, views: list) -> None:
        """Write every buffer in ``views`` with as few syscalls as the
        kernel allows, resuming exactly after short writes.

        A peer that went away surfaces here as ``BrokenPipeError`` or
        ``ConnectionResetError``; both map to
        :class:`~repro.errors.TransportAbortError` so senders see the
        same abort type receivers do.
        """
        pending = [v for v in views if len(v)]
        try:
            while pending:
                sent = self._sock.sendmsg(pending[:_IOV_CAP])
                self.send_syscalls += 1
                while pending and sent >= len(pending[0]):
                    sent -= len(pending[0])
                    pending.pop(0)
                if sent:
                    pending[0] = pending[0][sent:]
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise TransportAbortError(
                "send failed: the reading peer hung up without draining "
                "the stream (peer killed?)"
            ) from exc

    def _sendall(self, data) -> None:
        """Fallback single-buffer write (no ``sendmsg`` on this
        platform), with the same abort mapping."""
        try:
            self._sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise TransportAbortError(
                "send failed: the reading peer hung up without draining "
                "the stream (peer killed?)"
            ) from exc
        self.send_syscalls += 1

    def send_frames(self, frames: list) -> None:
        """Write a batch of ``(payload, clock)`` frames in (ideally) one
        gather syscall.

        Each frame is a length prefix, an optional 8-byte clock word
        (``clock`` non-``None`` sets the prefix's clock flag), and the
        payload — byte-identical to ``len(frames)`` separate
        :meth:`send_bytes` calls, minus the kernel round trips.  This
        is the primitive both whole-value sends
        (:func:`repro.dist.wire.send_encoded`: header + all array
        frames at once) and the feeder's coalesced flushes (several
        queued values at once) bottom out in.
        """
        hdr = self._hdr
        need = 2 * _LEN.size * len(frames)
        if len(hdr) < need:
            hdr = self._hdr = bytearray(need)
        hview = memoryview(hdr)
        views: list = []
        off = 0
        unvectored = 0
        for payload, clock in frames:
            view = memoryview(payload).cast("B")
            if clock is None:
                _LEN.pack_into(hdr, off, len(view))
                hlen = _LEN.size
            else:
                _LEN.pack_into(hdr, off, len(view) | _CLOCK_FLAG)
                _LEN.pack_into(hdr, off + _LEN.size, clock)
                hlen = 2 * _LEN.size
            views.append(hview[off : off + hlen])
            off += hlen
            unvectored += 1  # the prefix (+ clock) sendall
            if len(view):
                views.append(view)
                unvectored += 1  # the payload sendall
        self.send_syscalls_unvectored += unvectored
        if _HAS_SENDMSG:
            self._gather(views)
        else:  # pragma: no cover - non-POSIX fallback
            self._sendall(b"".join(views))
        if len(frames) > 1:
            self.vectored_frames += len(frames)

    def send_bytes(self, data, clock: int | None = None) -> None:
        """Write one frame: length prefix then payload, short-write safe.

        A non-``None`` ``clock`` sets the prefix's clock flag and
        inserts the 8-byte clock word before the payload.  Prefix and
        payload leave in a single gather syscall.
        """
        self.send_frames([(data, clock)])

    def send_goodbye(self) -> None:
        """Announce a clean close: the reader's next receive EOFs."""
        self.send_syscalls_unvectored += 1
        if _HAS_SENDMSG:
            self._gather([_LEN.pack(GOODBYE)])
        else:  # pragma: no cover - non-POSIX fallback
            self._sendall(_LEN.pack(GOODBYE))

    # -- read side ----------------------------------------------------------

    @property
    def has_buffered(self) -> bool:
        """True iff unparsed bytes sit in the user-space scratch — a
        receive may make progress even though the fd polls idle."""
        return self._rend > self._rpos

    def _fill(self) -> int:
        """One bulk ``recv_into`` onto the scratch tail; bytes read
        (0 = EOF).  Compacts first when the tail is exhausted."""
        buf = self._rbuf
        if self._rpos == self._rend:
            self._rpos = self._rend = 0
        elif self._rend == len(buf):
            held = self._rend - self._rpos
            buf[:held] = buf[self._rpos : self._rend]
            self._rpos, self._rend = 0, held
        try:
            n = self._sock.recv_into(
                self._rview[self._rend :], len(buf) - self._rend
            )
        except ConnectionError as exc:
            raise TransportAbortError(
                "stream reset with a receive outstanding (peer killed?)"
            ) from exc
        self.recv_syscalls += 1
        self._rend += n
        return n

    def _require(self, n: int, *, mid_frame: bool) -> None:
        """Block until ``n`` unparsed bytes sit in the scratch."""
        while self._rend - self._rpos < n:
            if self._fill() == 0:
                have = self._rend - self._rpos
                if have == 0 and not mid_frame:
                    # EOF at a frame boundary but without a goodbye:
                    # the writer died after its last complete frame.
                    raise TransportAbortError(
                        "stream ended without a clean-close goodbye "
                        "(peer killed?)"
                    )
                raise TransportAbortError(
                    f"stream ended mid-frame ({have} of {n} bytes)"
                )

    def _recv_direct(self, view: memoryview) -> None:
        """The zero-copy tail of a large frame: straight into ``view``."""
        got = 0
        total = len(view)
        while got < total:
            try:
                n = self._sock.recv_into(view[got:], min(total - got, _CHUNK))
            except ConnectionError as exc:
                raise TransportAbortError(
                    f"stream reset with {total - got} of {total} bytes "
                    "outstanding (peer killed?)"
                ) from exc
            self.recv_syscalls += 1
            if n == 0:
                raise TransportAbortError(
                    f"stream ended mid-frame ({got} of {total} bytes)"
                )
            got += n

    def _read_payload(self, view: memoryview, length: int) -> None:
        """``length`` payload bytes into ``view``: buffered for small
        frames, direct (zero-copy) for large ones."""
        have = self._rend - self._rpos
        if length <= have:
            view[:length] = self._rview[self._rpos : self._rpos + length]
            self._rpos += length
            return
        if length < _DIRECT_THRESHOLD:
            # Small frame: pull it (and, for free, whatever follows it
            # on the wire) through the scratch in bulk fills.
            self._require(length, mid_frame=True)
            view[:length] = self._rview[self._rpos : self._rpos + length]
            self._rpos += length
            return
        # Large frame: drain the prefetched prefix, then read the rest
        # straight into the destination buffer.
        if have:
            view[:have] = self._rview[self._rpos : self._rend]
            self._rpos = self._rend
        self._recv_direct(view[have:])

    def _recv_len(self) -> int:
        self._require(_LEN.size, mid_frame=False)
        (length,) = _LEN.unpack_from(self._rbuf, self._rpos)
        self._rpos += _LEN.size
        if length == GOODBYE:  # all-ones: must test before flag masking
            raise EOFError("clean close")
        if length & _CLOCK_FLAG:
            self._require(_LEN.size, mid_frame=True)
            (self.last_clock,) = _LEN.unpack_from(self._rbuf, self._rpos)
            self._rpos += _LEN.size
            length &= _CLOCK_FLAG - 1
        return length

    def recv_bytes(self) -> bytes:
        """Read one whole frame; ``EOFError`` on the goodbye marker."""
        length = self._recv_len()
        buf = bytearray(length)
        if length:
            self._read_payload(memoryview(buf), length)
        return bytes(buf)

    def recv_bytes_into(self, view) -> int:
        """Read one frame straight into ``view`` (an array's buffer)."""
        length = self._recv_len()
        view = memoryview(view).cast("B")
        if length != len(view):
            raise TransportAbortError(
                f"frame length {length} does not match the expected "
                f"buffer of {len(view)} bytes (stream out of sync)"
            )
        if length:
            self._read_payload(view, length)
        return length

    def poll(self, timeout: float | None = 0.0) -> bool:
        """True iff a receive would make progress now (data or EOF).

        Buffered-but-unparsed bytes count as progress: they are checked
        before the fd, so values already pulled into the scratch by a
        bulk fill are never reported as "not ready".
        """
        if self._closed:
            return False
        if self._rend > self._rpos:
            return True
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return False
        return bool(ready)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
