"""Length-prefixed framing of the wire format over a stream socket.

:mod:`repro.dist.wire` speaks to a ``Connection``-shaped object through
exactly three methods — ``send_bytes``, ``recv_bytes``,
``recv_bytes_into`` — plus ``poll`` for timeouts.  :class:`FrameStream`
implements that surface over a TCP (or Unix/socketpair) stream socket,
so the *same* encoder/decoder that serves the pipe transport serves the
network: a channel value is still a header frame plus zero or more raw
array frames, only now each frame rides behind an 8-byte big-endian
length prefix.

Stream sockets guarantee neither whole reads nor whole writes, so both
directions loop: writes via ``sendall`` (which retries short writes),
reads via ``recv_into`` until the frame is complete.  Array frames are
received straight into the destination array's buffer — the zero-copy
property of the pipe path carries over.

End-of-stream is where sockets need more care than pipes.  A pipe's
closed write end always means "writer finished"; a TCP FIN cannot
distinguish a writer that finished cleanly from one that was killed
after its last complete frame.  The framing layer therefore makes the
clean case explicit: a finishing writer sends a *goodbye* frame (the
all-ones length prefix) before closing, and the reader maps

* goodbye frame            → ``EOFError``   (clean close: channel empty),
* EOF without goodbye,
  EOF mid-frame, or reset  → :class:`~repro.errors.TransportAbortError`
                             (the writer died — never silently empty).

**Causal clock field.**  With causal tracing on, a frame's length
prefix may set the top bit (:data:`_CLOCK_FLAG`) to announce one extra
8-byte word between the prefix and the payload: the sender's Lamport
clock (see :mod:`repro.obs.causal`), exposed to the decoder as
:attr:`FrameStream.last_clock`.  The flag cannot collide with real
lengths (a frame of 2^63 bytes is not a thing) nor with the goodbye
sentinel, which is all-ones and is checked first.  Untraced frames are
byte-identical to the original format.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import TransportAbortError

__all__ = ["FrameStream", "GOODBYE"]

_LEN = struct.Struct(">Q")

#: Length-prefix sentinel announcing a clean writer close.
GOODBYE = (1 << 64) - 1

#: Length-prefix bit announcing a causal-clock word after the prefix.
_CLOCK_FLAG = 1 << 63

#: Per-read chunk bound; recv_into is called with at most this many
#: bytes outstanding so a huge frame cannot force one giant syscall.
_CHUNK = 1 << 20


class FrameStream:
    """One length-prefixed frame stream over a connected socket.

    Duck-types the ``Connection`` surface :mod:`repro.dist.wire` and the
    engine's collection loop use: ``send_bytes`` / ``recv_bytes`` /
    ``recv_bytes_into`` / ``poll`` / ``fileno`` / ``close``.  Instances
    are SRSW like everything above them: one thread sends, one thread
    receives.
    """

    __slots__ = ("_sock", "_closed", "last_clock")

    #: :func:`repro.dist.wire.send_encoded` checks this before passing a
    #: causal stamp into :meth:`send_bytes`.
    supports_clock = True

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (socketpair, Unix domain): already unbuffered
        sock.settimeout(None)  # blocking; timeouts go through poll()
        self._sock = sock
        self._closed = False
        #: Causal stamp carried by the most recent clock-flagged frame;
        #: consumed (reset to None) by :func:`repro.dist.wire.recv_traced`.
        self.last_clock: int | None = None

    def fileno(self) -> int:
        """Expose the fd so ``multiprocessing.connection.wait`` (and any
        selector) can multiplex frame streams next to pipes/sentinels."""
        return self._sock.fileno()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameStream(fd={-1 if self._closed else self.fileno()})"

    # -- write side ---------------------------------------------------------

    def send_bytes(self, data, clock: int | None = None) -> None:
        """Write one frame: length prefix then payload, short-write safe.

        A non-``None`` ``clock`` sets the prefix's clock flag and
        inserts the 8-byte clock word before the payload.
        """
        view = memoryview(data).cast("B")
        if clock is None:
            self._sock.sendall(_LEN.pack(len(view)))
        else:
            self._sock.sendall(
                _LEN.pack(len(view) | _CLOCK_FLAG) + _LEN.pack(clock)
            )
        if len(view):
            self._sock.sendall(view)

    def send_goodbye(self) -> None:
        """Announce a clean close: the reader's next receive EOFs."""
        self._sock.sendall(_LEN.pack(GOODBYE))

    # -- read side ----------------------------------------------------------

    def _recv_exact(self, view: memoryview, *, mid_frame: bool) -> None:
        got = 0
        total = len(view)
        while got < total:
            try:
                n = self._sock.recv_into(view[got:], min(total - got, _CHUNK))
            except ConnectionError as exc:
                raise TransportAbortError(
                    f"stream reset with {total - got} of {total} bytes "
                    "outstanding (peer killed?)"
                ) from exc
            if n == 0:
                if got == 0 and not mid_frame:
                    # EOF at a frame boundary but without a goodbye:
                    # the writer died after its last complete frame.
                    raise TransportAbortError(
                        "stream ended without a clean-close goodbye "
                        "(peer killed?)"
                    )
                raise TransportAbortError(
                    f"stream ended mid-frame ({got} of {total} bytes)"
                )
            got += n

    def _recv_len(self) -> int:
        buf = bytearray(_LEN.size)
        self._recv_exact(memoryview(buf), mid_frame=False)
        (length,) = _LEN.unpack(buf)
        if length == GOODBYE:  # all-ones: must test before flag masking
            raise EOFError("clean close")
        if length & _CLOCK_FLAG:
            cbuf = bytearray(_LEN.size)
            self._recv_exact(memoryview(cbuf), mid_frame=True)
            (self.last_clock,) = _LEN.unpack(cbuf)
            length &= _CLOCK_FLAG - 1
        return length

    def recv_bytes(self) -> bytes:
        """Read one whole frame; ``EOFError`` on the goodbye marker."""
        length = self._recv_len()
        buf = bytearray(length)
        if length:
            self._recv_exact(memoryview(buf), mid_frame=True)
        return bytes(buf)

    def recv_bytes_into(self, view) -> int:
        """Read one frame straight into ``view`` (an array's buffer)."""
        length = self._recv_len()
        view = memoryview(view).cast("B")
        if length != len(view):
            raise TransportAbortError(
                f"frame length {length} does not match the expected "
                f"buffer of {len(view)} bytes (stream out of sync)"
            )
        self._recv_exact(view, mid_frame=True)
        return length

    def poll(self, timeout: float | None = 0.0) -> bool:
        """True iff a receive would make progress now (data or EOF)."""
        import select

        if self._closed:
            return False
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return False
        return bool(ready)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
