"""Cross-host transport: TCP channels, rank rendezvous, worker daemons.

This package lets a :class:`~repro.runtime.system.System` span machines
while preserving the paper's channel semantics exactly:

* :mod:`repro.dist.net.frames` — length-prefixed framing of the
  :mod:`repro.dist.wire` format over stream sockets, with an explicit
  goodbye frame so clean writer close and writer death are
  distinguishable (TCP FIN alone cannot tell them apart);
* :mod:`repro.dist.net.feeder` — the unbounded-queue + feeder-thread
  send core shared by the pipe and socket transports, which is what
  keeps channel slack infinite when kernel buffers are not;
* :mod:`repro.dist.net.transport` — :class:`SocketChannel`, the
  cross-host sibling of :class:`~repro.dist.channels.ProcChannel`;
* :mod:`repro.dist.net.rendezvous` — rank→daemon assignment and the
  hello-frame handshake that connects each channel's writer to its
  reader, with retry/backoff and hard timeouts;
* :mod:`repro.dist.net.daemon` — the per-host worker daemon behind
  ``python -m repro worker-daemon``;
* :mod:`repro.dist.net.engine` — :class:`SocketEngine`
  (``make_engine("socket")``), which dispatches ranks to daemons and
  collects results over control connections.

Imports here are deliberately lazy-friendly: nothing in this package is
loaded unless a socket engine, daemon, or socket channel is actually
used.
"""

from __future__ import annotations

__all__ = [
    "FrameStream",
    "NetEndpointSpec",
    "SocketChannel",
    "SocketEngine",
    "WorkerDaemon",
]


def __getattr__(name: str):
    if name == "FrameStream":
        from repro.dist.net.frames import FrameStream

        return FrameStream
    if name in ("NetEndpointSpec", "SocketChannel"):
        from repro.dist.net import transport

        return getattr(transport, name)
    if name == "SocketEngine":
        from repro.dist.net.engine import SocketEngine

        return SocketEngine
    if name == "WorkerDaemon":
        from repro.dist.net.daemon import WorkerDaemon

        return WorkerDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
