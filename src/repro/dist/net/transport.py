"""SRSW channels over TCP sockets, with the model's infinite slack intact.

:class:`SocketChannel` is the cross-host sibling of
:class:`~repro.dist.channels.ProcChannel`: one endpoint of one channel,
living in one process, speaking :mod:`repro.dist.wire` frames over a
:class:`~repro.dist.net.frames.FrameStream` instead of an OS pipe.  The
design constraints are identical and the solutions are shared:

* **Infinite slack.**  Kernel TCP buffers are finite, so a raw send
  could block on a slow reader.  Sends are therefore encoded in the
  sending thread (freezing array payloads, preserving single-assignment
  semantics) and handed to the same
  :class:`~repro.dist.net.feeder.SendFeeder` queue-plus-thread core the
  pipe transport uses; only the feeder ever blocks on the network.
* **Close/EOF cascade.**  A finishing writer flushes its queue, sends
  the framing layer's *goodbye* frame, and closes; the reader's next
  receive on the drained stream raises
  :class:`~repro.errors.EmptyChannelError`, exactly like a closed pipe.
  A writer that *dies* never sends the goodbye, so the reader gets
  :class:`~repro.errors.TransportAbortError` from the framing layer —
  surfaced here as :class:`~repro.errors.ProcessFailedError` naming the
  writer rank, so a killed remote daemon fails the run loudly instead
  of masquerading as an empty channel.
* **Statistics parity.**  ``sends`` / ``receives`` / ``bytes_sent``
  are exact and merge through the same
  :class:`~repro.runtime.system.ChannelStatsRecord` path as every other
  backend.  Transport counters land where a reader of the bench JSON
  expects them: ``frames`` counts wire frames, ``pipe_bytes`` counts
  bytes that crossed the stream (header + array frames; the socket *is*
  this transport's pipe), ``shm_bytes`` is always zero — shared memory
  cannot span hosts, so there is no staging slab and no descriptor
  metas, and every array rides the stream (the copy-on-send fallback
  path, now the only path).  ``queue_hwm`` is likewise zero: the pipe
  transport's estimate reads the receiver's counter through shared
  memory, which does not exist cross-host.

* **Vectored fast path.**  The framing layer gathers a whole encoded
  value — and, through the feeder's coalescing window
  (:meth:`_write_frames_many`), several back-to-back values — into a
  single ``sendmsg`` syscall, and bulk-buffers small receives (see
  :mod:`repro.dist.net.frames`).  Four counters measure it, surfaced
  through :meth:`stats` on the writer side: ``net_syscalls`` (send
  syscalls actually issued), ``net_syscalls_unvectored`` (what the
  historical one-``sendall``-per-piece sender would have issued for
  the same frames — the denominatorless before/after pair the bench's
  ≥2× syscall-reduction check divides), ``net_vectored`` (frames that
  left in a multi-frame gather batch), and ``coalesce_hwm`` (the
  deepest feeder batch a single vectored flush drained).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dist import wire
from repro.dist.channels import ProcChannel
from repro.dist.net.frames import FrameStream
from repro.errors import ProcessFailedError, TransportAbortError

__all__ = ["NetEndpointSpec", "SocketChannel"]


@dataclass
class NetEndpointSpec:
    """One rank's end of one cross-host channel.

    Travels to a worker daemon inside the job frame with ``conn=None``
    and ``peer`` naming the *reader's* daemon address; the daemon dials
    (writer side) or claims the matching accepted stream (reader side)
    during job setup and fills ``conn`` with the connected
    :class:`~repro.dist.net.frames.FrameStream` before channels are
    built.  ``counter_name``/``slab_name``/``slab_size``/``slab_counter``
    exist for structural parity with
    :class:`~repro.dist.channels.EndpointSpec` and are always empty:
    no shared memory crosses hosts.
    """

    name: str
    writer: int
    reader: int
    role: str  # "w" | "r"
    job_id: str = ""
    peer: tuple | None = None  # (host, port) of the reader's daemon
    conn: Any = None  # FrameStream once connected
    counter_name: str = ""
    slab_name: str = ""
    slab_size: int = 0
    slab_counter: str = ""
    transport: str = field(default="socket", repr=False)


class SocketChannel(ProcChannel):
    """One endpoint of a cross-host SRSW channel (see module docstring).

    Subclasses :class:`~repro.dist.channels.ProcChannel`: the send path
    (encode in the caller, queue to the feeder), the ownership checks,
    and the stats contract are inherited unchanged — only the
    end-of-stream actions differ (goodbye frame on clean close, abort
    mapping on receive).
    """

    transport = "socket"

    __slots__ = ()

    def __init__(self, spec: NetEndpointSpec):
        if not isinstance(spec.conn, FrameStream):
            raise TypeError(
                f"NetEndpointSpec for channel {spec.name!r} has no "
                "connected FrameStream (rendezvous incomplete?)"
            )
        super().__init__(spec)

    def _batch_writer(self):
        """Opt in to the feeder's coalescing window (see base class)."""
        return self._write_frames_many

    def _write_frames_many(self, items: list) -> None:
        """Feeder-thread batch write: every queued value's frames in
        one gather syscall.

        Back-to-back sends that queued while a previous write blocked
        on the kernel (batched ghost exchanges, overlap prologue sends)
        drain as a single vectored write — the frame bytes are
        identical to draining them one value at a time.
        """
        frames: list = []
        for header, buffers, clock in items:
            frames.extend(wire.encoded_frames(self._conn, header, buffers, clock))
        self._conn.send_frames(frames)

    # -- fast-path counters (writer side; live on the frame stream and
    # feeder so they survive channel close) ---------------------------------

    @property
    def net_syscalls(self) -> int:
        return self._conn.send_syscalls

    @property
    def net_syscalls_unvectored(self) -> int:
        return self._conn.send_syscalls_unvectored

    @property
    def net_vectored(self) -> int:
        return self._conn.vectored_frames

    @property
    def coalesce_hwm(self) -> int:
        return self._feeder.coalesce_hwm

    def stats(self) -> dict[str, int]:
        out = super().stats()
        if self.spec.role == "w":
            out["net_syscalls"] = self.net_syscalls
            out["net_syscalls_unvectored"] = self.net_syscalls_unvectored
            out["net_vectored"] = self.net_vectored
            out["coalesce_hwm"] = self.coalesce_hwm
        return out

    def _end_stream(self) -> None:
        """Feeder finisher: goodbye frame (clean close), then close.

        Runs after the queue drained — so by the time the reader sees
        the goodbye, every value this writer sent is on the stream —
        or after the stream broke, in which case the goodbye write
        fails harmlessly (the feeder swallows transport errors).
        """
        self._conn.send_goodbye()
        self._conn.close()

    def _abort(self, exc: TransportAbortError) -> ProcessFailedError:
        return ProcessFailedError(
            self.writer,
            TransportAbortError(
                f"channel {self.name!r}: the stream from writer rank "
                f"{self.writer} aborted without a clean close "
                f"({exc}) — its host process or daemon died"
            ),
        )

    def recv(self, *, rank: int, timeout: float | None = None) -> Any:
        try:
            return super().recv(rank=rank, timeout=timeout)
        except TransportAbortError as exc:
            raise self._abort(exc) from exc

    def recv_nowait(self, *, rank: int) -> Any:
        try:
            return super().recv_nowait(rank=rank)
        except TransportAbortError as exc:
            raise self._abort(exc) from exc
