"""The shared queue-plus-feeder-thread core of infinite-slack senders.

Both cross-process transports — OS pipes (:class:`~repro.dist.channels.
ProcChannel`) and TCP sockets (:class:`~repro.dist.net.transport.
SocketChannel`) — have finite kernel buffers, so a raw write could
block once the reader falls behind, and a balanced exchange pattern
that is deadlock-free in the paper's infinite-slack model could then
deadlock in practice.  The cure is identical for both: sends append to
an unbounded in-process queue — exactly the semantics of
:class:`repro.runtime.channel.Channel` — and a per-channel feeder
thread (started lazily on first send) drains that queue into the
transport, absorbing kernel backpressure where the sender's main
thread must not.

:class:`SendFeeder` is that core, extracted so the two channel types
share one implementation instead of two copies.  Shutdown is
idempotent and thread-safe: however many times (and from however many
threads) :meth:`close` is called, the close sentinel is enqueued once,
the feeder is joined once, and the transport's finisher (close the
pipe fd / send the TCP goodbye frame) runs exactly once — including
when nothing was ever sent and the thread never started.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

from repro.errors import TransportError

__all__ = ["SendFeeder"]

_CLOSE = object()


class SendFeeder:
    """Unbounded send queue drained into a transport by a daemon thread.

    Parameters
    ----------
    name:
        Thread name suffix (shown in stack dumps as ``feed-<name>``).
    write:
        Called in the feeder thread with each queued item; may block on
        kernel backpressure.  A raised ``BrokenPipeError`` /
        ``ConnectionError`` / ``OSError`` / :class:`~repro.errors.
        TransportError` stops the drain — the reader went away, and the
        undeliverable remainder is discarded (the threaded engine
        likewise leaves undrained values queued).
    write_many:
        Optional batch form: called with a *list* of queued items
        whenever more than one is waiting when the feeder wakes — the
        coalescing window.  Back-to-back sends that queued while a
        previous write blocked on the kernel drain as one vectored
        write instead of one syscall batch each.  When ``None``, items
        always drain one at a time through ``write``.
    finish:
        Called exactly once, after the drain ends (flush, close, or
        broken transport): the transport's end-of-stream action —
        closing a pipe fd, or sending the clean-close goodbye frame and
        closing a socket.  Errors are swallowed; by this point the
        peer may already be gone.
    """

    __slots__ = (
        "_name",
        "_write",
        "_write_many",
        "_finish",
        "_queue",
        "_thread",
        "_lock",
        "_closed",
        "coalesce_hwm",
    )

    def __init__(
        self,
        name: str,
        write: Callable[[Any], None],
        finish: Callable[[], None],
        write_many: Callable[[list], None] | None = None,
    ):
        self._name = name
        self._write = write
        self._write_many = write_many
        self._finish = finish
        self._queue: queue.Queue | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: High-water mark of the coalescing window: the largest number
        #: of queued items a single ``write_many`` call flushed.
        self.coalesce_hwm = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def _drain_batch(self, q: queue.Queue, first: Any) -> bool:
        """Flush ``first`` plus everything else already queued in one
        ``write_many`` call; True when the close sentinel was seen."""
        batch = [first]
        saw_close = False
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                break
            if item is _CLOSE:
                saw_close = True
                break
            batch.append(item)
        if len(batch) > self.coalesce_hwm:
            self.coalesce_hwm = len(batch)
        self._write_many(batch)
        return saw_close

    def _run(self) -> None:
        q = self._queue
        while True:
            item = q.get()
            if item is _CLOSE:
                break
            try:
                if self._write_many is not None:
                    if self._drain_batch(q, item):
                        break
                else:
                    self._write(item)
            except (BrokenPipeError, ConnectionError, OSError, TransportError):
                break
        self._do_finish()

    def _do_finish(self) -> None:
        try:
            self._finish()
        except (BrokenPipeError, ConnectionError, OSError, TransportError):
            pass

    def put(self, item: Any) -> None:
        """Enqueue one item; never blocks.  Starts the thread lazily."""
        if self._closed:
            raise RuntimeError(f"send on closed feeder {self._name!r}")
        if self._thread is None:
            with self._lock:
                if self._closed:
                    raise RuntimeError(f"send on closed feeder {self._name!r}")
                if self._thread is None:
                    self._queue = queue.Queue()
                    self._thread = threading.Thread(
                        target=self._run,
                        name=f"feed-{self._name}",
                        daemon=True,
                    )
                    # Publish the queue before the thread reads it.
                    self._thread.start()
        self._queue.put(item)

    def close(self) -> None:
        """Flush queued items and run the finisher.  Idempotent.

        Safe to call from several threads at once and repeatedly: one
        caller performs the flush-and-join (a dead reader breaks the
        transport rather than blocking the join forever); the rest
        return immediately.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._queue.put(_CLOSE)
            thread.join()
        else:
            # Nothing was ever sent: still run the end-of-stream action
            # so the reader sees a clean close instead of a hang.
            self._do_finish()
